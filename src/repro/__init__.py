"""repro — reproduction of "Towards better entity resolution techniques
for Web document collections" (Yerva, Miklós, Aberer; ICDE 2010).

Quickstart — fit once on labels, predict on unlabeled pages::

    from repro import EntityResolver, ResolverConfig, www05_like

    dataset = www05_like(seed=1, pages_per_name=60)
    model = EntityResolver(ResolverConfig()).fit(dataset, training_seed=0)
    prediction = model.predict(dataset)        # labels never read
    print(model.evaluate(dataset).mean_report().fp)
    model.save("resolver.json")                # reuse without refitting

Both passes run over composable stage plans (:mod:`repro.pipeline`);
serve online single-page traffic with
:class:`~repro.pipeline.session.ResolutionSession` (models never
serialize an extraction pipeline — supply one for raw pages)::

    from repro import ResolutionSession

    pipeline = EntityResolver(ResolverConfig()).pipeline_for(dataset)
    session = ResolutionSession.open("resolver.json", pipeline=pipeline)
    pages = dataset.by_name("William Cohen").without_labels().pages
    assignments = session.resolve(list(pages))  # incremental, per request

See README.md for the fit → save → predict lifecycle, the stage/plan
API, the registry extension points, and migration notes from
``resolve_collection``.
"""

from repro.corpus import weps2_like, www05_like
from repro.core import EntityResolver, ResolverConfig, ResolverModel
from repro.pipeline import Pipeline, fit_plan, predict_plan
from repro.pipeline.session import ResolutionSession

__version__ = "1.2.0"

__all__ = [
    "EntityResolver",
    "Pipeline",
    "ResolutionSession",
    "ResolverConfig",
    "ResolverModel",
    "fit_plan",
    "predict_plan",
    "www05_like",
    "weps2_like",
    "__version__",
]
