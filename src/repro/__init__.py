"""repro — reproduction of "Towards better entity resolution techniques
for Web document collections" (Yerva, Miklós, Aberer; ICDE 2010).

Quickstart — fit once on labels, predict on unlabeled pages::

    from repro import EntityResolver, ResolverConfig, www05_like

    dataset = www05_like(seed=1, pages_per_name=60)
    model = EntityResolver(ResolverConfig()).fit(dataset, training_seed=0)
    prediction = model.predict(dataset)        # labels never read
    print(model.evaluate(dataset).mean_report().fp)
    model.save("resolver.json")                # reuse without refitting

See README.md for the fit → save → predict lifecycle, the registry
extension points, and migration notes from ``resolve_collection``.
"""

from repro.corpus import weps2_like, www05_like
from repro.core import EntityResolver, ResolverConfig, ResolverModel

__version__ = "1.1.0"

__all__ = [
    "EntityResolver",
    "ResolverConfig",
    "ResolverModel",
    "www05_like",
    "weps2_like",
    "__version__",
]
