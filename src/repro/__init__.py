"""repro — reproduction of "Towards better entity resolution techniques
for Web document collections" (Yerva, Miklós, Aberer; ICDE 2010).

Quickstart::

    from repro import EntityResolver, ResolverConfig, www05_like

    dataset = www05_like(seed=1, pages_per_name=60)
    resolver = EntityResolver(ResolverConfig())
    result = resolver.resolve_collection(dataset, training_seed=0)
    print(result.mean_report().fp)

See README.md for the architecture overview and DESIGN.md for the
paper-to-module mapping.
"""

from repro.corpus import weps2_like, www05_like
from repro.core import EntityResolver, ResolverConfig

__version__ = "1.0.0"

__all__ = [
    "EntityResolver",
    "ResolverConfig",
    "www05_like",
    "weps2_like",
    "__version__",
]
