"""Average-link agglomerative clustering baseline.

The standard clustering-first alternative to the paper's graph pipeline:
merge the two most similar clusters (average pairwise similarity under one
chosen function, by default TF-IDF cosine) until no pair of clusters
exceeds a stopping threshold learned from the training sample.
"""

from __future__ import annotations

import heapq
import itertools

from repro.baselines.base import PairwiseBaseline
from repro.core.labels import TrainingSample
from repro.core.thresholds import learn_threshold
from repro.corpus.documents import NameCollection
from repro.graph.entity_graph import WeightedPairGraph, pair_key
from repro.metrics.clusterings import Clustering


class AgglomerativeBaseline(PairwiseBaseline):
    """Average-link hierarchical clustering with a learned stop threshold.

    Args:
        function_name: the similarity function driving the linkage.
    """

    name = "agglomerative"

    def __init__(self, function_name: str = "F8"):
        self.function_name = function_name

    def resolve_block(self, block: NameCollection,
                      graphs: dict[str, WeightedPairGraph],
                      training: TrainingSample) -> Clustering:
        graph = graphs[self.function_name]
        threshold = learn_threshold(training.labeled_values(graph)).threshold

        clusters: dict[int, set[str]] = {
            index: {node} for index, node in enumerate(graph.nodes)}
        alive = set(clusters)
        counter = itertools.count(len(clusters))

        def linkage(left: int, right: int) -> float:
            total = 0.0
            count = 0
            for node_left in clusters[left]:
                for node_right in clusters[right]:
                    total += graph.weights.get(
                        pair_key(node_left, node_right), 0.0)
                    count += 1
            return total / count if count else 0.0

        # Priority queue of candidate merges (max-heap via negation).
        heap: list[tuple[float, int, int]] = []
        alive_list = sorted(alive)
        for i, left in enumerate(alive_list):
            for right in alive_list[i + 1:]:
                score = linkage(left, right)
                if score >= threshold:
                    heapq.heappush(heap, (-score, left, right))

        while heap:
            negative_score, left, right = heapq.heappop(heap)
            if left not in alive or right not in alive:
                continue  # stale entry
            if -negative_score < threshold:
                break
            merged = clusters[left] | clusters[right]
            alive.discard(left)
            alive.discard(right)
            new_id = next(counter)
            clusters[new_id] = merged
            alive.add(new_id)
            for other in alive:
                if other == new_id:
                    continue
                score = linkage(new_id, other)
                if score >= threshold:
                    heapq.heappush(
                        heap, (-score, min(new_id, other), max(new_id, other)))

        return Clustering([clusters[index] for index in alive])
