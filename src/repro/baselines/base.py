"""Baseline interface and shared helpers."""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

from repro.core.combination import DecisionLayer
from repro.core.config import ResolverConfig
from repro.core.labels import TrainingSample
from repro.core.resolver import EntityResolver
from repro.corpus.documents import NameCollection
from repro.graph.entity_graph import WeightedPairGraph
from repro.metrics.clusterings import Clustering


class PairwiseBaseline(ABC):
    """A baseline that resolves one block from its similarity graphs.

    All baselines consume the same inputs as the paper's resolver (the
    per-function weighted graphs and the labeled training sample), so
    comparisons isolate the *combination/clustering strategy* — everything
    upstream is held fixed.
    """

    name: str

    @abstractmethod
    def resolve_block(self, block: NameCollection,
                      graphs: dict[str, WeightedPairGraph],
                      training: TrainingSample) -> Clustering:
        """Produce the entity partition for one block."""


def baseline_layers(
    graphs: dict[str, WeightedPairGraph],
    training: TrainingSample,
    function_names: Sequence[str],
    criteria: Sequence[str] = ("threshold",),
    region_k: int = 10,
) -> list[DecisionLayer]:
    """Fit decision layers outside the resolver (shared by baselines)."""
    config = ResolverConfig(function_names=tuple(function_names),
                            criteria=tuple(criteria), region_k=region_k)
    resolver = EntityResolver(config)
    return resolver.build_layers(graphs, training)
