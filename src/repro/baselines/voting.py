"""Classifier-fusion baselines: majority and accuracy-weighted voting.

The related-work section groups combination techniques into fusion and
selection; these are the canonical fusion representatives.  Votes are cast
per pair by each function's fitted threshold decision.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.baselines.base import PairwiseBaseline, baseline_layers
from repro.core.labels import TrainingSample
from repro.corpus.documents import NameCollection
from repro.graph.entity_graph import DecisionGraph, WeightedPairGraph
from repro.graph.transitive import transitive_closure_clusters
from repro.metrics.clusterings import Clustering
from repro.similarity.functions import ALL_FUNCTION_NAMES


class MajorityVoteBaseline(PairwiseBaseline):
    """Link a pair iff a strict majority of functions votes link."""

    name = "majority_vote"

    def __init__(self, function_names: Sequence[str] = ALL_FUNCTION_NAMES):
        self.function_names = tuple(function_names)

    def resolve_block(self, block: NameCollection,
                      graphs: dict[str, WeightedPairGraph],
                      training: TrainingSample) -> Clustering:
        layers = baseline_layers(graphs, training, self.function_names)
        n_layers = len(layers)
        votes: dict[tuple[str, str], int] = {}
        for layer in layers:
            for pair in layer.graph.edges:
                votes[pair] = votes.get(pair, 0) + 1
        graph = DecisionGraph(nodes=list(layers[0].graph.nodes))
        graph.edges = {pair for pair, count in votes.items()
                       if count * 2 > n_layers}
        return Clustering(transitive_closure_clusters(graph))


class WeightedVoteBaseline(PairwiseBaseline):
    """Votes weighted by each function's per-pair training accuracy.

    A pair is linked when the accuracy-weighted vote mass of "link"
    exceeds that of "no link".
    """

    name = "weighted_vote"

    def __init__(self, function_names: Sequence[str] = ALL_FUNCTION_NAMES):
        self.function_names = tuple(function_names)

    def resolve_block(self, block: NameCollection,
                      graphs: dict[str, WeightedPairGraph],
                      training: TrainingSample) -> Clustering:
        layers = baseline_layers(graphs, training, self.function_names)
        nodes = list(layers[0].graph.nodes)
        link_mass: dict[tuple[str, str], float] = {}
        total_mass = 0.0
        for layer in layers:
            weight = max(layer.training_accuracy, 1e-9)
            total_mass += weight
            for pair in layer.graph.edges:
                link_mass[pair] = link_mass.get(pair, 0.0) + weight
        graph = DecisionGraph(nodes=nodes)
        graph.edges = {pair for pair, mass in link_mass.items()
                       if mass * 2 > total_mass}
        return Clustering(transitive_closure_clusters(graph))
