"""Best-single-function references.

``TrainedBestFunctionBaseline`` picks the function whose threshold graph
looks best on the training sample (what a practitioner without the paper's
region machinery would deploy).  ``OracleBestFunctionBaseline`` picks the
function that *actually* scores best against ground truth — an upper bound
no real system can reach, useful to bound the selection headroom.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.baselines.base import PairwiseBaseline, baseline_layers
from repro.core.labels import TrainingSample
from repro.corpus.documents import NameCollection
from repro.graph.entity_graph import WeightedPairGraph
from repro.graph.transitive import transitive_closure_clusters
from repro.metrics.clusterings import Clustering, clustering_from_assignments
from repro.metrics.purity import fp_measure
from repro.similarity.functions import ALL_FUNCTION_NAMES


class TrainedBestFunctionBaseline(PairwiseBaseline):
    """Single function + threshold, selected by training graph accuracy.

    Equivalent to the paper's I10 column: best-graph selection restricted
    to threshold criteria.
    """

    name = "trained_best_function"

    def __init__(self, function_names: Sequence[str] = ALL_FUNCTION_NAMES):
        self.function_names = tuple(function_names)

    def resolve_block(self, block: NameCollection,
                      graphs: dict[str, WeightedPairGraph],
                      training: TrainingSample) -> Clustering:
        layers = baseline_layers(graphs, training, self.function_names,
                                 criteria=("threshold",))
        best = max(layers, key=lambda layer: layer.graph_accuracy)
        return Clustering(transitive_closure_clusters(best.graph))


class OracleBestFunctionBaseline(PairwiseBaseline):
    """Single function + threshold, selected by *test* Fp (oracle).

    Uses ground truth for selection; only meaningful as an upper bound in
    ablation benchmarks.
    """

    name = "oracle_best_function"

    def __init__(self, function_names: Sequence[str] = ALL_FUNCTION_NAMES):
        self.function_names = tuple(function_names)

    def resolve_block(self, block: NameCollection,
                      graphs: dict[str, WeightedPairGraph],
                      training: TrainingSample) -> Clustering:
        truth = clustering_from_assignments(block.ground_truth())
        layers = baseline_layers(graphs, training, self.function_names,
                                 criteria=("threshold",))
        best_clustering: Clustering | None = None
        best_score = -1.0
        for layer in layers:
            clustering = Clustering(transitive_closure_clusters(layer.graph))
            score = fp_measure(clustering, truth)
            if score > best_score:
                best_score = score
                best_clustering = clustering
        assert best_clustering is not None  # layers is never empty
        return best_clustering
