"""Baseline entity-resolution strategies.

The paper positions its combiner against the classifier-combination
literature: classifier *fusion* (majority / weighted voting) and dynamic
classifier *selection* (Woods et al.; Liu & Yuan's clustering-and-
selection).  This package implements those families plus a classic
average-link agglomerative clusterer and best-single-function references,
so the benchmark harness can compare the paper's technique against real
alternatives rather than straw men.
"""

from repro.baselines.base import PairwiseBaseline, baseline_layers
from repro.baselines.single_best import (
    OracleBestFunctionBaseline,
    TrainedBestFunctionBaseline,
)
from repro.baselines.voting import MajorityVoteBaseline, WeightedVoteBaseline
from repro.baselines.dcs import DynamicSelectionBaseline
from repro.baselines.clustering_selection import ClusteringSelectionBaseline
from repro.baselines.agglomerative import AgglomerativeBaseline
from repro.baselines.swoosh import SwooshBaseline, merge_features, r_swoosh

__all__ = [
    "PairwiseBaseline",
    "baseline_layers",
    "OracleBestFunctionBaseline",
    "TrainedBestFunctionBaseline",
    "MajorityVoteBaseline",
    "WeightedVoteBaseline",
    "DynamicSelectionBaseline",
    "ClusteringSelectionBaseline",
    "AgglomerativeBaseline",
    "SwooshBaseline",
    "merge_features",
    "r_swoosh",
]
