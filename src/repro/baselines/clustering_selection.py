"""Clustering-and-selection (Liu & Yuan, 2001).

The input sample space is partitioned by clustering the training samples
(here: 1-D k-means over each function's similarity values, separately for
correct and incorrect decisions as in the original method's spirit); each
classifier's performance is estimated per region, and a new sample is
decided by the classifier with the best performance in its region.

The practical difference from :mod:`repro.baselines.dcs` is the selection
statistic: DCS uses the local *confidence* of the link-probability
estimate, clustering-and-selection uses the local *decision accuracy* of
each classifier measured on the training points of the region.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.baselines.base import PairwiseBaseline, baseline_layers
from repro.core.labels import TrainingSample
from repro.core.combination import DecisionLayer
from repro.corpus.documents import NameCollection
from repro.graph.entity_graph import DecisionGraph, WeightedPairGraph
from repro.graph.transitive import transitive_closure_clusters
from repro.metrics.clusterings import Clustering
from repro.similarity.functions import ALL_FUNCTION_NAMES


class ClusteringSelectionBaseline(PairwiseBaseline):
    """Per-region classifier selection by local decision accuracy."""

    name = "clustering_selection"

    def __init__(self, function_names: Sequence[str] = ALL_FUNCTION_NAMES,
                 region_k: int = 10):
        self.function_names = tuple(function_names)
        self.region_k = region_k

    def resolve_block(self, block: NameCollection,
                      graphs: dict[str, WeightedPairGraph],
                      training: TrainingSample) -> Clustering:
        layers = baseline_layers(
            graphs, training, self.function_names,
            criteria=("kmeans",), region_k=self.region_k)
        local_accuracy = {
            layer.function_name: self._local_accuracies(layer, graphs, training)
            for layer in layers
        }

        nodes = list(layers[0].graph.nodes)
        graph = DecisionGraph(nodes=nodes)
        all_pairs: set[tuple[str, str]] = set()
        for layer in layers:
            all_pairs.update(layer.probabilities)
        for pair in all_pairs:
            best_accuracy = -1.0
            best_decision = False
            for layer in layers:
                value = graphs[layer.function_name].weights.get(pair, 0.0)
                region = layer.fitted.profile.regions.assign(value)
                accuracy = local_accuracy[layer.function_name][region]
                if accuracy > best_accuracy:
                    best_accuracy = accuracy
                    best_decision = layer.fitted.decide(value)
            if best_decision:
                graph.edges.add(pair)
        return Clustering(transitive_closure_clusters(graph))

    def _local_accuracies(self, layer: DecisionLayer,
                          graphs: dict[str, WeightedPairGraph],
                          training: TrainingSample) -> list[float]:
        """Per-region fraction of correct decisions on the training sample.

        Regions never visited during training fall back to the layer's
        overall training accuracy.
        """
        profile = layer.fitted.profile
        weights = graphs[layer.function_name].weights
        correct = [0] * profile.n_regions
        total = [0] * profile.n_regions
        for pair, label in training.pairs:
            value = weights.get(pair, 0.0)
            region = profile.regions.assign(value)
            total[region] += 1
            if layer.fitted.decide(value) == label:
                correct[region] += 1
        overall = layer.training_accuracy
        return [correct[i] / total[i] if total[i] else overall
                for i in range(profile.n_regions)]
