"""Dynamic classifier selection (Woods, Kegelmeyer & Bowyer, 1997).

Instead of selecting one classifier per block (the paper's best-graph
combiner) or fusing votes, DCS selects a classifier *per sample*: for each
page pair, the function whose local accuracy — estimated in the region of
the pair's similarity value — is highest makes the decision.

Local accuracy of a (function, pair) combination is the confidence of the
function's region profile at the pair's value: ``max(p, 1 − p)`` where
``p`` is the estimated link probability.  This mirrors Woods et al.'s
partition-local accuracy estimates with our value-space regions playing
the role of the partitions.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.baselines.base import PairwiseBaseline, baseline_layers
from repro.core.labels import TrainingSample
from repro.corpus.documents import NameCollection
from repro.graph.entity_graph import DecisionGraph, WeightedPairGraph
from repro.graph.transitive import transitive_closure_clusters
from repro.metrics.clusterings import Clustering
from repro.similarity.functions import ALL_FUNCTION_NAMES


class DynamicSelectionBaseline(PairwiseBaseline):
    """Per-pair classifier selection by local (region) accuracy.

    Args:
        function_names: functions to select among.
        region_method: region construction for the local-accuracy
            estimates (``"kmeans"`` or ``"equal_width"``).
        region_k: region count.
    """

    name = "dynamic_selection"

    def __init__(self, function_names: Sequence[str] = ALL_FUNCTION_NAMES,
                 region_method: str = "kmeans", region_k: int = 10):
        self.function_names = tuple(function_names)
        self.region_method = region_method
        self.region_k = region_k

    def resolve_block(self, block: NameCollection,
                      graphs: dict[str, WeightedPairGraph],
                      training: TrainingSample) -> Clustering:
        layers = baseline_layers(
            graphs, training, self.function_names,
            criteria=(self.region_method,), region_k=self.region_k)
        nodes = list(layers[0].graph.nodes)

        graph = DecisionGraph(nodes=nodes)
        all_pairs: set[tuple[str, str]] = set()
        for layer in layers:
            all_pairs.update(layer.probabilities)
        for pair in all_pairs:
            best_confidence = -1.0
            best_decision = False
            for layer in layers:
                probability = layer.probabilities.get(pair)
                if probability is None:
                    continue
                confidence = max(probability, 1.0 - probability)
                if confidence > best_confidence:
                    best_confidence = confidence
                    best_decision = probability > 0.5
            if best_decision:
                graph.edges.add(pair)
        return Clustering(transitive_closure_clusters(graph))
