"""R-Swoosh-style generic entity resolution (Benjelloun et al., VLDB J. 2009).

The related work discusses the Swoosh family: pairwise *match* decisions
drive immediate *merges*, and the merged record (here: merged page
features) is re-compared against the rest.  This captures the "merge then
re-match" dynamic the paper contrasts with its graph pipeline — a merged
profile can match pages neither constituent matched alone.

Match: the configured similarity function applied to (possibly merged)
feature bundles against a threshold learned from the training sample.
Merge: union of entity mentions and concept/TF-IDF evidence (vectors are
averaged and re-normalized; counters added), per the Swoosh requirement
that merges only ever add information.
"""

from __future__ import annotations

from collections import Counter

from repro.baselines.base import PairwiseBaseline
from repro.core.labels import TrainingSample
from repro.core.thresholds import learn_threshold
from repro.corpus.documents import NameCollection
from repro.extraction.features import PageFeatures
from repro.graph.entity_graph import WeightedPairGraph
from repro.metrics.clusterings import Clustering
from repro.similarity.base import SimilarityFunction
from repro.similarity.functions import function_by_name
from repro.similarity.vectors import l2_normalize


def merge_features(left: PageFeatures, right: PageFeatures) -> PageFeatures:
    """Swoosh merge: the union of two bundles' evidence.

    Counters add; concept vectors average (then re-normalize to L1=1);
    TF-IDF vectors average then re-normalize to unit length; name fields
    keep the non-empty (then longer) surface.
    """
    def pick_name(first: str, second: str) -> str:
        if not first:
            return second
        if not second:
            return first
        return first if len(first) >= len(second) else second

    concept_vector: dict[str, float] = {}
    for vector in (left.concept_vector, right.concept_vector):
        for key, value in vector.items():
            concept_vector[key] = concept_vector.get(key, 0.0) + value / 2.0
    total = sum(concept_vector.values())
    if total > 0:
        concept_vector = {k: v / total for k, v in concept_vector.items()}

    tfidf: dict[str, float] = {}
    for vector in (left.tfidf, right.tfidf):
        for key, value in vector.items():
            tfidf[key] = tfidf.get(key, 0.0) + value / 2.0
    tfidf = l2_normalize(tfidf)

    return PageFeatures(
        doc_id=f"{left.doc_id}+{right.doc_id}",
        url=left.url or right.url,
        most_frequent_name=pick_name(left.most_frequent_name,
                                     right.most_frequent_name),
        closest_name_to_query=pick_name(left.closest_name_to_query,
                                        right.closest_name_to_query),
        concept_vector=concept_vector,
        concept_set=left.concept_set | right.concept_set,
        organizations=Counter(left.organizations) + Counter(right.organizations),
        other_persons=Counter(left.other_persons) + Counter(right.other_persons),
        locations=Counter(left.locations) + Counter(right.locations),
        tfidf=tfidf,
        n_tokens=left.n_tokens + right.n_tokens,
    )


def r_swoosh(features: dict[str, PageFeatures],
             match: SimilarityFunction,
             threshold: float) -> list[set[str]]:
    """The R-Swoosh algorithm over feature bundles.

    Maintains a resolved set ``R``; each input record is compared against
    every member of ``R``: on the first match, both are merged and the
    merge re-enters the input queue; otherwise the record joins ``R``.

    Returns the partition of original doc ids implied by the merges.
    """
    queue: list[tuple[PageFeatures, set[str]]] = [
        (bundle, {doc_id}) for doc_id, bundle in sorted(features.items())]
    resolved: list[tuple[PageFeatures, set[str]]] = []

    while queue:
        record, members = queue.pop(0)
        matched_index = None
        for index, (other, _) in enumerate(resolved):
            if match(record, other) >= threshold:
                matched_index = index
                break
        if matched_index is None:
            resolved.append((record, members))
        else:
            other, other_members = resolved.pop(matched_index)
            queue.append((merge_features(record, other),
                          members | other_members))
    return [members for _, members in resolved]


class SwooshBaseline(PairwiseBaseline):
    """R-Swoosh with a learned match threshold on one similarity function.

    Args:
        function_name: the match function (default F8, TF-IDF cosine).
        features_by_doc: the block's extracted features (Swoosh needs the
            raw bundles, not just pair scores, because merges create new
            records).
    """

    name = "swoosh"

    def __init__(self, features_by_doc: dict[str, PageFeatures],
                 function_name: str = "F8"):
        self.function_name = function_name
        self._features = features_by_doc
        self._match = function_by_name(function_name)

    def resolve_block(self, block: NameCollection,
                      graphs: dict[str, WeightedPairGraph],
                      training: TrainingSample) -> Clustering:
        graph = graphs[self.function_name]
        learned = learn_threshold(training.labeled_values(graph))
        if learned.threshold > 1.0:
            # Never-link rule: every page is its own entity.
            return Clustering([{doc_id} for doc_id in block.page_ids()])
        block_features = {doc_id: self._features[doc_id]
                          for doc_id in block.page_ids()}
        clusters = r_swoosh(block_features, self._match, learned.threshold)
        return Clustering(clusters)
