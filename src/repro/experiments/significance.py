"""Statistical significance of strategy comparisons.

Table II differences in the paper are reported without significance
analysis; with only 12/10 names per dataset that is a real gap.  This
module provides the two standard tools for paired per-name scores:

* a **paired sign-flip permutation test** for the hypothesis "strategy A
  beats strategy B" over names;
* a **paired bootstrap** confidence interval for the mean difference.

Both are exact in spirit (seeded resampling), require no distributional
assumptions, and operate on :class:`~repro.experiments.runner.RunResult`
pairs evaluated on the same dataset and seeds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.experiments.runner import RunResult


@dataclass(frozen=True)
class PairedComparison:
    """Outcome of comparing two strategies on per-name scores."""

    label_a: str
    label_b: str
    metric: str
    mean_difference: float      # mean(A - B) over names
    p_value: float              # one-sided: P(diff >= observed | H0)
    ci_low: float               # bootstrap 95 % CI of the mean difference
    ci_high: float
    n_names: int

    @property
    def significant(self) -> bool:
        """True when A > B at the 5 % level."""
        return self.p_value < 0.05


def paired_differences(result_a: RunResult, result_b: RunResult,
                       metric: str = "fp") -> list[float]:
    """Per-name mean score differences A − B.

    Raises:
        ValueError: when the two results cover different names.
    """
    names_a = set(result_a.names())
    names_b = set(result_b.names())
    if names_a != names_b:
        raise ValueError("results cover different names")
    return [
        result_a.name_mean(name).get(metric)
        - result_b.name_mean(name).get(metric)
        for name in sorted(names_a)
    ]


def permutation_test(differences: list[float], n_permutations: int = 10_000,
                     seed: int = 0) -> float:
    """One-sided paired sign-flip permutation p-value.

    Under H0 (no difference) each per-name difference is symmetric around
    zero, so its sign is exchangeable; the p-value is the fraction of
    random sign assignments whose mean reaches the observed mean.

    Raises:
        ValueError: for an empty difference list.
    """
    if not differences:
        raise ValueError("no differences to test")
    rng = random.Random(seed)
    observed = sum(differences) / len(differences)
    at_least_as_large = 0
    for _ in range(n_permutations):
        total = 0.0
        for value in differences:
            total += value if rng.random() < 0.5 else -value
        if total / len(differences) >= observed - 1e-15:
            at_least_as_large += 1
    # Add-one smoothing keeps the estimate away from an impossible 0.
    return (at_least_as_large + 1) / (n_permutations + 1)


def bootstrap_interval(differences: list[float], n_resamples: int = 10_000,
                       confidence: float = 0.95,
                       seed: int = 0) -> tuple[float, float]:
    """Percentile bootstrap CI for the mean difference.

    Raises:
        ValueError: for empty input or a confidence outside (0, 1).
    """
    if not differences:
        raise ValueError("no differences to resample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    rng = random.Random(seed)
    n_values = len(differences)
    means = []
    for _ in range(n_resamples):
        total = sum(differences[rng.randrange(n_values)]
                    for _ in range(n_values))
        means.append(total / n_values)
    means.sort()
    tail = (1.0 - confidence) / 2.0
    low_index = int(tail * n_resamples)
    high_index = min(n_resamples - 1, int((1.0 - tail) * n_resamples))
    return means[low_index], means[high_index]


def compare_strategies(result_a: RunResult, result_b: RunResult,
                       metric: str = "fp", seed: int = 0) -> PairedComparison:
    """Full paired comparison of two evaluated strategies."""
    differences = paired_differences(result_a, result_b, metric=metric)
    ci_low, ci_high = bootstrap_interval(differences, seed=seed)
    return PairedComparison(
        label_a=result_a.label,
        label_b=result_b.label,
        metric=metric,
        mean_difference=sum(differences) / len(differences),
        p_value=permutation_test(differences, seed=seed),
        ci_low=ci_low,
        ci_high=ci_high,
        n_names=len(differences),
    )
