"""Plain-text rendering of experiment outputs.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that output aligned and readable in terminals and
captured logs.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.experiments.figures import RegionAccuracyPoint


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Render an aligned text table.

    Floats are formatted to four decimals (the paper's precision).
    """
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.4f}"
        return str(cell)

    rendered = [[render(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(header.ljust(width)
                            for header, width in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rendered:
        lines.append("  ".join(cell.ljust(width)
                               for cell, width in zip(row, widths)))
    return "\n".join(lines)


def format_bar_chart(values: Mapping[str, float], title: str | None = None,
                     width: int = 50) -> str:
    """Render a horizontal ASCII bar chart of label -> value in [0, 1]."""
    lines = []
    if title:
        lines.append(title)
    label_width = max((len(label) for label in values), default=0)
    for label, value in values.items():
        clamped = min(1.0, max(0.0, value))
        bar = "#" * round(clamped * width)
        lines.append(f"{label.ljust(label_width)}  {value:.4f}  {bar}")
    return "\n".join(lines)


def format_region_series(points: Sequence[RegionAccuracyPoint],
                         title: str | None = None) -> str:
    """Render a Figure 1 style region-accuracy series."""
    headers = ["region", "interval", "center", "pairs", "accuracy", "bar"]
    rows = []
    for index, point in enumerate(points):
        bar = "#" * round(point.accuracy * 30)
        rows.append([
            index,
            f"[{point.low:.3f}, {point.high:.3f})",
            f"{point.center:.3f}",
            point.n_training_pairs,
            point.accuracy,
            bar,
        ])
    return format_table(headers, rows, title=title)
