"""Builders for the paper's Table II and Table III."""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.config import table2_config
from repro.corpus.datasets import surname
from repro.experiments.figures import run_results_per_function
from repro.experiments.runner import ExperimentContext, run_config

#: Table II column order.
TABLE2_COLUMNS = ("I4", "I7", "I10", "C4", "C7", "C10", "W")

#: Table II metric rows per dataset, in the paper's order.
TABLE2_METRICS = ("fp", "f1", "rand")


@dataclass
class Table2:
    """Table II — comparison of function subsets and decision criteria.

    ``values[dataset][metric][column]`` holds the averaged score.
    """

    values: dict[str, dict[str, dict[str, float]]] = field(default_factory=dict)

    def get(self, dataset: str, metric: str, column: str) -> float:
        return self.values[dataset][metric][column]

    def datasets(self) -> list[str]:
        return list(self.values)


def table2(contexts: dict[str, ExperimentContext],
           seeds: Sequence[int]) -> Table2:
    """Regenerate Table II over the given dataset contexts.

    Args:
        contexts: dataset label -> prepared context (the paper uses
            WWW'05 and WePS).
        seeds: the protocol's training seeds.
    """
    table = Table2()
    for dataset_label, context in contexts.items():
        per_metric: dict[str, dict[str, float]] = {m: {} for m in TABLE2_METRICS}
        for column in TABLE2_COLUMNS:
            result = run_config(context, table2_config(column), seeds,
                                label=column)
            mean = result.mean()
            for metric in TABLE2_METRICS:
                per_metric[metric][column] = mean.get(metric)
        table.values[dataset_label] = per_metric
    return table


@dataclass
class Table3:
    """Table III — per-name Fp for each function, C10 and W.

    ``values[surname][column]`` holds the averaged Fp-measure; columns are
    F1…F10, C10, W.
    """

    values: dict[str, dict[str, float]] = field(default_factory=dict)
    columns: tuple[str, ...] = ()

    def get(self, name: str, column: str) -> float:
        return self.values[name][column]

    def names(self) -> list[str]:
        return list(self.values)

    def best_function_per_name(self) -> dict[str, str]:
        """Which single function wins each name (paper's S5 observation)."""
        winners = {}
        for name, row in self.values.items():
            function_scores = {column: value for column, value in row.items()
                               if column.startswith("F") and column != "Fp"}
            winners[name] = max(function_scores, key=function_scores.get)
        return winners


def table3(context: ExperimentContext, seeds: Sequence[int],
           metric: str = "fp") -> Table3:
    """Regenerate Table III (per-name Fp on the WWW'05-like dataset)."""
    per_function = run_results_per_function(context, seeds)
    c10 = run_config(context, table2_config("C10"), seeds, label="C10")
    weighted = run_config(context, table2_config("W"), seeds, label="W")

    columns = tuple(per_function) + ("C10", "W")
    table = Table3(columns=columns)
    for query_name in context.collection.query_names():
        row: dict[str, float] = {}
        for function_name, result in per_function.items():
            row[function_name] = result.name_mean(query_name).get(metric)
        row["C10"] = c10.name_mean(query_name).get(metric)
        row["W"] = weighted.name_mean(query_name).get(metric)
        table.values[surname(query_name)] = row
    return table
