"""Experiment harness for regenerating the paper's tables and figures.

``ExperimentContext`` prepares a dataset once (extraction + similarity
graphs — the quadratic work that does not depend on training seeds); the
runners then evaluate resolver configurations or baselines across the
paper's 5-run protocol.  ``figures`` and ``tables`` build the exact series
the paper plots/tabulates, and ``reporting`` renders them as text.
"""

from repro.experiments.runner import (
    ExperimentContext,
    RunResult,
    run_baseline,
    run_config,
)
from repro.experiments.figures import (
    figure1_series,
    figure2_series,
    figure3_series,
    per_function_series,
)
from repro.experiments.tables import (
    TABLE2_COLUMNS,
    table2,
    table3,
)
from repro.experiments.analysis import (
    BlockProfile,
    difficulty_correlation,
    profile_block,
    profile_collection,
)
from repro.experiments.significance import (
    PairedComparison,
    compare_strategies,
    paired_differences,
    permutation_test,
)
from repro.experiments.reporting import (
    format_bar_chart,
    format_region_series,
    format_table,
)

__all__ = [
    "ExperimentContext",
    "RunResult",
    "run_config",
    "run_baseline",
    "figure1_series",
    "figure2_series",
    "figure3_series",
    "per_function_series",
    "TABLE2_COLUMNS",
    "table2",
    "table3",
    "format_table",
    "format_bar_chart",
    "format_region_series",
    "BlockProfile",
    "profile_block",
    "profile_collection",
    "difficulty_correlation",
    "PairedComparison",
    "compare_strategies",
    "paired_differences",
    "permutation_test",
]
