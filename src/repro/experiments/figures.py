"""Builders for the paper's figure data.

* Figure 1 — per-region accuracy of one similarity function (the paper
  shows F3 for "Cohen" with k-means regions).
* Figure 2 — WWW'05: Fp / F / Rand per individual function plus the
  combined technique.
* Figure 3 — the same on the WePS dataset.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.accuracy import RegionAccuracyProfile
from repro.core.config import ResolverConfig, table2_config
from repro.core.labels import TrainingSample
from repro.core.regions import fit_regions
from repro.experiments.runner import ExperimentContext, RunResult, run_config
from repro.metrics.report import MetricReport
from repro.ml.sampling import sample_training_pairs
from repro.similarity.functions import ALL_FUNCTION_NAMES


@dataclass(frozen=True)
class RegionAccuracyPoint:
    """One region of the Figure 1 series."""

    low: float
    high: float
    center: float
    accuracy: float
    n_training_pairs: int


def figure1_series(
    context: ExperimentContext,
    function_name: str = "F3",
    query_name: str | None = None,
    method: str = "kmeans",
    k: int = 10,
    training_fraction: float = 0.1,
    seed: int = 0,
) -> list[RegionAccuracyPoint]:
    """Per-region link-existence accuracy for one function on one name.

    Defaults mirror the paper's Figure 1: function F3, the "Cohen" block,
    k-means regions.

    Raises:
        KeyError: for unknown query or function names.
    """
    if query_name is None:
        cohen = [name for name in context.collection.query_names()
                 if name.endswith("Cohen")]
        query_name = cohen[0] if cohen else context.collection.query_names()[0]
    block = context.collection.by_name(query_name)
    graph = context.graphs_by_name[query_name][function_name]

    training = TrainingSample.from_pairs(sample_training_pairs(
        block, fraction=training_fraction, seed=seed))
    labeled_values = training.labeled_values(graph)
    regions = fit_regions(method, [value for value, _ in labeled_values], k=k)
    profile = RegionAccuracyProfile(regions, labeled_values)

    points = []
    for index in range(profile.n_regions):
        low, high = regions.bounds(index)
        stats = profile.region_stats(index)
        points.append(RegionAccuracyPoint(
            low=low, high=high, center=(low + high) / 2.0,
            accuracy=stats.accuracy, n_training_pairs=stats.n_pairs))
    return points


def per_function_series(
    context: ExperimentContext,
    seeds: Sequence[int],
    combined_column: str = "C10",
) -> dict[str, MetricReport]:
    """Mean metrics per individual function plus the combined technique.

    This is the data behind Figures 2 and 3: each function is evaluated as
    a threshold-based single-function resolver; the final entry (keyed
    ``"combined"``) is the paper's proposed technique.
    """
    series: dict[str, MetricReport] = {}
    for function_name in ALL_FUNCTION_NAMES:
        config = ResolverConfig(function_names=(function_name,),
                                criteria=("threshold",))
        series[function_name] = run_config(
            context, config, seeds, label=function_name).mean()
    combined = run_config(context, table2_config(combined_column), seeds,
                          label="combined")
    series["combined"] = combined.mean()
    return series


def figure2_series(context: ExperimentContext,
                   seeds: Sequence[int]) -> dict[str, MetricReport]:
    """Figure 2 — per-function + combined metrics on a WWW'05-like context."""
    return per_function_series(context, seeds)


def figure3_series(context: ExperimentContext,
                   seeds: Sequence[int]) -> dict[str, MetricReport]:
    """Figure 3 — per-function + combined metrics on a WePS-like context."""
    return per_function_series(context, seeds)


def run_results_per_function(
    context: ExperimentContext,
    seeds: Sequence[int],
) -> dict[str, RunResult]:
    """Full per-run results per function (used by Table III)."""
    results = {}
    for function_name in ALL_FUNCTION_NAMES:
        config = ResolverConfig(function_names=(function_name,),
                                criteria=("threshold",))
        results[function_name] = run_config(context, config, seeds,
                                            label=function_name)
    return results
