"""Shared experiment runner.

Implements the paper's evaluation protocol (§V-A2): for each of several
runs, draw a fresh 10 % training sample per name, resolve, score against
ground truth, and average.  Similarity graphs are computed once per
dataset and shared across configurations, runs and baselines — they do not
depend on the training sample.

Preparation and the per-run fit/evaluate passes are scheduled by the
runtime engine (:mod:`repro.runtime`): ``prepare(..., workers=4)`` fans
the per-block extraction + similarity step out to a process pool, and
every pass reports a :class:`~repro.runtime.stats.RunStats` — see
``docs/performance.md``.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.baselines.base import PairwiseBaseline
from repro.core.config import ResolverConfig
from repro.core.labels import TrainingSample
from repro.core.resolver import EntityResolver, compute_similarity_graphs
from repro.corpus.documents import DocumentCollection
from repro.extraction.features import PageFeatures
from repro.extraction.pipeline import ExtractionPipeline
from repro.graph.entity_graph import WeightedPairGraph
from repro.metrics.clusterings import clustering_from_assignments
from repro.metrics.report import MetricReport, evaluate_clustering, mean_report
from repro.ml.sampling import sample_training_pairs, training_runs
from repro.runtime.cache import SimilarityCache
from repro.runtime.executor import BlockExecutor, executor_for_workers
from repro.runtime.stats import RunStats, TaskStats
from repro.similarity.functions import default_functions


@dataclass
class ExperimentContext:
    """A dataset with its precomputed features and similarity graphs.

    Attributes:
        stats: the engine's record of the preparation pass (wall time,
            pairs scored, per-block timings).
    """

    collection: DocumentCollection
    features_by_name: dict[str, dict[str, PageFeatures]]
    graphs_by_name: dict[str, dict[str, WeightedPairGraph]]
    stats: RunStats | None = None

    @classmethod
    def prepare(cls, collection: DocumentCollection,
                pipeline: ExtractionPipeline | None = None,
                functions: list | None = None,
                workers: int = 1,
                oversubscribe: bool = False,
                executor: BlockExecutor | None = None,
                backend: str | None = None,
                cache: SimilarityCache | None = None) -> "ExperimentContext":
        """Run extraction and the quadratic similarity step once.

        All ten Table I functions are computed by default so every
        configuration (any subset) can reuse the same graphs; pass
        ``functions`` (e.g. ``repro.similarity.extended.full_battery()``)
        to precompute a different battery.

        Blocks are independent, so preparation parallelizes perfectly:
        ``workers=N`` (or an explicit ``executor``) fans the per-block
        work out to a process pool; results are merged in block order and
        are identical to a serial run.  A pool built here from
        ``workers=`` is closed before returning; an explicit ``executor``
        stays open for the caller to reuse (and close).
        ``oversubscribe`` lifts the worker-count core cap
        (see :class:`~repro.runtime.executor.ProcessPoolBlockExecutor`).  ``backend`` selects the scoring
        backend for the quadratic step (``None``: ambient default;
        bit-identical either way).

        By default the serial path streams: each block's cache entries
        are dropped before the next block is touched.  Pass an external
        ``cache`` (serial only) to *retain* the prepared features and
        pair weights instead — hand it to
        :meth:`~repro.core.model.ResolverModel.adopt_similarity_cache`
        and subsequent predict calls serve from the prepared state
        rather than recomputing the quadratic step.
        """
        if pipeline is None:
            pipeline = EntityResolver(ResolverConfig()).pipeline_for(collection)
        functions = functions if functions is not None else default_functions()
        owns_executor = executor is None
        executor = executor or executor_for_workers(
            workers, oversubscribe=oversubscribe)
        if cache is not None and not executor.is_serial:
            raise ValueError(
                "a retained prepare cache requires serial execution; "
                "parallel workers fill transient per-process caches")
        started = time.perf_counter()
        stats = RunStats.for_executor("prepare", executor)
        features_by_name = {}
        graphs_by_name = {}
        if executor.is_serial:
            retain = cache is not None
            cache = cache if retain else SimilarityCache()
            for block in collection:
                block_started = time.perf_counter()
                misses_before = cache.pair_misses
                hits_before = cache.pair_hits
                if retain:
                    # Through the cache, so the retained entries serve
                    # later predict calls feature-for-feature.
                    features = cache.features_for(block,
                                                  pipeline.extract_block)
                else:
                    features = pipeline.extract_block(block)
                features_by_name[block.query_name] = features
                graphs_by_name[block.query_name] = compute_similarity_graphs(
                    block, features, functions, cache=cache, backend=backend)
                stats.add_task(TaskStats(
                    query_name=block.query_name,
                    seconds=time.perf_counter() - block_started,
                    pairs_scored=cache.pair_misses - misses_before,
                    cache_hits=cache.pair_hits - hits_before,
                    cache_misses=cache.pair_misses - misses_before,
                ))
                if not retain:
                    cache.drop_block(block)
        else:
            from repro.runtime.tasks import PrepareBlockTask, run_block_tasks

            try:
                payloads = [PrepareBlockTask(pipeline=pipeline, block=block,
                                             functions=tuple(functions),
                                             backend=backend)
                            for block in collection]
                weights = [len(block) for block in collection]
                for name, features, graphs, task_stats in run_block_tasks(
                        executor, "prepare", payloads, weights=weights,
                        stats=stats):
                    features_by_name[name] = features
                    graphs_by_name[name] = graphs
                    stats.add_task(task_stats)
            finally:
                # The pool is ours only if we built it from `workers=`;
                # caller-provided executors stay open for reuse.
                if owns_executor:
                    executor.close()
        stats.wall_seconds = time.perf_counter() - started
        stats.finish_executor(executor)
        return cls(collection=collection,
                   features_by_name=features_by_name,
                   graphs_by_name=graphs_by_name,
                   stats=stats)

    def seeds(self, n_runs: int = 5, base_seed: int = 0) -> list[int]:
        """The protocol's per-run training seeds."""
        return training_runs(n_runs=n_runs, base_seed=base_seed)


@dataclass
class RunResult:
    """Per-run, per-name metric reports for one strategy.

    Attributes:
        stats: aggregated engine stats across the runs (fit + evaluate
            passes), when the strategy ran through the engine.
        stage_seconds: aggregated per-stage wall time across the runs'
            plan executions (``stage name -> seconds``), when the
            strategy ran through stage plans.
    """

    label: str
    #: one entry per run: query name -> metric report
    per_seed_reports: list[dict[str, MetricReport]] = field(default_factory=list)
    stats: RunStats | None = None
    stage_seconds: dict[str, float] = field(default_factory=dict)

    def add_stage_stats(self, stage_stats) -> None:
        """Fold one plan run's per-stage timings into the aggregate."""
        for entry in stage_stats or []:
            self.stage_seconds[entry.stage] = (
                self.stage_seconds.get(entry.stage, 0.0) + entry.seconds)

    def names(self) -> list[str]:
        return list(self.per_seed_reports[0]) if self.per_seed_reports else []

    def mean(self) -> MetricReport:
        """Grand mean: average names within a run, then average runs."""
        per_run = [mean_report(list(reports.values()))
                   for reports in self.per_seed_reports]
        return mean_report(per_run)

    def name_mean(self, query_name: str) -> MetricReport:
        """Average of one name's reports across runs."""
        return mean_report([reports[query_name]
                            for reports in self.per_seed_reports])

    def metric(self, metric: str = "fp") -> float:
        """Convenience: one scalar for the whole run."""
        return self.mean().get(metric)


def run_config(context: ExperimentContext, config: ResolverConfig,
               seeds: Sequence[int], label: str | None = None,
               executor: BlockExecutor | None = None) -> RunResult:
    """Evaluate a resolver configuration under the multi-run protocol.

    Each run fits a fresh :class:`~repro.core.model.ResolverModel` on its
    training draw, then evaluates the model's (label-free) predictions —
    the same fit → predict → score split the serving API uses.  Both
    passes are stage-plan executions; their per-stage timings accumulate
    on the result's ``stage_seconds`` alongside the merged engine stats.
    ``executor`` (default: the config's) schedules the per-block work of
    both passes; when the config selects a parallel backend, one
    persistent pool is built here and reused by every seed's fit and
    evaluate pass — a whole protocol run pays a single fork wave.
    """
    from repro.runtime.executor import executor_from_config

    resolver = EntityResolver(config)
    result = RunResult(label=label or config.combiner)
    owns_executor = executor is None
    if owns_executor:
        executor = executor_from_config(config)
    try:
        for seed in seeds:
            model = resolver.fit(context.collection, training_seed=seed,
                                 graphs_by_name=context.graphs_by_name,
                                 executor=executor)
            resolution = model.evaluate_collection(
                context.collection, graphs_by_name=context.graphs_by_name,
                executor=executor)
            result.per_seed_reports.append(
                {block.query_name: block.report
                 for block in resolution.blocks})
            for stats in (model.fit_stats, resolution.stats):
                if stats is None:
                    continue
                result.stats = (
                    stats if result.stats is None
                    else result.stats.merged(stats, phase="protocol"))
            result.add_stage_stats(model.fit_stage_stats)
            result.add_stage_stats(resolution.stage_stats)
    finally:
        if owns_executor:
            executor.close()
    return result


def run_baseline(context: ExperimentContext, baseline: PairwiseBaseline,
                 seeds: Sequence[int],
                 training_fraction: float = 0.1,
                 sampling_mode: str = "pairs",
                 label: str | None = None) -> RunResult:
    """Evaluate a baseline under the same protocol as :func:`run_config`."""
    result = RunResult(label=label or baseline.name)
    for seed in seeds:
        reports: dict[str, MetricReport] = {}
        for block in context.collection:
            training = TrainingSample.from_pairs(sample_training_pairs(
                block, fraction=training_fraction, seed=seed,
                mode=sampling_mode))
            predicted = baseline.resolve_block(
                block, context.graphs_by_name[block.query_name], training)
            truth = clustering_from_assignments(block.ground_truth())
            reports[block.query_name] = evaluate_clustering(predicted, truth)
        result.per_seed_reports.append(reports)
    return result
