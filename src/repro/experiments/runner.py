"""Shared experiment runner.

Implements the paper's evaluation protocol (§V-A2): for each of several
runs, draw a fresh 10 % training sample per name, resolve, score against
ground truth, and average.  Similarity graphs are computed once per
dataset and shared across configurations, runs and baselines — they do not
depend on the training sample.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.baselines.base import PairwiseBaseline
from repro.core.config import ResolverConfig
from repro.core.labels import TrainingSample
from repro.core.resolver import EntityResolver, compute_similarity_graphs
from repro.corpus.documents import DocumentCollection
from repro.extraction.features import PageFeatures
from repro.extraction.pipeline import ExtractionPipeline
from repro.graph.entity_graph import WeightedPairGraph
from repro.metrics.clusterings import clustering_from_assignments
from repro.metrics.report import MetricReport, evaluate_clustering, mean_report
from repro.ml.sampling import sample_training_pairs, training_runs
from repro.similarity.functions import default_functions


@dataclass
class ExperimentContext:
    """A dataset with its precomputed features and similarity graphs."""

    collection: DocumentCollection
    features_by_name: dict[str, dict[str, PageFeatures]]
    graphs_by_name: dict[str, dict[str, WeightedPairGraph]]

    @classmethod
    def prepare(cls, collection: DocumentCollection,
                pipeline: ExtractionPipeline | None = None,
                functions: list | None = None) -> "ExperimentContext":
        """Run extraction and the quadratic similarity step once.

        All ten Table I functions are computed by default so every
        configuration (any subset) can reuse the same graphs; pass
        ``functions`` (e.g. ``repro.similarity.extended.full_battery()``)
        to precompute a different battery.
        """
        if pipeline is None:
            pipeline = EntityResolver(ResolverConfig()).pipeline_for(collection)
        functions = functions if functions is not None else default_functions()
        features_by_name = {}
        graphs_by_name = {}
        for block in collection:
            features = pipeline.extract_block(block)
            features_by_name[block.query_name] = features
            graphs_by_name[block.query_name] = compute_similarity_graphs(
                block, features, functions)
        return cls(collection=collection,
                   features_by_name=features_by_name,
                   graphs_by_name=graphs_by_name)

    def seeds(self, n_runs: int = 5, base_seed: int = 0) -> list[int]:
        """The protocol's per-run training seeds."""
        return training_runs(n_runs=n_runs, base_seed=base_seed)


@dataclass
class RunResult:
    """Per-run, per-name metric reports for one strategy."""

    label: str
    #: one entry per run: query name -> metric report
    per_seed_reports: list[dict[str, MetricReport]] = field(default_factory=list)

    def names(self) -> list[str]:
        return list(self.per_seed_reports[0]) if self.per_seed_reports else []

    def mean(self) -> MetricReport:
        """Grand mean: average names within a run, then average runs."""
        per_run = [mean_report(list(reports.values()))
                   for reports in self.per_seed_reports]
        return mean_report(per_run)

    def name_mean(self, query_name: str) -> MetricReport:
        """Average of one name's reports across runs."""
        return mean_report([reports[query_name]
                            for reports in self.per_seed_reports])

    def metric(self, metric: str = "fp") -> float:
        """Convenience: one scalar for the whole run."""
        return self.mean().get(metric)


def run_config(context: ExperimentContext, config: ResolverConfig,
               seeds: Sequence[int], label: str | None = None) -> RunResult:
    """Evaluate a resolver configuration under the multi-run protocol.

    Each run fits a fresh :class:`~repro.core.model.ResolverModel` on its
    training draw, then evaluates the model's (label-free) predictions —
    the same fit → predict → score split the serving API uses.
    """
    resolver = EntityResolver(config)
    result = RunResult(label=label or config.combiner)
    for seed in seeds:
        model = resolver.fit(context.collection, training_seed=seed,
                             graphs_by_name=context.graphs_by_name)
        resolution = model.evaluate_collection(
            context.collection, graphs_by_name=context.graphs_by_name)
        result.per_seed_reports.append(
            {block.query_name: block.report for block in resolution.blocks})
    return result


def run_baseline(context: ExperimentContext, baseline: PairwiseBaseline,
                 seeds: Sequence[int],
                 training_fraction: float = 0.1,
                 sampling_mode: str = "pairs",
                 label: str | None = None) -> RunResult:
    """Evaluate a baseline under the same protocol as :func:`run_config`."""
    result = RunResult(label=label or baseline.name)
    for seed in seeds:
        reports: dict[str, MetricReport] = {}
        for block in context.collection:
            training = TrainingSample.from_pairs(sample_training_pairs(
                block, fraction=training_fraction, seed=seed,
                mode=sampling_mode))
            predicted = baseline.resolve_block(
                block, context.graphs_by_name[block.query_name], training)
            truth = clustering_from_assignments(block.ground_truth())
            reports[block.query_name] = evaluate_clustering(predicted, truth)
        result.per_seed_reports.append(reports)
    return result
