"""Dataset and result analysis utilities.

Answers the diagnostic questions a practitioner asks of a web-people-search
corpus: how dominated is each name by its largest cluster, how available is
each feature, how informative is each similarity function, and how do
those properties relate to resolution quality.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.entropy import feature_availability, value_entropy
from repro.corpus.datasets import surname
from repro.experiments.runner import ExperimentContext, RunResult
from repro.similarity.functions import ALL_FUNCTION_NAMES


@dataclass(frozen=True)
class BlockProfile:
    """Structural statistics of one name's block."""

    query_name: str
    n_pages: int
    n_persons: int
    dominance: float          # largest true cluster / pages
    singleton_fraction: float  # fraction of true clusters of size 1
    feature_availability: dict[str, float]
    function_entropy: dict[str, float]

    @property
    def label(self) -> str:
        return surname(self.query_name)


def profile_block(context: ExperimentContext, query_name: str) -> BlockProfile:
    """Compute the structural profile of one block."""
    block = context.collection.by_name(query_name)
    sizes = sorted((len(cluster) for cluster in block.true_clusters()),
                   reverse=True)
    n_pages = len(block)
    graphs = context.graphs_by_name[query_name]
    return BlockProfile(
        query_name=query_name,
        n_pages=n_pages,
        n_persons=len(sizes),
        dominance=sizes[0] / n_pages if n_pages else 0.0,
        singleton_fraction=(sum(1 for size in sizes if size == 1) / len(sizes)
                            if sizes else 0.0),
        feature_availability=feature_availability(
            context.features_by_name[query_name]),
        function_entropy={name: value_entropy(graphs[name])
                          for name in ALL_FUNCTION_NAMES},
    )


def profile_collection(context: ExperimentContext) -> list[BlockProfile]:
    """Profiles for every block of the context's dataset."""
    return [profile_block(context, name)
            for name in context.collection.query_names()]


def difficulty_correlation(context: ExperimentContext,
                           result: RunResult,
                           metric: str = "fp") -> float:
    """Pearson correlation between true cluster count and quality.

    The paper's hard names (Voss, Pereira) have many clusters; a negative
    correlation confirms the dataset reproduces that difficulty gradient.
    Returns 0.0 when the correlation is undefined (constant inputs).
    """
    profiles = profile_collection(context)
    xs = [float(profile.n_persons) for profile in profiles]
    ys = [result.name_mean(profile.query_name).get(metric)
          for profile in profiles]
    return _pearson(xs, ys)


def _pearson(xs: list[float], ys: list[float]) -> float:
    n_points = len(xs)
    if n_points < 2:
        return 0.0
    mean_x = sum(xs) / n_points
    mean_y = sum(ys) / n_points
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0.0 or var_y == 0.0:
        return 0.0
    return cov / (var_x ** 0.5 * var_y ** 0.5)
