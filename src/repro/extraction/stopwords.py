"""Stopword handling for document vectorization.

The TF-IDF vectorizer removes classic English function words plus any
corpus-specific high-frequency filler the caller supplies (the synthetic
corpus has its own "general word" layer that plays the role of function
words and is best filtered the same way).
"""

from __future__ import annotations

from collections.abc import Iterable

#: Small classic English stopword list; enough for web-page body text.
STOPWORDS: frozenset[str] = frozenset("""
a about above after again all also an and any are as at be because been
before being below between both but by can did do does doing down during
each few for from further had has have having he her here hers him his how
i if in into is it its just me more most my no nor not of off on once only
or other our ours out over own same she should so some such than that the
their theirs them then there these they this those through to too under
until up very was we were what when where which while who whom why will
with you your yours
""".split())


def is_stopword(token: str, extra: frozenset[str] | None = None) -> bool:
    """True if the (lowercased) token is a stopword."""
    lowered = token.lower()
    if lowered in STOPWORDS:
        return True
    return extra is not None and lowered in extra


def build_stopword_set(extra_words: Iterable[str] = ()) -> frozenset[str]:
    """The default stopwords extended with ``extra_words`` (lowercased)."""
    return STOPWORDS | frozenset(word.lower() for word in extra_words)
