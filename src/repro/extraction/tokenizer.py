"""Tokenization for web-page text.

Tokens keep their original capitalization (the NER relies on it) but are
stripped of punctuation; a trailing period after a single capital letter is
treated as a name initial and preserved as the bare letter (``"J." -> "J"``).
"""

from __future__ import annotations

import re

_SENTENCE_SPLIT = re.compile(r"(?<=[.!?])\s+")
_TOKEN = re.compile(r"[A-Za-z][A-Za-z'-]*")


def sentences(text: str) -> list[str]:
    """Split ``text`` into sentences on terminal punctuation."""
    parts = _SENTENCE_SPLIT.split(text.strip())
    return [part for part in parts if part]


def tokenize(text: str) -> list[str]:
    """Extract word tokens from ``text``, preserving case.

    Punctuation is dropped; hyphens and apostrophes inside words are kept.

    >>> tokenize("Prof. J. Cohen works at Acme Labs.")
    ['Prof', 'J', 'Cohen', 'works', 'at', 'Acme', 'Labs']
    """
    return _TOKEN.findall(text)


def lower_tokens(text: str) -> list[str]:
    """Lowercased tokens, for term-frequency style processing."""
    return [token.lower() for token in tokenize(text)]


def is_capitalized(token: str) -> bool:
    """True for tokens starting with an uppercase letter."""
    return bool(token) and token[0].isupper()


def is_initial(token: str) -> bool:
    """True for single-letter uppercase tokens (name initials)."""
    return len(token) == 1 and token.isupper()
