"""Information-extraction substrate.

The paper preprocesses every page with third-party IE services (AlchemyAPI,
GATE, OpenCalais, SemanticHacker, Lucene).  This package implements the
same capabilities from scratch: tokenization, dictionary-based named-entity
recognition, concept spotting with weighted concept vectors, and TF-IDF
document vectors.  Similarity functions consume the resulting
:class:`~repro.extraction.features.PageFeatures`, never raw pages —
matching the paper's architecture.
"""

from repro.extraction.tokenizer import sentences, tokenize
from repro.extraction.stopwords import STOPWORDS, is_stopword
from repro.extraction.ner import DictionaryNer, NerResult, PersonMention
from repro.extraction.concepts import ConceptExtractor
from repro.extraction.tfidf import TfidfVectorizer
from repro.extraction.features import PageFeatures
from repro.extraction.pipeline import ExtractionPipeline

__all__ = [
    "tokenize",
    "sentences",
    "STOPWORDS",
    "is_stopword",
    "DictionaryNer",
    "NerResult",
    "PersonMention",
    "ConceptExtractor",
    "TfidfVectorizer",
    "PageFeatures",
    "ExtractionPipeline",
]
