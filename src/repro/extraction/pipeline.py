"""End-to-end feature extraction for document collections.

``ExtractionPipeline`` turns raw :class:`~repro.corpus.documents.WebPage`
objects into :class:`~repro.extraction.features.PageFeatures`, running the
dictionary NER, the concept extractor and a per-block TF-IDF vectorizer.
TF-IDF is fit per blocking unit (one ambiguous name's pages) because that
is the comparison universe of the paper's pipeline.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable

from repro.corpus.documents import DocumentCollection, NameCollection
from repro.corpus.vocabulary import Vocabulary
from repro.extraction.concepts import ConceptExtractor
from repro.extraction.features import PageFeatures
from repro.extraction.ner import DictionaryNer, NerResult
from repro.extraction.stopwords import build_stopword_set
from repro.extraction.tfidf import TfidfVectorizer
from repro.extraction.tokenizer import tokenize
from repro.similarity.strings import jaro_winkler, name_similarity


class ExtractionPipeline:
    """Extracts :class:`PageFeatures` from pages.

    Args:
        organizations: organization gazetteer for the NER.
        locations: location gazetteer.
        first_names: given-name gazetteer.
        known_surnames: surnames recognizable as bare mentions (usually the
            dataset's query names).
        concepts: the concept inventory for the concept spotter.
        extra_stopwords: corpus-specific stopwords for TF-IDF.
    """

    def __init__(
        self,
        organizations: Iterable[str] = (),
        locations: Iterable[str] = (),
        first_names: Iterable[str] = (),
        known_surnames: Iterable[str] = (),
        concepts: Iterable[str] = (),
        extra_stopwords: Iterable[str] = (),
    ):
        self._ner = DictionaryNer(
            organizations=organizations,
            locations=locations,
            first_names=first_names,
            known_surnames=known_surnames,
        )
        self._concepts = ConceptExtractor(concepts)
        self._stopwords = build_stopword_set(extra_stopwords)

    @classmethod
    def from_vocabulary(cls, vocabulary: Vocabulary,
                        query_names: Iterable[str] = ()) -> "ExtractionPipeline":
        """Build a pipeline whose gazetteers come from a corpus vocabulary.

        This mirrors the paper's dictionary-based NER: the dictionaries are
        the same inventories the (synthetic) web uses.
        """
        surnames = {name.split()[-1] for name in query_names}
        first_names = set(vocabulary.first_names)
        first_names.update(name.split()[0] for name in query_names if " " in name)
        return cls(
            organizations=vocabulary.organizations,
            locations=vocabulary.locations,
            first_names=first_names,
            known_surnames=surnames,
            concepts=vocabulary.concepts,
        )

    def extract_block(self, block: NameCollection) -> dict[str, PageFeatures]:
        """Extract features for every page of one name's block."""
        token_lists = [tokenize(f"{page.title}. {page.text}") for page in block.pages]
        vectorizer = TfidfVectorizer(stopwords=self._stopwords)
        vectorizer.fit(token_lists)

        features: dict[str, PageFeatures] = {}
        for page, tokens in zip(block.pages, token_lists):
            ner_result = self._ner.extract_tokens(tokens)
            concept_counts = self._concepts.extract_counts(tokens)
            features[page.doc_id] = PageFeatures(
                doc_id=page.doc_id,
                url=page.url,
                most_frequent_name=_most_frequent_name(ner_result),
                closest_name_to_query=_closest_name(ner_result, block.query_name),
                concept_vector=ConceptExtractor.weighted_vector(concept_counts),
                concept_set=frozenset(concept_counts),
                organizations=ner_result.organizations,
                other_persons=_other_persons(ner_result, block.query_name),
                locations=ner_result.locations,
                tfidf=vectorizer.transform(tokens),
                n_tokens=len(tokens),
            )
        return features

    def extract_collection(self, collection: DocumentCollection) -> dict[str, PageFeatures]:
        """Extract features for every page in the dataset (block by block)."""
        features: dict[str, PageFeatures] = {}
        for block in collection:
            features.update(self.extract_block(block))
        return features


def _most_frequent_name(ner_result: NerResult) -> str:
    """Dominant person name on the page (feature of F3).

    Full-form mentions ("First Last") are preferred over initials and bare
    surnames; within a form class, higher count wins, then the longer
    surface (more informative), then lexicographic order for determinism.
    """
    counts = ner_result.person_counts()
    if not counts:
        return ""
    full_forms = {m.surface for m in ner_result.persons if m.is_full}

    def rank(item: tuple[str, int]) -> tuple[int, int, int, str]:
        surface, count = item
        return (surface in full_forms, count, len(surface), surface)

    return max(counts.items(), key=rank)[0]


def _closest_name(ner_result: NerResult, query_name: str) -> str:
    """Extracted name most string-similar to the search keyword (F7).

    Name-aware similarity ranks sub-forms of the query ("Cohen",
    "W. Cohen") above unrelated names; Jaro–Winkler breaks residual ties.
    """
    counts = ner_result.person_counts()
    if not counts:
        return ""
    query = query_name.lower()

    def score(item: tuple[str, int]) -> tuple[float, float, int, str]:
        surface, count = item
        lowered = surface.lower()
        return (name_similarity(lowered, query),
                jaro_winkler(lowered, query), count, surface)

    return max(counts.items(), key=score)[0]


def _other_persons(ner_result: NerResult, query_name: str) -> Counter:
    """Person names on the page that are not the query person (F6)."""
    query_surname = query_name.split()[-1].lower()
    counts: Counter = Counter()
    for mention in ner_result.persons:
        if mention.last.lower() == query_surname:
            continue
        counts[mention.surface] += 1
    return counts
