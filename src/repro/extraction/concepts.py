"""Wikipedia-style concept extraction (SemanticHacker substitute).

Concepts are multi-word phrases from a known concept inventory.  The
extractor spots them in lowercased token streams by greedy longest-match
and produces both the raw concept multiset (for the overlap-based F4) and a
frequency-weighted, L1-normalized concept vector (for the cosine-based F1).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable


class ConceptExtractor:
    """Spots known concept phrases in page text.

    Args:
        concepts: the concept inventory (phrases of one or more words).
    """

    def __init__(self, concepts: Iterable[str]):
        self._index: dict[str, set[tuple[str, ...]]] = {}
        self.max_len = 1
        for concept in concepts:
            tokens = tuple(concept.lower().split())
            if not tokens:
                continue
            self._index.setdefault(tokens[0], set()).add(tokens)
            self.max_len = max(self.max_len, len(tokens))

    def extract_counts(self, tokens: list[str]) -> Counter:
        """Concept phrase -> occurrence count for a page.

        Args:
            tokens: the page's tokens (any case; matching is lowercased).
        """
        lowered = [token.lower() for token in tokens]
        counts: Counter = Counter()
        position = 0
        n_tokens = len(lowered)
        while position < n_tokens:
            candidates = self._index.get(lowered[position])
            matched = False
            if candidates:
                limit = min(self.max_len, n_tokens - position)
                for length in range(limit, 0, -1):
                    window = tuple(lowered[position:position + length])
                    if window in candidates:
                        counts[" ".join(window)] += 1
                        position += length
                        matched = True
                        break
            if not matched:
                position += 1
        return counts

    @staticmethod
    def weighted_vector(counts: Counter) -> dict[str, float]:
        """Frequency-weighted concept vector, L1-normalized.

        Returns an empty dict for pages without concepts (the similarity
        functions treat that as zero evidence, one of the paper's "missing
        information" cases).
        """
        total = sum(counts.values())
        if total == 0:
            return {}
        # Key-sorted like the TF-IDF vectors: canonical iteration order is
        # what keeps scalar and vectorized similarity backends bit-identical.
        return {concept: count / total
                for concept, count in sorted(counts.items())}
