"""Dictionary-based named-entity recognition.

The paper extracts organizations, locations and person names with
dictionary-based NER services; this module provides the same capability
from scratch:

* **gazetteer entities** (organizations, locations, concepts treated as
  phrases) are found by greedy longest-match over the token stream,
  case-sensitively for capitalized entity types;
* **person names** are found by pattern matching over capitalized tokens,
  assisted by a first-name gazetteer: ``First Last``, ``F. Last`` (initial
  form) and bare known surnames.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.extraction.tokenizer import is_capitalized, is_initial, tokenize


@dataclass(frozen=True)
class PersonMention:
    """One extracted person-name mention."""

    surface: str
    first: str | None
    last: str

    @property
    def is_full(self) -> bool:
        """True when a given name (not just an initial) is present."""
        return self.first is not None and len(self.first) > 1


@dataclass
class NerResult:
    """Entities extracted from one page."""

    organizations: Counter = field(default_factory=Counter)
    locations: Counter = field(default_factory=Counter)
    persons: list[PersonMention] = field(default_factory=list)

    def person_counts(self) -> Counter:
        """Surface-form counts of person mentions."""
        return Counter(mention.surface for mention in self.persons)


class _PhraseMatcher:
    """Greedy longest-match phrase matcher over token sequences."""

    def __init__(self, phrases: Iterable[str]):
        self._index: dict[str, set[tuple[str, ...]]] = {}
        self.max_len = 1
        for phrase in phrases:
            tokens = tuple(phrase.split())
            if not tokens:
                continue
            self._index.setdefault(tokens[0], set()).add(tokens)
            self.max_len = max(self.max_len, len(tokens))

    def match_at(self, tokens: list[str], position: int) -> tuple[str, ...] | None:
        """Longest phrase starting at ``position``, or None."""
        candidates = self._index.get(tokens[position])
        if not candidates:
            return None
        best: tuple[str, ...] | None = None
        limit = min(self.max_len, len(tokens) - position)
        for length in range(limit, 0, -1):
            window = tuple(tokens[position:position + length])
            if window in candidates:
                best = window
                break
        return best


class DictionaryNer:
    """Gazetteer + pattern NER over tokenized page text.

    Args:
        organizations: organization-name gazetteer.
        locations: location gazetteer.
        first_names: given-name gazetteer used by the person patterns.
        known_surnames: surnames recognizable as bare mentions (typically
            the dataset's ambiguous query names plus vocabulary surnames).
    """

    def __init__(
        self,
        organizations: Iterable[str] = (),
        locations: Iterable[str] = (),
        first_names: Iterable[str] = (),
        known_surnames: Iterable[str] = (),
    ):
        self._org_matcher = _PhraseMatcher(organizations)
        self._loc_matcher = _PhraseMatcher(locations)
        self._first_names = set(first_names)
        self._known_surnames = set(known_surnames)

    def extract(self, text: str) -> NerResult:
        """Run NER over raw page text."""
        return self.extract_tokens(tokenize(text))

    def extract_tokens(self, tokens: list[str]) -> NerResult:
        """Run NER over an already tokenized page.

        Matching priority at each position: organizations, then locations,
        then person patterns.  Matched spans are consumed so one token never
        contributes to two entities.
        """
        result = NerResult()
        position = 0
        n_tokens = len(tokens)
        while position < n_tokens:
            token = tokens[position]
            if not is_capitalized(token):
                position += 1
                continue

            org = self._org_matcher.match_at(tokens, position)
            if org is not None:
                result.organizations[" ".join(org)] += 1
                position += len(org)
                continue

            loc = self._loc_matcher.match_at(tokens, position)
            if loc is not None:
                result.locations[" ".join(loc)] += 1
                position += len(loc)
                continue

            mention, consumed = self._match_person(tokens, position)
            if mention is not None:
                result.persons.append(mention)
                position += consumed
                continue

            position += 1
        return result

    def _match_person(self, tokens: list[str],
                      position: int) -> tuple[PersonMention | None, int]:
        """Try the person-name patterns at ``position``."""
        token = tokens[position]
        has_next = position + 1 < len(tokens)
        next_token = tokens[position + 1] if has_next else ""

        # "First Last" — given name from the gazetteer + capitalized surname.
        if token in self._first_names and is_capitalized(next_token) and not is_initial(next_token):
            surface = f"{token} {next_token}"
            return PersonMention(surface=surface, first=token, last=next_token), 2

        # "F. Last" — single initial + capitalized surname.
        if is_initial(token) and is_capitalized(next_token) and len(next_token) > 1:
            surface = f"{token}. {next_token}"
            return PersonMention(surface=surface, first=token, last=next_token), 2

        # Bare known surname.
        if token in self._known_surnames:
            return PersonMention(surface=token, first=None, last=token), 1

        return None, 0
