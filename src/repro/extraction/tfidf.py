"""TF-IDF document vectorization (Lucene substitute).

Implements the classic ``ltc`` weighting: logarithmic term frequency,
smoothed inverse document frequency, cosine (L2) normalization.  Vectors
are sparse ``dict[str, float]`` — page vocabularies are small relative to
the collection vocabulary, and the similarity layer
(:mod:`repro.similarity.vectors`) operates on sparse dicts throughout.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable, Sequence


class TfidfVectorizer:
    """Fits IDF statistics on a corpus, transforms documents to vectors.

    The paper computes document vectors per blocking unit (one ambiguous
    name's pages form the comparison universe), so a vectorizer instance is
    typically fit per :class:`~repro.corpus.documents.NameCollection`.
    """

    def __init__(self, stopwords: frozenset[str] = frozenset(),
                 min_token_length: int = 2):
        self.stopwords = stopwords
        self.min_token_length = min_token_length
        self._idf: dict[str, float] = {}
        self._n_documents = 0

    @property
    def is_fitted(self) -> bool:
        return self._n_documents > 0

    @property
    def vocabulary_size(self) -> int:
        return len(self._idf)

    def _filter(self, tokens: Iterable[str]) -> list[str]:
        return [
            token.lower() for token in tokens
            if len(token) >= self.min_token_length
            and token.lower() not in self.stopwords
        ]

    def fit(self, documents: Sequence[list[str]]) -> "TfidfVectorizer":
        """Learn IDF weights from tokenized documents.

        Uses smoothed IDF: ``log((1 + N) / (1 + df)) + 1`` so unseen terms
        at transform time still receive a finite weight.
        """
        self._n_documents = len(documents)
        document_frequency: Counter = Counter()
        for tokens in documents:
            document_frequency.update(set(self._filter(tokens)))
        n_docs = self._n_documents
        self._idf = {
            term: math.log((1 + n_docs) / (1 + df)) + 1.0
            for term, df in document_frequency.items()
        }
        return self

    def transform(self, tokens: list[str]) -> dict[str, float]:
        """Map one tokenized document to an L2-normalized TF-IDF vector.

        Terms never seen during :meth:`fit` get the maximum IDF (they are
        maximally discriminative by the smoothing argument).

        Raises:
            RuntimeError: if called before :meth:`fit`.
        """
        if not self.is_fitted:
            raise RuntimeError("TfidfVectorizer.transform called before fit")
        term_frequency = Counter(self._filter(tokens))
        if not term_frequency:
            return {}
        default_idf = math.log(1 + self._n_documents) + 1.0
        # Canonical key order: emitting term-sorted dicts fixes the
        # iteration (and therefore float-summation) order of every sparse
        # fold downstream, which is what lets the vectorized scoring
        # backend reproduce the scalar scores bit-for-bit.
        vector = {
            term: (1.0 + math.log(count)) * self._idf.get(term, default_idf)
            for term, count in sorted(term_frequency.items())
        }
        norm = math.sqrt(sum(weight * weight for weight in vector.values()))
        return {term: weight / norm for term, weight in vector.items()}

    def fit_transform(self, documents: Sequence[list[str]]) -> list[dict[str, float]]:
        """Fit on ``documents`` and transform each of them."""
        self.fit(documents)
        return [self.transform(tokens) for tokens in documents]
