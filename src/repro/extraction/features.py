"""The extracted feature bundle consumed by similarity functions.

Table I of the paper compares pages on: weighted concept vectors, page
URLs, the most frequent name on the page, raw concept sets, organization
entities, co-occurring person names, the name closest to the search
keyword, and TF-IDF word vectors.  :class:`PageFeatures` carries exactly
those fields.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass
class PageFeatures:
    """All features extracted from one web page.

    Attributes:
        doc_id: the page's identifier.
        url: full page URL (feature of F2).
        most_frequent_name: dominant person-name surface form (F3), empty
            string when no person name was found.
        closest_name_to_query: extracted name most string-similar to the
            search keyword (F7), empty string when none was found.
        concept_vector: weighted concept vector (F1).
        concept_set: distinct extracted concepts (F4).
        organizations: organization mention counts (F5).
        other_persons: person names on the page *excluding* the query
            person's own mentions (F6).
        locations: location mention counts (auxiliary).
        tfidf: TF-IDF body vector (F8, F9, F10).
        n_tokens: page length in tokens (diagnostics).
    """

    doc_id: str
    url: str = ""
    most_frequent_name: str = ""
    closest_name_to_query: str = ""
    concept_vector: dict[str, float] = field(default_factory=dict)
    concept_set: frozenset[str] = frozenset()
    organizations: Counter = field(default_factory=Counter)
    other_persons: Counter = field(default_factory=Counter)
    locations: Counter = field(default_factory=Counter)
    tfidf: dict[str, float] = field(default_factory=dict)
    n_tokens: int = 0

    def has_feature(self, feature: str) -> bool:
        """True when the named feature carries any evidence on this page."""
        value = getattr(self, feature)
        if isinstance(value, str):
            return bool(value)
        return len(value) > 0
