"""Minimal machine-learning substrate.

The paper's techniques need only two learning primitives: a 1-D k-means
for the value-space regions (§IV-A) and seeded sampling of labeled
training pairs (§V-A2's 10 %, 5-run protocol).  Both are implemented here
without external dependencies.
"""

from repro.ml.kmeans import KMeans1D, kmeans_1d
from repro.ml.noise import flip_labels, one_sided_noise
from repro.ml.sampling import sample_training_pairs, training_runs

__all__ = [
    "KMeans1D",
    "kmeans_1d",
    "sample_training_pairs",
    "training_runs",
    "flip_labels",
    "one_sided_noise",
]
