"""Seeded one-dimensional k-means.

Used by the paper's second region-construction method (§IV-A): cluster the
training similarity values and let each cluster head define a region.  One
dimension admits a simple, fully deterministic Lloyd iteration with
quantile initialization; ties and empty clusters are handled explicitly so
repeated runs are bit-identical.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass


@dataclass(frozen=True)
class KMeans1D:
    """A fitted 1-D k-means model.

    Attributes:
        centers: cluster heads in ascending order.
        boundaries: midpoints between consecutive centers; value ``v``
            belongs to cluster ``i`` iff
            ``boundaries[i-1] <= v < boundaries[i]`` (with open ends).
    """

    centers: tuple[float, ...]
    boundaries: tuple[float, ...]

    @property
    def k(self) -> int:
        return len(self.centers)

    def assign(self, value: float) -> int:
        """Index of the cluster ``value`` falls into (binary search)."""
        low, high = 0, len(self.boundaries)
        while low < high:
            mid = (low + high) // 2
            if value < self.boundaries[mid]:
                high = mid
            else:
                low = mid + 1
        return low


def kmeans_1d(values: Sequence[float], k: int, max_iterations: int = 100) -> KMeans1D:
    """Fit 1-D k-means with quantile initialization.

    Args:
        values: the sample to cluster (order irrelevant).
        k: requested cluster count; silently reduced to the number of
            distinct values when the sample has fewer.
        max_iterations: Lloyd iteration cap (convergence is typical well
            before this).

    Raises:
        ValueError: for an empty sample or non-positive ``k``.
    """
    if not values:
        raise ValueError("kmeans_1d requires a non-empty sample")
    if k <= 0:
        raise ValueError("k must be positive")

    data = sorted(values)
    distinct = sorted(set(data))
    k = min(k, len(distinct))

    # Quantile initialization: spread initial centers over the sorted data.
    n_values = len(data)
    centers = [data[min(n_values - 1, int((i + 0.5) * n_values / k))] for i in range(k)]
    centers = _dedupe_ascending(centers, distinct)

    for _ in range(max_iterations):
        boundaries = _midpoints(centers)
        # Assign: data is sorted, so clusters are contiguous runs.
        sums = [0.0] * len(centers)
        counts = [0] * len(centers)
        cluster_index = 0
        for value in data:
            while (cluster_index < len(boundaries)
                   and value >= boundaries[cluster_index]):
                cluster_index += 1
            sums[cluster_index] += value
            counts[cluster_index] += 1
        new_centers = [
            sums[i] / counts[i] if counts[i] else centers[i]
            for i in range(len(centers))
        ]
        if new_centers == centers:
            break
        centers = new_centers

    centers_tuple = tuple(centers)
    return KMeans1D(centers=centers_tuple, boundaries=tuple(_midpoints(centers)))


def _midpoints(centers: Sequence[float]) -> list[float]:
    return [(centers[i] + centers[i + 1]) / 2.0 for i in range(len(centers) - 1)]


def _dedupe_ascending(centers: list[float], distinct: list[float]) -> list[float]:
    """Replace duplicate initial centers with unused distinct values."""
    used = set()
    unused = [value for value in distinct]
    result = []
    for center in centers:
        if center in used:
            replacement = next((v for v in unused if v not in used), None)
            if replacement is None:
                continue
            center = replacement
        used.add(center)
        result.append(center)
    return sorted(result)
