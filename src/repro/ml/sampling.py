"""Training-sample selection (paper §V-A2).

The paper trains thresholds, regions and accuracy estimates on 10 % of the
labeled data, re-drawn randomly for each of 5 runs.  Two sampling modes
are provided:

* ``"pairs"`` (default) — sample a fraction of the block's labeled page
  *pairs*.  This gives well-conditioned estimates even for names whose
  clusters are tiny (a document-level sample of a 61-cluster name can
  easily contain no positive pair at all).
* ``"documents"`` — sample a fraction of the block's *pages* and use all
  pairs among them, the strictest reading of "10 % of the complete
  dataset".

Both modes are exercised by the training-fraction ablation benchmark.
"""

from __future__ import annotations

import math
import random

from repro.corpus.documents import NameCollection
from repro.graph.entity_graph import PairKey, pair_key

LabeledPair = tuple[PairKey, bool]


def all_labeled_pairs(block: NameCollection) -> list[LabeledPair]:
    """Every unordered page pair of the block with its ground-truth label."""
    truth = block.ground_truth()
    ids = block.page_ids()
    pairs: list[LabeledPair] = []
    for i, left in enumerate(ids):
        for right in ids[i + 1:]:
            pairs.append((pair_key(left, right), truth[left] == truth[right]))
    return pairs


def _sample_pair_mode(block: NameCollection, fraction: float,
                      rng: random.Random) -> list[LabeledPair]:
    """``"pairs"`` mode: sample a fraction of the labeled page pairs."""
    pairs = all_labeled_pairs(block)
    sample_size = max(1, math.ceil(fraction * len(pairs)))
    if sample_size >= len(pairs):
        return pairs
    return rng.sample(pairs, sample_size)


def _sample_document_mode(block: NameCollection, fraction: float,
                          rng: random.Random) -> list[LabeledPair]:
    """``"documents"`` mode: sample pages, keep all pairs among them."""
    truth = block.ground_truth()
    ids = block.page_ids()
    sample_size = max(2, math.ceil(fraction * len(ids)))
    chosen = rng.sample(ids, min(sample_size, len(ids)))
    chosen.sort()
    pairs = []
    for i, left in enumerate(chosen):
        for right in chosen[i + 1:]:
            pairs.append((pair_key(left, right), truth[left] == truth[right]))
    return pairs


#: Built-in modes, bridged into :data:`repro.core.registry.SAMPLING_MODES`
#: (this module cannot import ``repro.core`` at import time — the core
#: package imports it back).  A mode is a callable
#: ``(block, fraction, rng) -> list[LabeledPair]``.
BUILTIN_SAMPLING_MODES = {
    "pairs": _sample_pair_mode,
    "documents": _sample_document_mode,
}


def sample_training_pairs(
    block: NameCollection,
    fraction: float = 0.1,
    seed: int = 0,
    mode: str = "pairs",
) -> list[LabeledPair]:
    """Draw one training sample for a block.

    Args:
        block: the name's page collection (must be fully labeled).
        fraction: fraction of the data to sample, in (0, 1].
        seed: sampling seed; each of the protocol's 5 runs uses its own.
        mode: ``"pairs"`` or ``"documents"`` (see module docstring), or any
            mode added with
            :func:`repro.core.registry.register_sampling_mode`.

    Raises:
        ValueError: for an invalid fraction or unknown mode.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    rng = random.Random(seed)
    # The registry is the single dispatch authority (it bridges the
    # built-ins on first read), so replace=True overrides take effect
    # here too.  Imported lazily: repro.core imports this module back.
    from repro.core.registry import SAMPLING_MODES
    sampler = SAMPLING_MODES.get(mode)
    return sampler(block, fraction, rng)


def training_runs(n_runs: int = 5, base_seed: int = 0) -> list[int]:
    """The per-run sampling seeds of the 5-run averaging protocol."""
    rng = random.Random(base_seed)
    return [rng.randrange(2**31) for _ in range(n_runs)]
