"""Training-label noise injection.

The paper's supervision comes from manual web-page labeling, which is
error-prone; the robustness ablation flips a fraction of training labels
and measures how gracefully the accuracy-estimation machinery degrades.
All corruption is seeded and deterministic.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.ml.sampling import LabeledPair


def flip_labels(pairs: Sequence[LabeledPair], fraction: float,
                seed: int = 0) -> list[LabeledPair]:
    """Return a copy of ``pairs`` with ``fraction`` of labels inverted.

    Args:
        pairs: labeled training pairs.
        fraction: fraction of labels to flip, in [0, 1].
        seed: RNG seed selecting which labels flip.

    Raises:
        ValueError: for a fraction outside [0, 1].
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    if not pairs or fraction == 0.0:
        return list(pairs)
    rng = random.Random(seed)
    n_flips = round(fraction * len(pairs))
    flip_indices = set(rng.sample(range(len(pairs)), n_flips))
    return [
        (pair, (not label) if index in flip_indices else label)
        for index, (pair, label) in enumerate(pairs)
    ]


def one_sided_noise(pairs: Sequence[LabeledPair], fraction: float,
                    target_label: bool, seed: int = 0) -> list[LabeledPair]:
    """Flip only pairs currently labeled ``target_label``.

    Models asymmetric annotation errors: missing links (annotators fail
    to recognize two pages as the same person — flip positives) are far
    more common in practice than spurious links.

    Raises:
        ValueError: for a fraction outside [0, 1].
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    rng = random.Random(seed)
    candidates = [index for index, (_, label) in enumerate(pairs)
                  if label == target_label]
    n_flips = round(fraction * len(candidates))
    flip_indices = set(rng.sample(candidates, n_flips)) if n_flips else set()
    return [
        (pair, (not label) if index in flip_indices else label)
        for index, (pair, label) in enumerate(pairs)
    ]
