"""Block executors — how per-block work is scheduled.

Blocking makes the pipeline embarrassingly parallel: blocks never share
pairs, so fitting, predicting and context preparation are independent
per-block tasks.  A :class:`BlockExecutor` runs a picklable task function
over a sequence of payloads and returns results *in payload order*, which
is what keeps parallel runs bit-identical to serial ones — merge order
never depends on completion order.

Backends register in :data:`repro.core.registry.EXECUTORS` and are
selected by ``ResolverConfig.executor`` / ``workers`` or the CLI's
``--workers``:

* ``"serial"`` — plain in-process loop, the default.
* ``"process"`` — a **persistent** ``concurrent.futures`` process pool
  using the **fork** start method.  Fork is required, not merely
  preferred: workers inherit the parent's string-hash seed, so set/dict
  iteration orders — and therefore every float accumulation order —
  match the serial path exactly.  On platforms without fork the backend
  degrades to an in-process loop rather than silently losing the
  determinism guarantee.

The process pool forks **once** per executor instance and is reused by
every subsequent ``run`` call — pipeline stages sharing one executor
share one fork wave (:attr:`ProcessPoolBlockExecutor.fork_waves` counts
them; the runtime bench asserts one wave per run).  Payloads are
dispatched as *chunks* — contiguous slices in payload order, or, when
the caller supplies per-payload ``weights``, largest-first bins packed
so one giant namesake block cannot serialize the tail of the schedule.

Worker accounting is honest: ``effective_workers`` is the requested
count capped at :func:`available_cores`, and when the cap degrades a
parallel request all the way to serial execution a
:class:`DegradedParallelismWarning` fires instead of the run silently
losing its parallelism.  :func:`core_report` additionally records when
the scheduling affinity (`sched_getaffinity`, e.g. a container cpuset)
grants fewer cores than the host physically has.

New backends (e.g. a cluster scheduler) plug in with
:func:`~repro.core.registry.register_executor`; see the registry module's
walkthrough.
"""

from __future__ import annotations

import heapq
import math
import multiprocessing
import os
import warnings
import weakref
from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import Any

from repro.core.registry import register_executor

#: A block task: a module-level (picklable) function of one payload.
BlockTask = Callable[[Any], Any]

#: Chunks dispatched per effective worker: small enough that chunk
#: granularity load-balances, large enough that per-chunk pickling is
#: amortized over many payloads.
CHUNKS_PER_WORKER = 4


class DegradedParallelismWarning(RuntimeWarning):
    """A parallel request silently became serial (core cap, no fork)."""


class BlockExecutor(ABC):
    """Schedules independent block-level tasks.

    Attributes:
        name: the registry/config string of the backend.
        workers: configured worker count (1 for serial).
    """

    name: str = "?"

    def __init__(self, workers: int = 1):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    @property
    def is_serial(self) -> bool:
        """True when tasks run in the calling process, one at a time."""
        return self.workers <= 1

    @abstractmethod
    def run(self, task: BlockTask, payloads: Sequence[Any],
            weights: Sequence[int] | None = None) -> list[Any]:
        """Run ``task`` over every payload, results in payload order.

        ``task`` must be picklable (a module-level function, or a
        ``functools.partial`` of one) for the process backend; payloads
        and results likewise.  ``weights`` (optional, parallel backends
        only) gives each payload's relative cost — e.g. a block's page
        count — so the scheduler can dispatch the heaviest work first;
        it never affects results or their order.
        """

    def close(self) -> None:
        """Release any pooled resources (no-op for in-process backends)."""

    def __enter__(self) -> "BlockExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"


@register_executor("serial")
class SerialExecutor(BlockExecutor):
    """Run every task inline, in payload order (the reference backend)."""

    name = "serial"

    def __init__(self, workers: int = 1):
        # A worker count > 1 is meaningless here; normalize so stats and
        # is_serial stay truthful.
        super().__init__(workers=1)

    def run(self, task: BlockTask, payloads: Sequence[Any],
            weights: Sequence[int] | None = None) -> list[Any]:
        return [task(payload) for payload in payloads]


def _fork_context() -> multiprocessing.context.BaseContext | None:
    """The fork multiprocessing context, or ``None`` where unsupported."""
    try:
        if "fork" in multiprocessing.get_all_start_methods():
            return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform quirk
        pass
    return None


def available_cores() -> int:
    """CPU cores this process may schedule on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def host_cores() -> int:
    """CPU cores the host physically reports (affinity-blind)."""
    return os.cpu_count() or 1


def core_report() -> dict[str, object]:
    """Requested-vs-granted core accounting for benchmarks and stats.

    ``cpuset_limited`` is true when the scheduling affinity grants fewer
    cores than the host has — the container-cpuset situation that used
    to surface only as an unexplained ``effective_workers: 1``.

    ``shard_planes`` and ``shard_cache_bytes`` report the zero-copy
    shard knobs (``REPRO_SHARD_PLANES`` / ``REPRO_SHARD_CACHE_BYTES``)
    so a benchmark record says which payload path workers actually ran.
    """
    from repro.runtime.shards import shard_cache_budget
    from repro.runtime.tasks import planes_enabled
    available = available_cores()
    host = host_cores()
    return {
        "available_cores": available,
        "host_cores": host,
        "cpuset_limited": available < host,
        "shard_planes": planes_enabled(),
        "shard_cache_bytes": shard_cache_budget(),
    }


def pack_chunks(n: int, n_chunks: int,
                weights: Sequence[int] | None = None) -> list[list[int]]:
    """Partition payload indices ``0..n-1`` into dispatch chunks.

    Without weights: contiguous slices in payload order (cheap, cache
    friendly).  With weights: classic LPT bin packing — indices sorted
    by descending weight are placed greedily onto the currently lightest
    chunk, and chunks are returned heaviest-first so the biggest bins
    hit the pool before the tail.  Deterministic: ties break on index.
    Results are reordered by index afterwards, so packing never affects
    output order.
    """
    n_chunks = max(1, min(n, n_chunks))
    if weights is None:
        size = math.ceil(n / n_chunks)
        return [list(range(start, min(start + size, n)))
                for start in range(0, n, size)]
    if len(weights) != n:
        raise ValueError(
            f"got {len(weights)} weights for {n} payloads")
    order = sorted(range(n), key=lambda index: (-weights[index], index))
    heap = [(0, chunk_index) for chunk_index in range(n_chunks)]
    chunks: list[list[int]] = [[] for _ in range(n_chunks)]
    totals = [0] * n_chunks
    for index in order:
        total, chunk_index = heapq.heappop(heap)
        chunks[chunk_index].append(index)
        totals[chunk_index] = total + weights[index]
        heapq.heappush(heap, (totals[chunk_index], chunk_index))
    packed = [chunk for chunk in chunks if chunk]
    packed.sort(key=lambda chunk: (-sum(weights[i] for i in chunk),
                                   chunk[0]))
    return packed


def _run_chunk(task: BlockTask, payloads: list[Any]) -> list[Any]:
    """Worker body: one dispatch chunk, results in chunk order."""
    return [task(payload) for payload in payloads]


def _shutdown_pool(pool: ProcessPoolExecutor) -> None:
    pool.shutdown(wait=True, cancel_futures=True)


@register_executor("process")
class ProcessPoolBlockExecutor(BlockExecutor):
    """Fan block tasks out to a persistent pool of forked workers.

    The pool is created **once**, on the first parallel ``run``, and
    reused by every later call — an executor threaded through a whole
    fit/predict run pays exactly one fork wave for all of its pipeline
    stages (:attr:`fork_waves` counts waves; worker state like loaded
    registries and attached shards amortizes across stages).  ``close``
    (or context-manager exit, or garbage collection) shuts the pool
    down; a run that raises shuts it down eagerly so no orphaned
    workers outlive the failure.

    Payloads are dispatched as chunks (:func:`pack_chunks`) with an
    explicit :meth:`chunksize` derived from the payload count and the
    effective worker count — never ``map``'s pickle-per-payload default
    — and results are merged in payload order regardless of completion
    order.

    Block tasks are CPU-bound, so scheduling more workers than the host
    has cores only adds pickling and context-switch overhead; the
    effective worker count is therefore capped at the core count unless
    ``oversubscribe=True``.  When the cap leaves a single effective
    worker (a one-core host), :attr:`is_serial` turns true, callers take
    their serial fast path, and a :class:`DegradedParallelismWarning`
    fires once so ``--workers 4`` never silently means serial.
    """

    name = "process"

    def __init__(self, workers: int = 2, oversubscribe: bool = False):
        super().__init__(workers=workers)
        self.oversubscribe = oversubscribe
        #: Pool creations over this executor's lifetime (fork waves).
        self.fork_waves = 0
        self._pool: ProcessPoolExecutor | None = None
        self._pool_finalizer = None
        self._warned = False

    @property
    def effective_workers(self) -> int:
        """Workers actually scheduled (requested, capped at cores)."""
        if self.oversubscribe:
            return self.workers
        return min(self.workers, available_cores())

    @property
    def is_serial(self) -> bool:
        return self.effective_workers <= 1

    def chunksize(self, n_payloads: int) -> int:
        """Payloads per dispatch chunk for an ``n_payloads`` fan-out.

        ``len(payloads) / (effective_workers * CHUNKS_PER_WORKER)``,
        floored at 1: every worker sees a few chunks (load balancing
        headroom) and per-chunk round-trip costs amortize over many
        payloads instead of paying one pickle round-trip per block.
        """
        lanes = max(1, self.effective_workers) * CHUNKS_PER_WORKER
        return max(1, math.ceil(n_payloads / lanes))

    def _warn_degraded(self, reason: str) -> None:
        if self._warned:
            return
        self._warned = True
        report = core_report()
        warnings.warn(
            f"requested {self.workers} workers but running serially: "
            f"{reason} (affinity grants {report['available_cores']} of "
            f"{report['host_cores']} host cores"
            f"{', cpuset-limited' if report['cpuset_limited'] else ''})",
            DegradedParallelismWarning, stacklevel=3)

    def _ensure_pool(self,
                     context: multiprocessing.context.BaseContext,
                     ) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.effective_workers, mp_context=context)
            self.fork_waves += 1
            self._pool_finalizer = weakref.finalize(
                self, _shutdown_pool, self._pool)
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent; joins the workers)."""
        if self._pool_finalizer is not None:
            self._pool_finalizer.detach()
            self._pool_finalizer = None
        if self._pool is not None:
            pool, self._pool = self._pool, None
            _shutdown_pool(pool)

    def run(self, task: BlockTask, payloads: Sequence[Any],
            weights: Sequence[int] | None = None) -> list[Any]:
        n = len(payloads)
        if n == 0:
            return []
        if self.effective_workers <= 1:
            if self.workers > 1 and n > 1:
                self._warn_degraded("core cap left one effective worker")
            return [task(payload) for payload in payloads]
        if n == 1:
            # Single-payload fast path: pool round-trips cannot pay off.
            return [task(payloads[0])]
        context = _fork_context()
        if context is None:  # pragma: no cover - non-fork platforms
            # Without fork, children would re-randomize string hashing and
            # the bit-identical guarantee breaks; degrade to in-process.
            self._warn_degraded("fork start method unavailable")
            return [task(payload) for payload in payloads]
        pool = self._ensure_pool(context)
        chunks = pack_chunks(n, math.ceil(n / self.chunksize(n)),
                             weights=weights)
        try:
            futures = [pool.submit(_run_chunk, task,
                                   [payloads[index] for index in chunk])
                       for chunk in chunks]
            results: list[Any] = [None] * n
            for chunk, future in zip(chunks, futures):
                for index, value in zip(chunk, future.result()):
                    results[index] = value
        except BaseException:
            # A failing task (or a broken pool) must not leave orphaned
            # workers behind: cancel what has not started, join the rest.
            for future in futures:
                future.cancel()
            self.close()
            raise
        return results


def env_default_workers() -> int | None:
    """The ``REPRO_WORKERS`` ambient worker count, or ``None`` if unset.

    Like ``REPRO_BACKEND``, a per-process runtime default: it widens
    config-driven executor selection (:func:`executor_from_config`)
    without ever being serialized into models or configs.  Invalid
    values read as unset.
    """
    raw = os.environ.get("REPRO_WORKERS", "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value >= 1 else None


def build_executor(name: str = "serial", workers: int = 1,
                   oversubscribe: bool = False) -> BlockExecutor:
    """Instantiate a registered executor backend.

    ``oversubscribe`` is forwarded to backends that accept it (the
    process pool's core-cap override) and ignored by the rest.

    Raises:
        ValueError: for unknown backend names (lists the known ones).
    """
    from repro.core.registry import EXECUTORS
    factory = EXECUTORS.get(name)
    if oversubscribe:
        try:
            return factory(workers=workers, oversubscribe=True)
        except TypeError:
            pass
    return factory(workers=workers)


def executor_for_workers(workers: int,
                         oversubscribe: bool = False) -> BlockExecutor:
    """The natural backend for a ``--workers N`` request."""
    if workers <= 1:
        return build_executor("serial", workers=1)
    return build_executor("process", workers=workers,
                          oversubscribe=oversubscribe)


def executor_from_config(config) -> BlockExecutor:
    """The executor a :class:`~repro.core.config.ResolverConfig` selects.

    A config left at its serial defaults additionally honors the
    ``REPRO_WORKERS`` environment default, so a whole process can be
    switched to parallel collection passes without touching configs or
    saved models (parallel execution is bit-identical, making this a
    pure speed knob like ``REPRO_BACKEND``).
    """
    workers = config.workers
    name = config.executor
    oversubscribe = getattr(config, "oversubscribe", False)
    if name == "serial" and workers <= 1:
        ambient = env_default_workers()
        if ambient is not None and ambient > 1:
            return build_executor("process", workers=ambient,
                                  oversubscribe=oversubscribe)
    return build_executor(name, workers=workers, oversubscribe=oversubscribe)
