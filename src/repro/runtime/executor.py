"""Block executors — how per-block work is scheduled.

Blocking makes the pipeline embarrassingly parallel: blocks never share
pairs, so fitting, predicting and context preparation are independent
per-block tasks.  A :class:`BlockExecutor` runs a picklable task function
over a sequence of payloads and returns results *in payload order*, which
is what keeps parallel runs bit-identical to serial ones — merge order
never depends on completion order.

Backends register in :data:`repro.core.registry.EXECUTORS` and are
selected by ``ResolverConfig.executor`` / ``workers`` or the CLI's
``--workers``:

* ``"serial"`` — plain in-process loop, the default.
* ``"process"`` — a ``concurrent.futures`` process pool using the
  **fork** start method.  Fork is required, not merely preferred: workers
  inherit the parent's string-hash seed, so set/dict iteration orders —
  and therefore every float accumulation order — match the serial path
  exactly.  On platforms without fork the backend degrades to an
  in-process loop rather than silently losing the determinism guarantee.

New backends (e.g. a cluster scheduler) plug in with
:func:`~repro.core.registry.register_executor`; see the registry module's
walkthrough.
"""

from __future__ import annotations

import multiprocessing
import os
from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import Any

from repro.core.registry import register_executor

#: A block task: a module-level (picklable) function of one payload.
BlockTask = Callable[[Any], Any]


class BlockExecutor(ABC):
    """Schedules independent block-level tasks.

    Attributes:
        name: the registry/config string of the backend.
        workers: configured worker count (1 for serial).
    """

    name: str = "?"

    def __init__(self, workers: int = 1):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    @property
    def is_serial(self) -> bool:
        """True when tasks run in the calling process, one at a time."""
        return self.workers <= 1

    @abstractmethod
    def run(self, task: BlockTask, payloads: Sequence[Any]) -> list[Any]:
        """Run ``task`` over every payload, results in payload order.

        ``task`` must be picklable (a module-level function, or a
        ``functools.partial`` of one) for the process backend; payloads
        and results likewise.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"


@register_executor("serial")
class SerialExecutor(BlockExecutor):
    """Run every task inline, in payload order (the reference backend)."""

    name = "serial"

    def __init__(self, workers: int = 1):
        # A worker count > 1 is meaningless here; normalize so stats and
        # is_serial stay truthful.
        super().__init__(workers=1)

    def run(self, task: BlockTask, payloads: Sequence[Any]) -> list[Any]:
        return [task(payload) for payload in payloads]


def _fork_context() -> multiprocessing.context.BaseContext | None:
    """The fork multiprocessing context, or ``None`` where unsupported."""
    try:
        if "fork" in multiprocessing.get_all_start_methods():
            return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform quirk
        pass
    return None


def available_cores() -> int:
    """CPU cores this process may schedule on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@register_executor("process")
class ProcessPoolBlockExecutor(BlockExecutor):
    """Fan block tasks out to a pool of forked worker processes.

    The pool is created per :meth:`run` call — block tasks are seconds of
    work, so pool start-up is noise, and a fresh pool keeps worker state
    (loaded registries, caches) from leaking between passes.  Results come
    from ``pool.map``, which preserves payload order regardless of
    completion order.

    Block tasks are CPU-bound, so scheduling more workers than the host
    has cores only adds pickling and context-switch overhead; the
    effective worker count is therefore capped at the core count unless
    ``oversubscribe=True``.  When the cap leaves a single effective
    worker (a one-core host), :attr:`is_serial` turns true and callers
    take their serial fast path — ``--workers 4`` is then simply the
    fastest correct execution for the machine, still bit-identical.
    """

    name = "process"

    def __init__(self, workers: int = 2, oversubscribe: bool = False):
        super().__init__(workers=workers)
        self.oversubscribe = oversubscribe

    @property
    def effective_workers(self) -> int:
        """Workers actually scheduled (requested, capped at cores)."""
        if self.oversubscribe:
            return self.workers
        return min(self.workers, available_cores())

    @property
    def is_serial(self) -> bool:
        return self.effective_workers <= 1

    def run(self, task: BlockTask, payloads: Sequence[Any]) -> list[Any]:
        max_workers = min(self.effective_workers, len(payloads))
        if max_workers <= 1:
            return [task(payload) for payload in payloads]
        context = _fork_context()
        if context is None:  # pragma: no cover - non-fork platforms
            # Without fork, children would re-randomize string hashing and
            # the bit-identical guarantee breaks; degrade to in-process.
            return [task(payload) for payload in payloads]
        with ProcessPoolExecutor(max_workers=max_workers,
                                 mp_context=context) as pool:
            return list(pool.map(task, payloads))


def build_executor(name: str = "serial", workers: int = 1) -> BlockExecutor:
    """Instantiate a registered executor backend.

    Raises:
        ValueError: for unknown backend names (lists the known ones).
    """
    from repro.core.registry import EXECUTORS
    factory = EXECUTORS.get(name)
    return factory(workers=workers)


def executor_for_workers(workers: int) -> BlockExecutor:
    """The natural backend for a ``--workers N`` request."""
    if workers <= 1:
        return build_executor("serial", workers=1)
    return build_executor("process", workers=workers)


def executor_from_config(config) -> BlockExecutor:
    """The executor a :class:`~repro.core.config.ResolverConfig` selects."""
    return build_executor(config.executor, workers=config.workers)
