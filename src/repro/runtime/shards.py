"""Shared-memory shard publication for the persistent process pool.

The old parallel runtime pickled every block task's full payload —
config, extraction pipeline, features, graphs — through the pool's task
pipe, once per block.  At realistic block counts the serialization cost
ate the parallel win.  This module inverts the data flow: the scheduling
side publishes the whole fan-out's data **once** as a *shard* (a single
pickled buffer in a ``multiprocessing.shared_memory`` segment), and the
per-task payloads shrink to ``(shard handle, block index)`` descriptors
of a few dozen bytes.  Workers attach the segment by name, deserialize
the shard once, and serve every task of the run from their process-local
copy.

Three access paths, all bit-identical because they read the same bytes:

* **Same process** (serial fallbacks, the single-payload fast path):
  :func:`load_shard` finds the published object in the process-local
  registry and returns it without any serialization at all.
* **Forked after publish**: a worker forked while the shard was live
  inherits the registry entry copy-on-write — also zero-copy.
* **Forked before publish** (the persistent-pool steady state): the
  worker attaches the shared-memory segment by name, unpickles once,
  and caches the result in a small per-process LRU keyed by shard id.

When ``multiprocessing.shared_memory`` is unavailable or refuses to
allocate (no ``/dev/shm``, exotic platforms), publication degrades to a
memory-mapped scratch file with identical semantics — the handle records
which transport to use, so callers never branch.

Lifecycle: a :class:`ShardStore` owns every segment it published and
unlinks them on :meth:`~ShardStore.close` (it is a context manager; the
scheduling side wraps each executor fan-out in one).  On Linux, workers
that are still attached keep the memory alive until they close, so
unlinking immediately after the run is safe.
"""

from __future__ import annotations

import mmap
import os
import pickle
import tempfile
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

__all__ = ["ShardHandle", "ShardStore", "load_shard"]

#: Shards a worker process keeps deserialized at once.  Persistent pools
#: see one shard per pipeline stage; a small LRU covers a whole
#: fit/predict run while bounding memory when many runs share a pool.
WORKER_SHARD_CACHE = 4


@dataclass(frozen=True)
class ShardHandle:
    """A picklable pointer to one published shard.

    Attributes:
        shard_id: globally unique id (also the registry/cache key).
        via: transport — ``"shm"`` (shared memory segment) or ``"file"``
            (memory-mapped scratch file).
        location: segment name (``shm``) or file path (``file``).
        nbytes: payload length inside the segment.
    """

    shard_id: str
    via: str
    location: str
    nbytes: int


#: Parent-side registry of live shard payloads: same-process loads (and
#: children forked while a shard is live) resolve here without touching
#: the segment.  Keyed by shard_id; entries die with their store.
_LOCAL: dict[str, Any] = {}

#: Worker-side cache of shards deserialized from their segments.
_ATTACHED: "OrderedDict[str, Any]" = OrderedDict()

_SEQUENCE = 0


def _next_shard_id(label: str) -> str:
    global _SEQUENCE
    _SEQUENCE += 1
    return f"{label}-{os.getpid()}-{_SEQUENCE}"


def _shared_memory_module():
    """The shared_memory module, or ``None`` where unsupported."""
    try:
        from multiprocessing import shared_memory
    except ImportError:  # pragma: no cover - exotic platforms
        return None
    return shared_memory


def _untrack(segment) -> None:
    """Detach an *attached* segment from the resource tracker.

    Before 3.13 every ``SharedMemory(name=...)`` attach registers the
    segment with the process's resource tracker, which then both warns
    and unlinks it at exit — wrong for workers that merely read a
    segment the parent owns.  Unregistering restores owner-only
    cleanup semantics.
    """
    try:
        from multiprocessing import resource_tracker
        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals moved
        pass


class ShardStore:
    """Publishes payloads as shards and owns their segments.

    A context manager: ``close()`` (or scope exit) unlinks every
    published segment and drops the local registry entries.  One store
    per executor fan-out is the intended granularity — publish, run,
    close.
    """

    def __init__(self, prefer_shared_memory: bool = True):
        self.prefer_shared_memory = prefer_shared_memory
        self._segments: list[tuple[str, Any]] = []
        self._shard_ids: list[str] = []
        self._closed = False

    def publish(self, payload: Any, label: str = "shard") -> ShardHandle:
        """Serialize ``payload`` once and place it in a shared segment.

        Returns the :class:`ShardHandle` tasks should carry.  Falls back
        from shared memory to a memory-mapped scratch file when the
        segment cannot be allocated.

        Raises:
            RuntimeError: when the store is already closed.
        """
        if self._closed:
            raise RuntimeError("ShardStore is closed; create a fresh one "
                               "per executor fan-out")
        data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        shard_id = _next_shard_id(label)
        handle = None
        if self.prefer_shared_memory:
            handle = self._publish_shm(shard_id, data)
        if handle is None:
            handle = self._publish_file(shard_id, data)
        _LOCAL[shard_id] = payload
        self._shard_ids.append(shard_id)
        return handle

    def _publish_shm(self, shard_id: str, data: bytes) -> ShardHandle | None:
        shared_memory = _shared_memory_module()
        if shared_memory is None:
            return None
        try:
            segment = shared_memory.SharedMemory(create=True,
                                                 size=max(1, len(data)))
        except OSError:  # pragma: no cover - /dev/shm missing or full
            return None
        segment.buf[:len(data)] = data
        self._segments.append(("shm", segment))
        return ShardHandle(shard_id=shard_id, via="shm",
                           location=segment.name, nbytes=len(data))

    def _publish_file(self, shard_id: str, data: bytes) -> ShardHandle:
        descriptor, path = tempfile.mkstemp(prefix=f"repro-{shard_id}-",
                                            suffix=".shard")
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(data)
        self._segments.append(("file", path))
        return ShardHandle(shard_id=shard_id, via="file", location=path,
                           nbytes=len(data))

    def close(self) -> None:
        """Unlink every published segment and drop registry entries."""
        if self._closed:
            return
        self._closed = True
        for kind, segment in self._segments:
            try:
                if kind == "shm":
                    segment.close()
                    segment.unlink()
                else:
                    os.unlink(segment)
            except (OSError, FileNotFoundError):  # pragma: no cover
                pass
        self._segments.clear()
        for shard_id in self._shard_ids:
            _LOCAL.pop(shard_id, None)
        self._shard_ids.clear()

    def __enter__(self) -> "ShardStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing
        try:
            self.close()
        except Exception:
            pass


def _read_segment(handle: ShardHandle) -> bytes:
    if handle.via == "shm":
        shared_memory = _shared_memory_module()
        if shared_memory is None:  # pragma: no cover - publisher had it
            raise RuntimeError(
                f"shard {handle.shard_id} was published via shared memory "
                f"but this process cannot import it")
        segment = shared_memory.SharedMemory(name=handle.location)
        _untrack(segment)
        try:
            return bytes(segment.buf[:handle.nbytes])
        finally:
            segment.close()
    with open(handle.location, "rb") as stream:
        with mmap.mmap(stream.fileno(), 0, access=mmap.ACCESS_READ) as view:
            return view[:handle.nbytes]


def load_shard(handle: ShardHandle) -> Any:
    """The shard's payload, deserializing at most once per process.

    Resolution order: the process-local registry (publisher process, or
    a worker forked while the shard was live — zero-copy either way),
    then the worker cache, then an attach-and-unpickle of the segment.
    """
    payload = _LOCAL.get(handle.shard_id)
    if payload is not None:
        return payload
    cached = _ATTACHED.get(handle.shard_id)
    if cached is not None:
        _ATTACHED.move_to_end(handle.shard_id)
        return cached
    payload = pickle.loads(_read_segment(handle))
    _ATTACHED[handle.shard_id] = payload
    while len(_ATTACHED) > WORKER_SHARD_CACHE:
        _ATTACHED.popitem(last=False)
    return payload
