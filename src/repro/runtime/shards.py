"""Shared-memory shard publication for the persistent process pool.

The old parallel runtime pickled every block task's full payload —
config, extraction pipeline, features, graphs — through the pool's task
pipe, once per block.  At realistic block counts the serialization cost
ate the parallel win.  This module inverts the data flow: the scheduling
side publishes the whole fan-out's data **once** as a *shard* (a single
``multiprocessing.shared_memory`` segment), and the per-task payloads
shrink to ``(shard handle, block index)`` descriptors of a few dozen
bytes.

Segment layout::

    [u64 pickled length][pickled residual][pad to 64][plane region]

The *residual* is the pickled payload — for plane-carrying fan-outs a
skeleton whose numeric bulk (feature dicts, quadratic graph weights) has
been replaced by tiny :mod:`repro.runtime.planes` headers.  The *plane
region* holds that bulk as flat aligned arrays, written once by the
publisher's :class:`~repro.runtime.planes.PlaneWriter` and never touched
by pickle again.  Plane-less payloads simply have an empty plane region,
so every consumer reads one format.

Three access paths, all bit-identical because they read the same bytes:

* **Same process** (serial fallbacks, the single-payload fast path):
  :func:`load_shard` finds the published object in the process-local
  registry and returns it without any serialization at all.
* **Forked after publish**: a worker forked while the shard was live
  inherits the registry entry copy-on-write — also zero-copy.
* **Forked before publish** (the persistent-pool steady state): the
  worker attaches the segment by name, unpickles the small residual
  (directly out of the mapped buffer — no copy of the segment is ever
  taken), binds the plane region as read-only ``np.frombuffer`` views,
  and caches the result per process.

Worker cache lifetime: attached segments stay **open** for as long as
the cache holds them — the numpy views point straight into the mapping.
The cache evicts by a byte budget (``REPRO_SHARD_CACHE_BYTES``, default
256 MiB), oldest shard first; eviction closes the segment or mmap so the
address space is returned.  A segment that still has live views refuses
to close (``BufferError``) — those shards park on a zombie list and are
closed on a later eviction pass once the views are gone, so views can
never dangle over unmapped memory, not even past the publisher's
:meth:`ShardStore.close`.

When ``multiprocessing.shared_memory`` is unavailable or refuses to
allocate (no ``/dev/shm``, exotic platforms), publication degrades to a
memory-mapped scratch file with identical semantics — the handle records
which transport to use, so callers never branch.

Lifecycle: a :class:`ShardStore` owns every segment it published and
unlinks them on :meth:`~ShardStore.close` (it is a context manager; the
scheduling side wraps each executor fan-out in one).  On POSIX, workers
that are still attached keep the memory alive until they close, so
unlinking immediately after the run is safe.
"""

from __future__ import annotations

import atexit
import mmap
import os
import pickle
import tempfile
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

__all__ = [
    "DEFAULT_SHARD_CACHE_BYTES",
    "ShardHandle",
    "ShardStore",
    "attached_cache_bytes",
    "load_shard",
    "shard_cache_budget",
]

#: Byte budget for a worker's attached-shard cache when
#: ``REPRO_SHARD_CACHE_BYTES`` is unset.  Segments are shared pages, so
#: this bounds mapped address space per worker, not unique RSS.
DEFAULT_SHARD_CACHE_BYTES = 256 * 1024 * 1024

#: Alignment of the plane region after the pickled residual (matches
#: :mod:`repro.runtime.planes`).
_ALIGN = 64

_LENGTH_BYTES = 8


def shard_cache_budget() -> int:
    """The worker cache's byte budget (env-tunable, read per eviction)."""
    raw = os.environ.get("REPRO_SHARD_CACHE_BYTES")
    if not raw:
        return DEFAULT_SHARD_CACHE_BYTES
    try:
        return max(0, int(raw))
    except ValueError:
        return DEFAULT_SHARD_CACHE_BYTES


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


@dataclass(frozen=True)
class ShardHandle:
    """A picklable pointer to one published shard.

    Attributes:
        shard_id: globally unique id (also the registry/cache key).
        via: transport — ``"shm"`` (shared memory segment) or ``"file"``
            (memory-mapped scratch file).
        location: segment name (``shm``) or file path (``file``).
        nbytes: total payload length inside the segment (length word +
            residual + plane region).
        pickled_bytes: length of the pickled residual — everything else
            crosses the process boundary without pickle.
    """

    shard_id: str
    via: str
    location: str
    nbytes: int
    pickled_bytes: int = 0

    @property
    def plane_bytes(self) -> int:
        """Bytes of the raw plane region (0 for plane-less shards)."""
        return max(0, self.nbytes
                   - _aligned(_LENGTH_BYTES + self.pickled_bytes))


#: Parent-side registry of live shard payloads: same-process loads (and
#: children forked while a shard is live) resolve here without touching
#: the segment.  Keyed by shard_id; entries die with their store.
_LOCAL: dict[str, Any] = {}

_SEQUENCE = 0


def _next_shard_id(label: str) -> str:
    global _SEQUENCE
    _SEQUENCE += 1
    return f"{label}-{os.getpid()}-{_SEQUENCE}"


def _shared_memory_module():
    """The shared_memory module, or ``None`` where unsupported."""
    try:
        from multiprocessing import shared_memory
    except ImportError:  # pragma: no cover - exotic platforms
        return None
    return shared_memory


def _untrack(segment) -> None:
    """Detach an *attached* segment from the resource tracker.

    Before 3.13 every ``SharedMemory(name=...)`` attach registers the
    segment with the process's resource tracker, which then both warns
    and unlinks it at exit — wrong for workers that merely read a
    segment the parent owns.  Unregistering restores owner-only
    cleanup semantics.

    Callers must skip this when the attaching process shares the
    publisher's tracker (same process, or forked from it — the fork
    pools this runtime uses): there the attach-time registration is an
    idempotent duplicate of the publisher's own, and unregistering
    would strip the *publisher's* entry, breaking unlink bookkeeping.
    """
    try:
        from multiprocessing import resource_tracker
        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals moved
        pass


class ShardStore:
    """Publishes payloads as shards and owns their segments.

    A context manager: ``close()`` (or scope exit) unlinks every
    published segment and drops the local registry entries.  One store
    per executor fan-out is the intended granularity — publish, run,
    close.
    """

    def __init__(self, prefer_shared_memory: bool = True):
        self.prefer_shared_memory = prefer_shared_memory
        self._segments: list[tuple[str, Any]] = []
        self._shard_ids: list[str] = []
        self._closed = False

    def publish(self, payload: Any, label: str = "shard",
                planes=None, local_payload: Any = None) -> ShardHandle:
        """Serialize the residual once and lay the shard into a segment.

        ``planes`` is an optional :class:`~repro.runtime.planes.
        PlaneWriter` holding the payload's raw numeric bulk; its arrays
        are copied straight into the segment after the pickled residual,
        bypassing pickle entirely.  ``local_payload`` overrides what
        same-process (and forked-after-publish) loads resolve to — the
        scheduling side passes the *original* payload so those zero-copy
        paths never see plane skeletons.

        Returns the :class:`ShardHandle` tasks should carry.  Falls back
        from shared memory to a memory-mapped scratch file when the
        segment cannot be allocated.

        Raises:
            RuntimeError: when the store is already closed.
        """
        if self._closed:
            raise RuntimeError("ShardStore is closed; create a fresh one "
                               "per executor fan-out")
        data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        plane_nbytes = planes.nbytes if planes is not None else 0
        plane_base = _aligned(_LENGTH_BYTES + len(data))
        if plane_nbytes:
            total = plane_base + plane_nbytes
        else:
            total = _LENGTH_BYTES + len(data)
        shard_id = _next_shard_id(label)
        handle = None
        if self.prefer_shared_memory:
            handle = self._publish_shm(shard_id, data, planes, plane_base,
                                       total)
        if handle is None:
            handle = self._publish_file(shard_id, data, planes, plane_base,
                                        total)
        _LOCAL[shard_id] = payload if local_payload is None else local_payload
        self._shard_ids.append(shard_id)
        return handle

    @staticmethod
    def _fill(buffer, data: bytes, planes, plane_base: int) -> None:
        buffer[:_LENGTH_BYTES] = len(data).to_bytes(_LENGTH_BYTES, "little")
        buffer[_LENGTH_BYTES:_LENGTH_BYTES + len(data)] = data
        if planes is not None and planes.nbytes:
            planes.write_into(buffer, plane_base)

    def _publish_shm(self, shard_id: str, data: bytes, planes,
                     plane_base: int, total: int) -> ShardHandle | None:
        shared_memory = _shared_memory_module()
        if shared_memory is None:
            return None
        try:
            segment = shared_memory.SharedMemory(create=True,
                                                 size=max(1, total))
        except OSError:  # pragma: no cover - /dev/shm missing or full
            return None
        self._fill(segment.buf, data, planes, plane_base)
        self._segments.append(("shm", segment))
        return ShardHandle(shard_id=shard_id, via="shm",
                           location=segment.name, nbytes=total,
                           pickled_bytes=len(data))

    def _publish_file(self, shard_id: str, data: bytes, planes,
                      plane_base: int, total: int) -> ShardHandle:
        buffer = bytearray(total)
        self._fill(buffer, data, planes, plane_base)
        descriptor, path = tempfile.mkstemp(prefix=f"repro-{shard_id}-",
                                            suffix=".shard")
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(buffer)
        self._segments.append(("file", path))
        return ShardHandle(shard_id=shard_id, via="file", location=path,
                           nbytes=total, pickled_bytes=len(data))

    def close(self) -> None:
        """Unlink every published segment and drop registry entries."""
        if self._closed:
            return
        self._closed = True
        for kind, segment in self._segments:
            try:
                if kind == "shm":
                    segment.close()
                    segment.unlink()
                else:
                    os.unlink(segment)
            except (OSError, FileNotFoundError):  # pragma: no cover
                pass
        self._segments.clear()
        for shard_id in self._shard_ids:
            _LOCAL.pop(shard_id, None)
        self._shard_ids.clear()

    def __enter__(self) -> "ShardStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing
        try:
            self.close()
        except Exception:
            pass


class _AttachedShard:
    """One worker-side attached segment: payload plus open resources.

    Keeps the segment (or mmap) open so plane views stay valid; closing
    happens in :meth:`detach`, which refuses (returns ``False``) while
    numpy views still export the buffer.
    """

    __slots__ = ("shard_id", "nbytes", "payload", "attach_seconds",
                 "_view", "_closers")

    def __init__(self, shard_id: str, nbytes: int, payload: Any,
                 attach_seconds: float, view, closers):
        self.shard_id = shard_id
        self.nbytes = nbytes
        self.payload = payload
        self.attach_seconds = attach_seconds
        self._view = view
        self._closers = closers

    def detach(self) -> bool:
        """Release the buffer and close the segment; ``False`` if views
        are still live (the caller parks the shard and retries later)."""
        self.payload = None
        if self._view is not None:
            try:
                self._view.release()
            except BufferError:
                return False
            self._view = None
        while self._closers:
            closer = self._closers[-1]
            try:
                closer()
            except BufferError:  # pragma: no cover - raced view revival
                return False
            except OSError:  # pragma: no cover - already gone
                pass
            self._closers.pop()
        return True


#: Worker-side cache of attached shards, oldest first.
_ATTACHED: "OrderedDict[str, _AttachedShard]" = OrderedDict()

#: Evicted shards whose segments still had live views; retried on every
#: eviction pass and closed once the views are garbage.
_ZOMBIES: list[_AttachedShard] = []


def attached_cache_bytes() -> int:
    """Total bytes of segments the worker cache currently keeps open."""
    return sum(entry.nbytes for entry in _ATTACHED.values())


def _reap_zombies() -> None:
    _ZOMBIES[:] = [entry for entry in _ZOMBIES if not entry.detach()]


def _drain_at_exit() -> None:  # pragma: no cover - interpreter shutdown
    """Best-effort close of every attached segment at process exit.

    Dropping the cached payloads first releases their numpy views, so
    the segments usually close cleanly instead of raising ignored
    ``BufferError`` noise from ``SharedMemory.__del__`` during
    interpreter teardown.
    """
    while _ATTACHED:
        _, entry = _ATTACHED.popitem(last=False)
        if not entry.detach():
            _ZOMBIES.append(entry)
    import gc
    gc.collect()
    _reap_zombies()


atexit.register(_drain_at_exit)


def _pop_detach(shard_id: str) -> None:
    entry = _ATTACHED.pop(shard_id, None)
    if entry is not None and not entry.detach():
        _ZOMBIES.append(entry)


def _evict_over_budget(keep: str) -> None:
    budget = shard_cache_budget()
    while attached_cache_bytes() > budget:
        oldest = next(iter(_ATTACHED))
        if oldest == keep:
            break  # the newest shard stays resident even over budget
        _pop_detach(oldest)
    _reap_zombies()


def _attach(handle: ShardHandle) -> _AttachedShard:
    started = time.perf_counter()
    closers: list = []
    if handle.via == "shm":
        shared_memory = _shared_memory_module()
        if shared_memory is None:  # pragma: no cover - publisher had it
            raise RuntimeError(
                f"shard {handle.shard_id} was published via shared memory "
                f"but this process cannot import it")
        segment = shared_memory.SharedMemory(name=handle.location)
        # Shard ids embed the publisher pid; skip untracking when this
        # process shares the publisher's resource tracker (it *is* the
        # publisher, or was forked from it, as pool workers are).
        shares_tracker = (f"-{os.getpid()}-" in handle.shard_id
                          or f"-{os.getppid()}-" in handle.shard_id)
        if not shares_tracker:
            _untrack(segment)
        raw = segment.buf
        closers.append(segment.close)
    else:
        stream = open(handle.location, "rb")
        mapped = mmap.mmap(stream.fileno(), 0, access=mmap.ACCESS_READ)
        stream.close()
        raw = memoryview(mapped)
        closers.append(mapped.close)
    view = raw.toreadonly()
    pickled_length = int.from_bytes(view[:_LENGTH_BYTES], "little")
    payload = pickle.loads(view[_LENGTH_BYTES:_LENGTH_BYTES + pickled_length])
    plane_base = _aligned(_LENGTH_BYTES + pickled_length)
    binder = getattr(payload, "_bind_planes", None)
    if binder is not None and handle.nbytes > plane_base:
        payload = binder(view, plane_base)
    return _AttachedShard(shard_id=handle.shard_id, nbytes=handle.nbytes,
                          payload=payload,
                          attach_seconds=time.perf_counter() - started,
                          view=view, closers=closers)


def load_shard(handle: ShardHandle) -> Any:
    """The shard's payload, attaching and deserializing at most once.

    Resolution order: the process-local registry (publisher process, or
    a worker forked while the shard was live — zero-copy either way),
    then the attached cache, then an attach of the segment: the small
    residual unpickles straight out of the mapped buffer and the plane
    region binds as ``np.frombuffer`` views — the numeric bulk is never
    copied or unpickled.
    """
    payload = _LOCAL.get(handle.shard_id)
    if payload is not None:
        return payload
    entry = _ATTACHED.get(handle.shard_id)
    if entry is not None:
        _ATTACHED.move_to_end(handle.shard_id)
        return entry.payload
    entry = _attach(handle)
    _ATTACHED[handle.shard_id] = entry
    _evict_over_budget(keep=handle.shard_id)
    return entry.payload
