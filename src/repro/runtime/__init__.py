"""The block execution engine.

Schedules per-block work (fitting, prediction, context preparation)
through pluggable :class:`~repro.runtime.executor.BlockExecutor` backends,
shares the quadratic pairwise-similarity step through a
:class:`~repro.runtime.cache.SimilarityCache`, and reports every pass as
a :class:`~repro.runtime.stats.RunStats` record.

See ``docs/architecture.md`` for where this layer sits in the pipeline
and ``docs/performance.md`` for tuning guidance.
"""

from repro.runtime.batch import batched_similarity_graphs
from repro.runtime.cache import CacheStats, SimilarityCache, block_fingerprint
from repro.runtime.executor import (
    BlockExecutor,
    ProcessPoolBlockExecutor,
    SerialExecutor,
    build_executor,
    executor_for_workers,
    executor_from_config,
)
from repro.runtime.stats import RunStats, TaskStats

__all__ = [
    "BlockExecutor",
    "CacheStats",
    "ProcessPoolBlockExecutor",
    "RunStats",
    "SerialExecutor",
    "SimilarityCache",
    "TaskStats",
    "batched_similarity_graphs",
    "block_fingerprint",
    "build_executor",
    "executor_for_workers",
    "executor_from_config",
]
