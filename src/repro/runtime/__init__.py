"""The block execution engine.

Schedules per-block work (fitting, prediction, context preparation)
through pluggable :class:`~repro.runtime.executor.BlockExecutor` backends,
shares the quadratic pairwise-similarity step through a
:class:`~repro.runtime.cache.SimilarityCache`, and reports every pass as
a :class:`~repro.runtime.stats.RunStats` record.

See ``docs/architecture.md`` for where this layer sits in the pipeline
and ``docs/performance.md`` for tuning guidance.
"""

from repro.runtime.batch import batched_similarity_graphs
from repro.runtime.cache import CacheStats, SimilarityCache, block_fingerprint
from repro.runtime.executor import (
    BlockExecutor,
    DegradedParallelismWarning,
    ProcessPoolBlockExecutor,
    SerialExecutor,
    available_cores,
    build_executor,
    core_report,
    executor_for_workers,
    executor_from_config,
    host_cores,
)
from repro.runtime.shards import ShardHandle, ShardStore, load_shard
from repro.runtime.stats import RunStats, TaskStats

__all__ = [
    "BlockExecutor",
    "CacheStats",
    "DegradedParallelismWarning",
    "ProcessPoolBlockExecutor",
    "RunStats",
    "SerialExecutor",
    "ShardHandle",
    "ShardStore",
    "SimilarityCache",
    "TaskStats",
    "available_cores",
    "batched_similarity_graphs",
    "block_fingerprint",
    "build_executor",
    "core_report",
    "executor_for_workers",
    "executor_from_config",
    "host_cores",
    "load_shard",
]
