"""Observability records for the block execution engine.

Every engine-driven pass (context preparation, fitting, prediction,
evaluation) produces a :class:`RunStats`: wall time, pairs scored, cache
hit/miss counts and per-block timings.  The record is JSON-serializable so
the experiments runner, the CLI and ``benchmarks/test_bench_runtime.py``
can all surface the same numbers, and ``BENCH_runtime.json`` can track
them across revisions.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field


def percentile(samples: "list[float]", q: float) -> float:
    """Nearest-rank percentile of ``samples`` (0.0 for an empty list).

    ``q`` is in percent (50 -> median).  Nearest-rank keeps the value an
    actual observed sample — the convention latency dashboards use — and
    is exact for the small reservoirs kept here.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


class LatencyReservoir:
    """Bounded uniform sample of per-request latencies.

    A serving process must answer "what is p99 right now?" without
    holding every latency it ever measured; Vitter's Algorithm R keeps a
    fixed-size uniform sample of the stream so percentiles stay
    representative at O(capacity) memory.  The replacement choices come
    from a private seeded :class:`random.Random`, so two sessions fed the
    identical latency stream report identical percentiles — benchmark
    records stay reproducible.
    """

    __slots__ = ("capacity", "_samples", "_seen", "_random")

    def __init__(self, capacity: int = 2048, seed: int = 0):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._samples: list[float] = []
        self._seen = 0
        self._random = random.Random(seed)

    def record(self, value: float) -> None:
        """Fold one observation into the reservoir."""
        self._seen += 1
        if len(self._samples) < self.capacity:
            self._samples.append(value)
            return
        slot = self._random.randrange(self._seen)
        if slot < self.capacity:
            self._samples[slot] = value

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the current sample (0.0 empty)."""
        return percentile(self._samples, q)

    @property
    def count(self) -> int:
        """Observations recorded over the reservoir's lifetime."""
        return self._seen

    def samples(self) -> list[float]:
        """A copy of the current sample (at most ``capacity`` values)."""
        return list(self._samples)

    def __len__(self) -> int:
        return len(self._samples)

    def __repr__(self) -> str:
        return (f"LatencyReservoir({len(self._samples)}/{self.capacity} "
                f"samples, {self._seen} seen)")


@dataclass
class TaskStats:
    """Cost of one block-level task, reported by executor workers.

    Worker processes cannot update the parent's caches or counters, so
    each task measures itself and the scheduling side aggregates the
    results into a :class:`RunStats`.
    """

    query_name: str
    seconds: float = 0.0
    pairs_scored: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: time this task spent resolving its shard — segment attach,
    #: residual unpickle, plane binding (0.0 on cache hits and for
    #: serial/local execution).
    attach_unpickle_seconds: float = 0.0


@dataclass
class RunStats:
    """Aggregate cost of one engine pass over a collection's blocks.

    Attributes:
        phase: what the pass did — ``"prepare"``, ``"fit"``, ``"predict"``
            or ``"evaluate"``.
        executor: executor backend name the pass ran under.
        workers: worker count the executor was configured with (what the
            run *requested* — also exposed as ``requested_workers``).
        effective_workers: workers actually scheduled after the core cap
            (1 for serial backends; honest accounting means this can be
            smaller than ``workers`` and the record says so).
        available_cores: cores the process's scheduling affinity grants.
        host_cores: cores the host physically reports; a gap between
            this and ``available_cores`` means a cpuset/container limit.
        cpuset_limited: ``available_cores < host_cores``.
        fork_waves: worker-pool creations this pass caused (0 for
            serial; a persistent pool shared across stages reports 1 on
            the first stage and 0 on the rest).
        wall_seconds: end-to-end wall time of the pass.
        n_blocks: number of blocks scheduled.
        pairs_scored: pairwise similarity values actually computed (cache
            misses; reused values count as hits instead).
        cache_hits: pair values served from a :class:`SimilarityCache`.
        cache_misses: pair values that had to be computed.
        per_block_seconds: wall time per query name (in the parallel
            backends this is each task's own clock, so the sum can exceed
            ``wall_seconds``).
        shard_bytes_published: total segment bytes this pass published
            (pickled residual + raw plane region; 0 for serial passes).
        pickled_bytes: bytes of the pickled residual inside those
            segments — on the plane path this is config/pipeline/slot
            headers only, never the numeric bulk.
        plane_bytes: bytes of raw plane arrays published zero-copy.
        plane_payloads: payload fields (features/graphs) shipped as
            planes instead of pickle.
        plane_fallback_payloads: plane-eligible fields that failed to
            encode and were pickled anyway (should stay 0; the CI bench
            validation fails when it is not).
        attach_unpickle_seconds: summed worker time spent attaching
            segments and unpickling residuals (near zero once the
            per-process shard cache is warm).
    """

    phase: str
    executor: str = "serial"
    workers: int = 1
    effective_workers: int = 1
    available_cores: int = 1
    host_cores: int = 1
    cpuset_limited: bool = False
    fork_waves: int = 0
    wall_seconds: float = 0.0
    n_blocks: int = 0
    pairs_scored: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    per_block_seconds: dict[str, float] = field(default_factory=dict)
    shard_bytes_published: int = 0
    pickled_bytes: int = 0
    plane_bytes: int = 0
    plane_payloads: int = 0
    plane_fallback_payloads: int = 0
    attach_unpickle_seconds: float = 0.0

    @classmethod
    def for_executor(cls, phase: str, executor) -> "RunStats":
        """A record pre-filled with an executor's worker accounting.

        Duck-typed over any :class:`~repro.runtime.executor.BlockExecutor`:
        serial backends lack ``effective_workers``/``fork_waves`` and
        report 1 effective worker, 0 fork waves.  ``fork_waves`` captures
        the executor's *current* wave count; stages that reuse a
        persistent pool subtract their starting count to report only the
        waves they caused (see ``finish_executor``).
        """
        from repro.runtime.executor import core_report
        report = core_report()
        return cls(
            phase=phase,
            executor=executor.name,
            workers=executor.workers,
            effective_workers=getattr(executor, "effective_workers", 1),
            available_cores=report["available_cores"],
            host_cores=report["host_cores"],
            cpuset_limited=report["cpuset_limited"],
            fork_waves=getattr(executor, "fork_waves", 0),
        )

    def finish_executor(self, executor) -> None:
        """Convert ``fork_waves`` from a snapshot into this pass's delta.

        Called after the executor ran: ``for_executor`` stored the wave
        count *before* the pass; the difference to the executor's count
        now is how many fork waves this pass itself triggered.
        """
        self.fork_waves = (getattr(executor, "fork_waves", 0)
                           - self.fork_waves)

    @property
    def requested_workers(self) -> int:
        """Alias for ``workers`` — the count the run asked for."""
        return self.workers

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of pair lookups served from cache (0.0 when unused)."""
        total = self.cache_hits + self.cache_misses
        if total == 0:
            return 0.0
        return self.cache_hits / total

    def add_task(self, task: TaskStats) -> None:
        """Fold one block task's numbers into the aggregate."""
        self.n_blocks += 1
        self.pairs_scored += task.pairs_scored
        self.cache_hits += task.cache_hits
        self.cache_misses += task.cache_misses
        self.attach_unpickle_seconds += getattr(
            task, "attach_unpickle_seconds", 0.0)
        self.per_block_seconds[task.query_name] = (
            self.per_block_seconds.get(task.query_name, 0.0) + task.seconds)

    def merged(self, other: "RunStats", phase: str | None = None) -> "RunStats":
        """A new record combining two passes (wall times and counters add)."""
        combined = RunStats(
            phase=phase or self.phase,
            executor=self.executor,
            workers=self.workers,
            effective_workers=max(self.effective_workers,
                                  other.effective_workers),
            available_cores=self.available_cores,
            host_cores=self.host_cores,
            cpuset_limited=self.cpuset_limited,
            fork_waves=self.fork_waves + other.fork_waves,
            wall_seconds=self.wall_seconds + other.wall_seconds,
            n_blocks=self.n_blocks + other.n_blocks,
            pairs_scored=self.pairs_scored + other.pairs_scored,
            cache_hits=self.cache_hits + other.cache_hits,
            cache_misses=self.cache_misses + other.cache_misses,
            per_block_seconds=dict(self.per_block_seconds),
            shard_bytes_published=(self.shard_bytes_published
                                   + other.shard_bytes_published),
            pickled_bytes=self.pickled_bytes + other.pickled_bytes,
            plane_bytes=self.plane_bytes + other.plane_bytes,
            plane_payloads=self.plane_payloads + other.plane_payloads,
            plane_fallback_payloads=(self.plane_fallback_payloads
                                     + other.plane_fallback_payloads),
            attach_unpickle_seconds=(self.attach_unpickle_seconds
                                     + other.attach_unpickle_seconds),
        )
        for name, seconds in other.per_block_seconds.items():
            combined.per_block_seconds[name] = (
                combined.per_block_seconds.get(name, 0.0) + seconds)
        return combined

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable snapshot (used by benchmarks and the CLI)."""
        return {
            "phase": self.phase,
            "executor": self.executor,
            "workers": self.workers,
            "requested_workers": self.requested_workers,
            "effective_workers": self.effective_workers,
            "available_cores": self.available_cores,
            "host_cores": self.host_cores,
            "cpuset_limited": self.cpuset_limited,
            "fork_waves": self.fork_waves,
            "wall_seconds": self.wall_seconds,
            "n_blocks": self.n_blocks,
            "pairs_scored": self.pairs_scored,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "per_block_seconds": dict(self.per_block_seconds),
            "shard_bytes_published": self.shard_bytes_published,
            "pickled_bytes": self.pickled_bytes,
            "plane_bytes": self.plane_bytes,
            "plane_payloads": self.plane_payloads,
            "plane_fallback_payloads": self.plane_fallback_payloads,
            "attach_unpickle_seconds": self.attach_unpickle_seconds,
        }

    def summary(self) -> str:
        """One line for CLI output."""
        workers = f"workers={self.workers}"
        if self.effective_workers != self.workers:
            workers += f"->{self.effective_workers}"
        return (f"[{self.phase}] {self.n_blocks} blocks in "
                f"{self.wall_seconds:.2f}s via {self.executor}"
                f"({workers}); "
                f"{self.pairs_scored} pairs scored, "
                f"cache hit rate {self.cache_hit_rate:.0%}")
