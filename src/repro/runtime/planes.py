"""Columnar feature planes: the zero-copy payload format for shards.

The shard layer (:mod:`repro.runtime.shards`) used to pickle a fan-out's
whole payload list into the segment.  Pickle is convenient but it is a
*copying* format: every worker pays ``pickle.loads`` over the full
numeric bulk — feature dicts and quadratic graph weights — and owns a
private copy of data that is already sitting, immutable, in shared
memory.  This module defines a layout-stable columnar encoding for
exactly that bulk:

* :func:`encode_features` packs one block's ``dict[str, PageFeatures]``
  into flat C-contiguous arrays — a deduplicated UTF-8 string table,
  per-page scalar columns, and one CSR triple (``indptr``/``cols``/
  ``values``) per sparse feature family, columns indexed into the
  family's ascending-key vocabulary.  The derived families the
  vectorized kernels need (``top_tfidf``, ``entity_context``) are
  computed here, at encode time, so workers never rebuild them from
  dicts.
* :func:`encode_graphs` packs a ``dict[str, WeightedPairGraph]`` the
  same way: a node table plus ``(left, right, weight)`` edge columns
  per function, in the weights dict's canonical pair order.
* A :class:`PlaneWriter` accumulates the arrays and copies them into
  the shard segment **once**, 64-byte aligned; only a tiny header of
  :class:`ArraySpec` descriptors travels through pickle.

On the worker side :class:`PlaneBuffer` turns the attached segment back
into read-only ``np.frombuffer`` views — zero copy, zero unpickle — and
two lazy mappings make the views a drop-in replacement for the original
objects: :class:`PlaneFeatureMap` (``Mapping[str, PageFeatures]``, pages
materialized only if a scalar fallback asks) and :class:`GraphPlaneMap`
(``Mapping[str, WeightedPairGraph]``).  The numpy backend never touches
the mapping: :class:`~repro.similarity.batch.BlockState` detects the
``planes`` attribute and builds its families straight from the CSR
views.

Bit-identity: values are stored as the exact float64/int64 bits of the
source dicts, entries in dict iteration order (extraction emits
key-sorted dicts, so iteration order *is* the canonical fold order), and
vocabularies in ascending key order — the same order
``similarity/batch.py`` sorts them.  Decoding rebuilds dicts with the
identical iteration order, so every downstream float fold replays the
same operation sequence.  The parity suites in
``tests/properties/test_plane_parity.py`` enforce this at tolerance
zero.

This module imports numpy at module level; the shard layer only imports
it lazily, from inside the plane-path branches, so planeless runs on
numpy-free hosts keep working.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Mapping
from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from repro.extraction.features import PageFeatures
from repro.graph.entity_graph import WeightedPairGraph

__all__ = [
    "ArraySpec",
    "FeaturePlanes",
    "GraphPlaneMap",
    "PlaneBuffer",
    "PlaneEncodeError",
    "PlaneFeatureMap",
    "PlaneWriter",
    "encode_features",
    "encode_graphs",
    "features_eligible",
    "graphs_eligible",
]

#: Array alignment inside the plane region.  64 bytes keeps every view
#: cache-line aligned (and safely over-aligned for every dtype used).
_ALIGN = 64


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


class PlaneEncodeError(ValueError):
    """Payload data does not fit the plane layout (caller falls back)."""


@dataclass(frozen=True)
class ArraySpec:
    """Locator of one flat array inside a shard's plane region.

    Attributes:
        offset: byte offset relative to the plane region's base.
        count: element count.
        dtype: numpy dtype string (``"<i8"``, ``"<f8"``, ``"|u1"``).
    """

    offset: int
    count: int
    dtype: str


@dataclass(frozen=True)
class FamilySpec:
    """One sparse feature family as a CSR triple over a sorted vocabulary.

    ``kind`` is ``"vector"`` (float64 values), ``"counter"`` (int64
    values) or ``"set"`` (no values).  ``vocab`` holds one string-table
    id per column, in ascending key order — the same order
    ``BlockState`` sorts block vocabularies, so plane columns can be
    used as kernel columns directly.  ``cols``/``values`` entries are in
    each page's dict iteration order, which rebuilds dicts with their
    original (canonical) iteration order.
    """

    kind: str
    n_columns: int
    vocab: ArraySpec
    indptr: ArraySpec
    cols: ArraySpec
    values: ArraySpec | None


@dataclass(frozen=True)
class FeaturePlanesHeader:
    """Pickled residual describing one block's feature planes."""

    n: int
    blob: ArraySpec
    offsets: ArraySpec
    doc_ids: ArraySpec
    urls: ArraySpec
    frequent_names: ArraySpec
    closest_names: ArraySpec
    n_tokens: ArraySpec
    families: tuple[tuple[str, FamilySpec], ...]


@dataclass(frozen=True)
class GraphSpec:
    """One function's weighted pair graph as flat edge columns."""

    nodes: ArraySpec
    left: ArraySpec
    right: ArraySpec
    weights: ArraySpec


@dataclass(frozen=True)
class GraphPlanesHeader:
    """Pickled residual describing one block's similarity graphs."""

    blob: ArraySpec
    offsets: ArraySpec
    functions: tuple[tuple[str, GraphSpec], ...]


# -- writing ---------------------------------------------------------------


class PlaneWriter:
    """Accumulates plane arrays and writes them into a segment once.

    ``add`` records a C-contiguous copy-on-demand of the array and
    returns its :class:`ArraySpec`; ``write_into`` copies every array
    into the target buffer in one pass.  One writer serves a whole
    fan-out — every payload's planes land in the same region.
    """

    def __init__(self) -> None:
        self._arrays: list[tuple[int, np.ndarray]] = []
        self._cursor = 0

    def add(self, array: np.ndarray) -> ArraySpec:
        array = np.ascontiguousarray(array)
        offset = _aligned(self._cursor)
        self._arrays.append((offset, array))
        self._cursor = offset + array.nbytes
        return ArraySpec(offset=offset, count=int(array.size),
                         dtype=array.dtype.str)

    @property
    def nbytes(self) -> int:
        """Bytes the plane region needs (0 when nothing was added)."""
        return self._cursor

    def write_into(self, buffer, base: int) -> None:
        """Copy every recorded array into ``buffer`` at ``base``."""
        for offset, array in self._arrays:
            if array.size == 0:
                continue
            view = np.frombuffer(buffer, dtype=array.dtype,
                                 count=array.size, offset=base + offset)
            view[:] = array


class PlaneBuffer:
    """Read-only ``np.frombuffer`` views over an attached plane region.

    Holds the segment's memoryview; every array it hands out keeps that
    view (and through it the segment) alive, which is what lets the
    shard cache detect — via ``BufferError`` on release — that a segment
    still has live views and must not be closed yet.
    """

    def __init__(self, buffer, base: int):
        self._buffer = buffer
        self._base = base

    def array(self, spec: ArraySpec) -> np.ndarray:
        view = np.frombuffer(self._buffer, dtype=np.dtype(spec.dtype),
                             count=spec.count,
                             offset=self._base + spec.offset)
        if view.flags.writeable:  # pragma: no cover - shards pass readonly
            view.flags.writeable = False
        return view


class _StringTable:
    """Encode-side interning table: UTF-8 blob + offsets."""

    def __init__(self) -> None:
        self._ids: dict[str, int] = {}
        self._parts: list[bytes] = []

    def add(self, value: str) -> int:
        if type(value) is not str:
            raise PlaneEncodeError(f"expected str, got {type(value).__name__}")
        index = self._ids.get(value)
        if index is None:
            index = len(self._parts)
            self._ids[value] = index
            self._parts.append(value.encode("utf-8"))
        return index

    def specs(self, writer: PlaneWriter) -> tuple[ArraySpec, ArraySpec]:
        offsets = np.zeros(len(self._parts) + 1, dtype=np.int64)
        if self._parts:
            np.cumsum([len(part) for part in self._parts], out=offsets[1:])
        blob = np.frombuffer(b"".join(self._parts), dtype=np.uint8)
        return writer.add(blob), writer.add(offsets)


class _Strings:
    """Decode-side lazy string table (each string decoded at most once)."""

    def __init__(self, blob: np.ndarray, offsets: np.ndarray):
        self._blob = blob
        self._offsets = offsets
        self._cache: dict[int, str] = {}

    def get(self, index: int) -> str:
        value = self._cache.get(index)
        if value is None:
            start = int(self._offsets[index])
            end = int(self._offsets[index + 1])
            value = bytes(self._blob[start:end]).decode("utf-8")
            self._cache[index] = value
        return value


# -- feature planes --------------------------------------------------------


def _encode_mapping_family(kind: str, maps: list, writer: PlaneWriter,
                           strings: _StringTable,
                           value_dtype) -> FamilySpec:
    vocabulary: set = set()
    for mapping in maps:
        vocabulary.update(mapping)
    try:
        ordered = sorted(vocabulary)
    except TypeError as error:
        raise PlaneEncodeError(f"unsortable {kind} vocabulary") from error
    column_of = {key: column for column, key in enumerate(ordered)}
    vocab_ids = np.asarray([strings.add(key) for key in ordered],
                           dtype=np.int64)
    indptr = np.zeros(len(maps) + 1, dtype=np.int64)
    np.cumsum([len(mapping) for mapping in maps], out=indptr[1:])
    columns: list[int] = []
    entries: list = []
    if kind == "set":
        for mapping in maps:
            columns.extend(column_of[key] for key in sorted(mapping))
    else:
        for mapping in maps:
            for key, value in mapping.items():
                columns.append(column_of[key])
                entries.append(value)
    values = None
    if kind != "set":
        entry_array = np.asarray(entries, dtype=value_dtype)
        if len(entry_array) != len(columns):  # pragma: no cover - paranoia
            raise PlaneEncodeError("ragged family entries")
        values = writer.add(entry_array)
    return FamilySpec(kind=kind, n_columns=len(ordered),
                      vocab=writer.add(vocab_ids),
                      indptr=writer.add(indptr),
                      cols=writer.add(np.asarray(columns, dtype=np.int64)),
                      values=values)


def features_eligible(features) -> bool:
    """Whether a payload's ``features`` can take the plane path.

    Only plain ``dict[str, PageFeatures]`` with stock pages qualifies —
    a subclass could carry behavior the columnar layout cannot
    represent, and an already-plane-backed mapping needs no re-encoding.
    """
    if type(features) is not dict or not features:
        return False
    return all(type(key) is str and type(page) is PageFeatures
               for key, page in features.items())


def encode_features(features: dict[str, PageFeatures],
                    writer: PlaneWriter) -> FeaturePlanesHeader:
    """Pack one block's features into plane arrays; returns the header.

    Raises :class:`PlaneEncodeError` for values that do not fit the
    layout (non-string keys, unsortable vocabularies); callers fall back
    to pickling the payload as-is.
    """
    from repro.similarity import extended as _extended

    ids = list(features)
    pages = [features[doc_id] for doc_id in ids]
    strings = _StringTable()
    doc_ids = np.asarray([strings.add(doc_id) for doc_id in ids],
                         dtype=np.int64)
    urls = np.asarray([strings.add(page.url) for page in pages],
                      dtype=np.int64)
    frequent = np.asarray(
        [strings.add(page.most_frequent_name) for page in pages],
        dtype=np.int64)
    closest = np.asarray(
        [strings.add(page.closest_name_to_query) for page in pages],
        dtype=np.int64)
    n_tokens = np.asarray([int(page.n_tokens) for page in pages],
                          dtype=np.int64)

    families: list[tuple[str, FamilySpec]] = []
    # Raw families rebuild PageFeatures; the two derived families
    # (top_tfidf via _top_terms, entity_context via the Counter merge)
    # are precomputed so plane-backed kernels never touch page dicts.
    specs = [
        ("concept", "vector", [page.concept_vector for page in pages],
         np.float64),
        ("tfidf", "vector", [page.tfidf for page in pages], np.float64),
        ("top_tfidf", "vector",
         [_extended._top_terms(page.tfidf) for page in pages], np.float64),
        ("concept_set", "set", [page.concept_set for page in pages], None),
        ("organizations", "counter",
         [page.organizations for page in pages], np.int64),
        ("other_persons", "counter",
         [page.other_persons for page in pages], np.int64),
        ("locations", "counter", [page.locations for page in pages],
         np.int64),
        ("entity_context", "counter",
         [_extended._entity_context(page) for page in pages], np.int64),
    ]
    try:
        for name, kind, maps, dtype in specs:
            families.append((name, _encode_mapping_family(
                kind, maps, writer, strings, dtype)))
    except (TypeError, ValueError, OverflowError) as error:
        raise PlaneEncodeError(str(error)) from error
    blob, offsets = strings.specs(writer)
    return FeaturePlanesHeader(
        n=len(ids), blob=blob, offsets=offsets, doc_ids=writer.add(doc_ids),
        urls=writer.add(urls), frequent_names=writer.add(frequent),
        closest_names=writer.add(closest), n_tokens=writer.add(n_tokens),
        families=tuple(families))


class PlaneFamily:
    """Worker-side view of one family's CSR triple."""

    __slots__ = ("kind", "n_columns", "indptr", "cols", "values",
                 "_vocab_ids", "_strings", "_vocab")

    def __init__(self, spec: FamilySpec, buffer: PlaneBuffer,
                 strings: _Strings):
        self.kind = spec.kind
        self.n_columns = spec.n_columns
        self.indptr = buffer.array(spec.indptr)
        self.cols = buffer.array(spec.cols)
        self.values = (buffer.array(spec.values)
                       if spec.values is not None else None)
        self._vocab_ids = buffer.array(spec.vocab)
        self._strings = strings
        self._vocab: list[str] | None = None

    def vocab(self) -> list[str]:
        """Column key strings, decoded once per family."""
        if self._vocab is None:
            get = self._strings.get
            self._vocab = [get(index) for index in self._vocab_ids.tolist()]
        return self._vocab

    def select(self, rows: list[int]):
        """CSR slice for ``rows``: ``(counts, cols, values)``.

        The full-range identity selection returns the stored views
        untouched (zero copy); arbitrary row subsets gather — the
        gathered arrays are tiny next to the matrices built from them.
        """
        n = len(self.indptr) - 1
        if len(rows) == n and rows == list(range(n)):
            counts = np.diff(self.indptr)
            return counts, self.cols, self.values
        counts = np.empty(len(rows), dtype=np.int64)
        pieces: list[np.ndarray] = []
        for out, row in enumerate(rows):
            start = int(self.indptr[row])
            end = int(self.indptr[row + 1])
            counts[out] = end - start
            if end > start:
                pieces.append(np.arange(start, end, dtype=np.int64))
        if pieces:
            take = np.concatenate(pieces)
            return (counts, self.cols[take],
                    self.values[take] if self.values is not None else None)
        empty = np.empty(0, dtype=np.int64)
        return (counts, empty,
                np.empty(0, dtype=self.values.dtype)
                if self.values is not None else None)


class FeaturePlanes:
    """One block's decoded plane views plus lazy PageFeatures rebuild."""

    def __init__(self, header: FeaturePlanesHeader, buffer: PlaneBuffer):
        self._header = header
        self._buffer = buffer
        self._strings = _Strings(buffer.array(header.blob),
                                 buffer.array(header.offsets))
        self._doc_ids = buffer.array(header.doc_ids)
        self._families: dict[str, PlaneFamily] = {}
        self._ids: list[str] | None = None
        self._row_index: dict[str, int] | None = None
        self._urls: list[str] | None = None
        self._pages: dict[int, PageFeatures] = {}

    @property
    def n(self) -> int:
        return self._header.n

    def doc_ids(self) -> list[str]:
        if self._ids is None:
            get = self._strings.get
            self._ids = [get(index) for index in self._doc_ids.tolist()]
        return self._ids

    def row_index(self) -> dict[str, int]:
        if self._row_index is None:
            self._row_index = {doc_id: row for row, doc_id
                               in enumerate(self.doc_ids())}
        return self._row_index

    def urls(self) -> list[str]:
        if self._urls is None:
            get = self._strings.get
            self._urls = [get(index) for index in
                          self._buffer.array(self._header.urls).tolist()]
        return self._urls

    def family(self, name: str) -> PlaneFamily | None:
        family = self._families.get(name)
        if family is None:
            for spec_name, spec in self._header.families:
                if spec_name == name:
                    family = PlaneFamily(spec, self._buffer, self._strings)
                    self._families[name] = family
                    break
        return family

    def _row_mapping(self, name: str, row: int, cast):
        family = self.family(name)
        vocab = family.vocab()
        start = int(family.indptr[row])
        end = int(family.indptr[row + 1])
        keys = [vocab[column] for column in family.cols[start:end].tolist()]
        # .tolist() yields the stored float64/int64 bits as native Python
        # scalars, and zip preserves the stored (canonical) dict order.
        return cast(zip(keys, family.values[start:end].tolist()))

    def _row_keys(self, name: str, row: int) -> list[str]:
        family = self.family(name)
        vocab = family.vocab()
        start = int(family.indptr[row])
        end = int(family.indptr[row + 1])
        return [vocab[column] for column in family.cols[start:end].tolist()]

    def page(self, row: int) -> PageFeatures:
        """Rebuild one page (scalar-fallback path); cached per row."""
        page = self._pages.get(row)
        if page is None:
            get = self._strings.get
            buffer = self._buffer
            header = self._header

            def counter(name: str) -> Counter:
                return self._row_mapping(name, row,
                                         lambda items: Counter(dict(items)))

            page = PageFeatures(
                doc_id=self.doc_ids()[row],
                url=self.urls()[row],
                most_frequent_name=get(
                    int(buffer.array(header.frequent_names)[row])),
                closest_name_to_query=get(
                    int(buffer.array(header.closest_names)[row])),
                concept_vector=self._row_mapping("concept", row, dict),
                concept_set=frozenset(self._row_keys("concept_set", row)),
                organizations=counter("organizations"),
                other_persons=counter("other_persons"),
                locations=counter("locations"),
                tfidf=self._row_mapping("tfidf", row, dict),
                n_tokens=int(buffer.array(header.n_tokens)[row]),
            )
            self._pages[row] = page
        return page


class PlaneFeatureMap(Mapping):
    """``Mapping[str, PageFeatures]`` over plane views.

    Drop-in for the features dict every existing signature expects.  The
    numpy backend never iterates it — ``BlockState`` picks up the
    ``planes`` attribute and scores the views directly; only scalar
    fallbacks (F3/F7, custom functions, the python backend) materialize
    pages, each at most once.
    """

    __slots__ = ("planes",)

    def __init__(self, planes: FeaturePlanes):
        self.planes = planes

    def __getitem__(self, doc_id: str) -> PageFeatures:
        return self.planes.page(self.planes.row_index()[doc_id])

    def __iter__(self) -> Iterator[str]:
        return iter(self.planes.doc_ids())

    def __len__(self) -> int:
        return self.planes.n

    def __reduce__(self):
        # Pickling would silently copy the shared arrays back into a
        # private buffer — the exact cost the planes exist to remove.
        raise TypeError("PlaneFeatureMap is a view over a shard segment "
                        "and must not be pickled; rebuild it from the "
                        "shard handle instead")


# -- graph planes ----------------------------------------------------------


def graphs_eligible(graphs) -> bool:
    """Whether a payload's ``graphs`` dict can take the plane path."""
    if type(graphs) is not dict or not graphs:
        return False
    return all(type(name) is str and type(graph) is WeightedPairGraph
               for name, graph in graphs.items())


def encode_graphs(graphs: dict[str, WeightedPairGraph],
                  writer: PlaneWriter) -> GraphPlanesHeader:
    """Pack similarity graphs into plane arrays; returns the header."""
    strings = _StringTable()
    functions: list[tuple[str, GraphSpec]] = []
    for name, graph in graphs.items():
        if type(name) is not str:
            raise PlaneEncodeError("graph names must be str")
        node_ids = np.asarray([strings.add(node) for node in graph.nodes],
                              dtype=np.int64)
        count = len(graph.weights)
        left = np.empty(count, dtype=np.int64)
        right = np.empty(count, dtype=np.int64)
        weights = np.empty(count, dtype=np.float64)
        try:
            for index, (key, value) in enumerate(graph.weights.items()):
                first, second = key
                left[index] = strings.add(first)
                right[index] = strings.add(second)
                weights[index] = value
        except (TypeError, ValueError) as error:
            raise PlaneEncodeError(str(error)) from error
        functions.append((name, GraphSpec(
            nodes=writer.add(node_ids), left=writer.add(left),
            right=writer.add(right), weights=writer.add(weights))))
    blob, offsets = strings.specs(writer)
    return GraphPlanesHeader(blob=blob, offsets=offsets,
                             functions=tuple(functions))


class GraphPlaneMap(Mapping):
    """``Mapping[str, WeightedPairGraph]`` decoded lazily per function.

    Weights dicts rebuild in stored order — the canonical pair order the
    parent's dict iterated — so downstream sweeps see identical
    iteration and identical float bits.
    """

    __slots__ = ("_header", "_buffer", "_strings", "_graphs")

    def __init__(self, header: GraphPlanesHeader, buffer: PlaneBuffer):
        self._header = header
        self._buffer = buffer
        self._strings = _Strings(buffer.array(header.blob),
                                 buffer.array(header.offsets))
        self._graphs: dict[str, WeightedPairGraph] = {}

    def _spec(self, name: str) -> GraphSpec | None:
        for spec_name, spec in self._header.functions:
            if spec_name == name:
                return spec
        return None

    def __getitem__(self, name: str) -> WeightedPairGraph:
        graph = self._graphs.get(name)
        if graph is None:
            spec = self._spec(name)
            if spec is None:
                raise KeyError(name)
            get = self._strings.get
            nodes = [get(index) for index in
                     self._buffer.array(spec.nodes).tolist()]
            weights: dict = {}
            for first, second, weight in zip(
                    self._buffer.array(spec.left).tolist(),
                    self._buffer.array(spec.right).tolist(),
                    self._buffer.array(spec.weights).tolist()):
                weights[(get(first), get(second))] = weight
            graph = WeightedPairGraph(nodes=nodes, weights=weights)
            self._graphs[name] = graph
        return graph

    def __iter__(self) -> Iterator[str]:
        return iter(name for name, _ in self._header.functions)

    def __len__(self) -> int:
        return len(self._header.functions)

    def __reduce__(self):
        raise TypeError("GraphPlaneMap is a view over a shard segment "
                        "and must not be pickled; rebuild it from the "
                        "shard handle instead")
