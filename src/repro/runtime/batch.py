"""Batched similarity-graph construction.

One pass over a block's page pairs fills every similarity function's
weighted graph, using each function's *prepared* scorer
(:meth:`~repro.similarity.base.SimilarityFunction.prepared`) so per-page
inputs — vector norms, parsed URLs, name forms, key sets — are derived
once per page instead of once per pair.  Prepared scorers are bit-identical
to the plain per-pair scorers, so this path produces exactly the graphs
the naive loop would; ``tests/runtime/test_batch.py`` enforces it.

With a :class:`~repro.runtime.cache.SimilarityCache`, graphs already
computed for the same (block, function) are reused instead of rescored,
which collapses the fit → predict → evaluate flows to one quadratic pass
per block.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.corpus.documents import NameCollection
from repro.extraction.features import PageFeatures
from repro.graph.entity_graph import WeightedPairGraph, pair_key
from repro.runtime.cache import SimilarityCache, block_fingerprint
from repro.similarity.base import SimilarityFunction


def batched_similarity_graphs(
    block: NameCollection,
    features: dict[str, PageFeatures],
    functions: Sequence[SimilarityFunction],
    cache: SimilarityCache | None = None,
) -> dict[str, WeightedPairGraph]:
    """The complete weighted graph ``G_w^fi`` for every function.

    Identical output to scoring each pair with ``function(left, right)``
    in a nested loop (the seed implementation), but with per-page input
    reuse and optional cross-pass caching.

    Args:
        block: the pages to score (the blocking unit).
        features: extracted features per ``doc_id``; must cover the block.
        functions: the similarity battery; graphs keep its order.
        cache: optional shared cache — functions whose graph for this
            block is already stored are reused, freshly scored ones are
            stored back.
    """
    ids = block.page_ids()
    graphs: dict[str, WeightedPairGraph] = {}
    pending: list[SimilarityFunction] = []
    fingerprint = block_fingerprint(block) if cache is not None else None
    for function in functions:
        cached = (cache.get_weights(fingerprint, function.name)
                  if cache is not None else None)
        if cached is not None:
            graphs[function.name] = WeightedPairGraph(nodes=list(ids),
                                                      weights=cached)
        else:
            graphs[function.name] = WeightedPairGraph(nodes=list(ids))
            pending.append(function)

    if pending:
        scorers = [(graphs[function.name].weights,
                    function.prepared(features)) for function in pending]
        for i, left_id in enumerate(ids):
            left = features[left_id]
            for right_id in ids[i + 1:]:
                right = features[right_id]
                key = pair_key(left_id, right_id)
                for weights, scorer in scorers:
                    weights[key] = scorer(left, right)
        if cache is not None:
            for function in pending:
                cache.put_weights(fingerprint, function.name,
                                  graphs[function.name].weights)
    return graphs
