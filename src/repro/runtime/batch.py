"""Batched similarity-graph construction.

One pass over a block's page pairs fills every similarity function's
weighted graph through a pluggable :class:`~repro.similarity.backends.
ScoringBackend`: the ``python`` backend sweeps the pair grid once with
each function's *prepared* scorer
(:meth:`~repro.similarity.base.SimilarityFunction.prepared`) so per-page
inputs — vector norms, parsed URLs, name forms, key sets — are derived
once per page instead of once per pair; the ``numpy`` backend fills
whole score matrices from vectorized block kernels.  Every backend is
bit-identical to scoring each pair naively, so this path produces
exactly the graphs the seed loop would; ``tests/runtime/test_batch.py``
and ``tests/properties/test_backend_parity.py`` enforce it.

With a :class:`~repro.runtime.cache.SimilarityCache`, graphs already
computed for the same (block, function) are reused instead of rescored,
which collapses the fit → predict → evaluate flows to one quadratic pass
per block.  Cached weights are backend-agnostic — bit-identity is what
makes them safely shareable across backends.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.corpus.documents import NameCollection
from repro.extraction.features import PageFeatures
from repro.graph.entity_graph import WeightedPairGraph
from repro.runtime.cache import SimilarityCache, block_fingerprint
from repro.similarity.backends import ScoringBackend, resolve_backend
from repro.similarity.base import SimilarityFunction


def batched_similarity_graphs(
    block: NameCollection,
    features: dict[str, PageFeatures],
    functions: Sequence[SimilarityFunction],
    cache: SimilarityCache | None = None,
    backend: str | ScoringBackend | None = None,
    mask: "frozenset | None" = None,
) -> dict[str, WeightedPairGraph]:
    """The weighted graph ``G_w^fi`` for every function.

    Identical output to scoring each pair with ``function(left, right)``
    in a nested loop (the seed implementation), but with per-page input
    reuse, optional cross-pass caching, and a selectable scoring
    backend.

    Args:
        block: the pages to score (the blocking unit).
        features: extracted features per ``doc_id``; must cover the block.
        functions: the similarity battery; graphs keep its order.
        cache: optional shared cache — functions whose graph for this
            (block, mask) is already stored are reused, freshly scored
            ones are stored back.
        backend: scoring backend name or instance
            (:data:`~repro.similarity.backends.BACKENDS`); ``None`` uses
            the ambient default.  Backends are bit-identical, so the
            choice never changes the produced graphs.
        mask: optional candidate-pair mask from a blocker — only masked
            pairs are scored, so the graphs carry candidate edges only
            (non-candidate pairs read as 0.0, per
            :class:`~repro.graph.entity_graph.WeightedPairGraph`
            semantics).  ``None`` (default) scores the complete graph.
    """
    ids = block.page_ids()
    graphs: dict[str, WeightedPairGraph] = {}
    pending: list[SimilarityFunction] = []
    fingerprint = (block_fingerprint(block, mask)
                   if cache is not None else None)
    for function in functions:
        cached = (cache.get_weights(fingerprint, function.name)
                  if cache is not None else None)
        if cached is not None:
            graphs[function.name] = WeightedPairGraph(nodes=list(ids),
                                                      weights=cached)
        else:
            pending.append(function)

    if pending:
        scores = resolve_backend(backend).block_scores(ids, features, pending,
                                                       mask=mask)
        for function in pending:
            graphs[function.name] = WeightedPairGraph(
                nodes=list(ids), weights=scores[function.name])
        if cache is not None:
            for function in pending:
                cache.put_weights(fingerprint, function.name,
                                  graphs[function.name].weights)
    # Battery order regardless of the cached/pending split.
    return {function.name: graphs[function.name] for function in functions}
