"""Shared per-block similarity cache.

The quadratic pairwise-similarity step is the pipeline's dominant cost.
:class:`SimilarityCache` memoizes, per block fingerprint,

* the extracted :class:`~repro.extraction.features.PageFeatures` (so
  tokenization/NER/TF-IDF run once per block), and
* the pairwise similarity values of every function's weighted graph.

Where hits actually occur: repeated serving of a hot block through
``ResolverModel.predict_block`` / ``evaluate_block`` (the second and
later serves cost zero similarity computations — the benchmark's
``serving_cache_hit_rate`` case), and any caller that keeps one cache
across several ``compute_similarity_graphs`` calls for the same block.
The *collection* passes intentionally do not accumulate entries: they
run each block once, use the cache for pair-granular accounting (feeding
:class:`~repro.runtime.stats.RunStats`), and drop the block's entries
before the next block — the quadratic reuse across a single pass's
function × criterion grid comes from batched one-sweep construction
(:mod:`repro.runtime.batch`), not from cache round-trips.

Entries are dropped per block (:meth:`SimilarityCache.drop_block`) or
wholesale (:meth:`clear`) — ``ResolverModel.release_fit_caches`` clears
the model's cache so long-lived serving processes do not retain
quadratic per-block state.  Counters survive eviction.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.corpus.documents import NameCollection
from repro.extraction.features import PageFeatures
from repro.graph.entity_graph import PairKey

#: A block's cache identity: the query name plus the exact page-id tuple
#: (so two different page sets for the same name never alias) plus the
#: candidate-pair mask the weights were scored under (``None`` = dense;
#: masked and dense weights for the same pages must never alias either).
BlockFingerprint = tuple[str, tuple[str, ...], frozenset | None]


def block_fingerprint(block: NameCollection,
                      mask: frozenset | None = None) -> BlockFingerprint:
    """The cache key for one block (under one candidate mask)."""
    return (block.query_name, tuple(block.page_ids()), mask)


@dataclass(frozen=True)
class CacheStats:
    """Counter snapshot (hit/miss totals survive entry eviction)."""

    pair_hits: int
    pair_misses: int
    feature_hits: int
    feature_misses: int
    n_blocks: int

    @property
    def hit_rate(self) -> float:
        """Fraction of pair-value lookups served from the cache."""
        total = self.pair_hits + self.pair_misses
        if total == 0:
            return 0.0
        return self.pair_hits / total


class SimilarityCache:
    """Memo of per-block features and pairwise similarity values.

    Not thread-safe; process-pool workers each build their own transient
    cache and report counters back through
    :class:`~repro.runtime.stats.TaskStats`.
    """

    def __init__(self) -> None:
        self._features: dict[BlockFingerprint, dict[str, PageFeatures]] = {}
        self._weights: dict[BlockFingerprint,
                            dict[str, dict[PairKey, float]]] = {}
        self.pair_hits = 0
        self.pair_misses = 0
        self.feature_hits = 0
        self.feature_misses = 0

    # -- features --------------------------------------------------------

    def features_for(
        self,
        block: NameCollection,
        compute: Callable[[NameCollection], dict[str, PageFeatures]],
    ) -> dict[str, PageFeatures]:
        """The block's extracted features, computing them on first miss."""
        fingerprint = block_fingerprint(block)
        features = self._features.get(fingerprint)
        if features is not None:
            self.feature_hits += 1
            return features
        self.feature_misses += 1
        features = compute(block)
        self._features[fingerprint] = features
        return features

    # -- pairwise weights ------------------------------------------------

    def get_weights(self, fingerprint: BlockFingerprint,
                    function_name: str) -> dict[PairKey, float] | None:
        """Stored pair weights for one function, or ``None`` on miss.

        A hit counts every stored pair as served-from-cache.  The caller
        receives a copy, so downstream mutation (sparsification, edge
        edits) can never corrupt cached values.
        """
        per_function = self._weights.get(fingerprint)
        if per_function is None:
            return None
        weights = per_function.get(function_name)
        if weights is None:
            return None
        self.pair_hits += len(weights)
        return dict(weights)

    def put_weights(self, fingerprint: BlockFingerprint, function_name: str,
                    weights: dict[PairKey, float]) -> None:
        """Store one function's freshly computed pair weights."""
        self.pair_misses += len(weights)
        self._weights.setdefault(fingerprint, {})[function_name] = \
            dict(weights)

    # -- lifecycle -------------------------------------------------------

    def drop_block(self, block: NameCollection) -> None:
        """Drop one block's entries, under every mask (counters are kept)."""
        prefix = block_fingerprint(block)[:2]
        for store in (self._features, self._weights):
            stale = [fingerprint for fingerprint in store
                     if fingerprint[:2] == prefix]
            for fingerprint in stale:
                del store[fingerprint]

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._features.clear()
        self._weights.clear()

    def __len__(self) -> int:
        """Number of blocks with at least one cached entry."""
        return len(self._features.keys() | self._weights.keys())

    def stats(self) -> CacheStats:
        """Current counter snapshot."""
        return CacheStats(
            pair_hits=self.pair_hits,
            pair_misses=self.pair_misses,
            feature_hits=self.feature_hits,
            feature_misses=self.feature_misses,
            n_blocks=len(self),
        )

    def __repr__(self) -> str:
        snapshot = self.stats()
        return (f"SimilarityCache({snapshot.n_blocks} blocks, "
                f"hit_rate={snapshot.hit_rate:.0%})")
