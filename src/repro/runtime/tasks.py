"""Picklable block-level task functions for the executors.

Process-pool workers can only run module-level functions over picklable
payloads, so every parallelizable pass (context preparation, fitting,
prediction, evaluation) has its payload dataclass and task function here.
Each task measures itself and returns a
:class:`~repro.runtime.stats.TaskStats` alongside its result — worker
processes cannot touch the parent's caches or counters.

``repro.core`` modules are imported inside the task bodies: the core
imports the runtime package, so importing it back at module level would
cycle.

Fan-outs should go through :func:`run_block_tasks` rather than handing
payload lists to ``executor.run`` directly: for parallel executors it
publishes the whole payload list **once** as a shared-memory shard and
dispatches :class:`ShardedBlockTask` descriptors of a few dozen bytes;
for serial executors it degrades to the plain loop with zero shard
overhead.  Before publishing, each payload's numeric bulk — eager
feature dicts and precomputed graphs — is stripped out of the pickle
stream and written into the segment as raw columnar planes
(:mod:`repro.runtime.planes`); the pickled residual carries only slot
markers (:class:`FeaturePlaneSlot` / :class:`GraphPlaneSlot`) that
workers rebind to zero-copy views on attach.  ``REPRO_SHARD_PLANES=0``
disables the stripping (everything pickles, as before PR 10), which the
runtime benchmark uses to measure the zero-copy speedup.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.corpus.documents import NameCollection
from repro.runtime.batch import batched_similarity_graphs
from repro.runtime.cache import SimilarityCache
from repro.runtime.shards import ShardHandle, ShardStore, load_shard
from repro.runtime.stats import TaskStats
from repro.similarity.base import SimilarityFunction

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.runtime.executor import BlockExecutor

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.config import ResolverConfig
    from repro.core.model import FittedBlock
    from repro.extraction.pipeline import ExtractionPipeline
    from repro.graph.entity_graph import WeightedPairGraph
    from repro.runtime.stats import RunStats

#: Tri-state import probe for the plane codec (needs numpy); resolved on
#: first use so plane-free serial runs never pay the import.
_PLANES_IMPORTABLE: bool | None = None


def planes_enabled() -> bool:
    """Whether fan-outs strip numeric bulk into zero-copy planes.

    On by default; ``REPRO_SHARD_PLANES=0`` (or ``false``/``off``/``no``)
    forces the legacy pickle-everything path, and hosts without numpy
    degrade to it automatically.
    """
    raw = os.environ.get("REPRO_SHARD_PLANES", "").strip().lower()
    if raw in ("0", "false", "off", "no"):
        return False
    global _PLANES_IMPORTABLE
    if _PLANES_IMPORTABLE is None:
        try:
            import repro.runtime.planes  # noqa: F401
        except ImportError:  # pragma: no cover - numpy-free host
            _PLANES_IMPORTABLE = False
        else:
            _PLANES_IMPORTABLE = True
    return _PLANES_IMPORTABLE


def _block_graphs(
    block: NameCollection,
    graphs: dict[str, "WeightedPairGraph"] | None,
    pipeline: "ExtractionPipeline | None",
    functions: list[SimilarityFunction],
    cache: SimilarityCache,
    features: dict | None = None,
    backend: str | None = None,
    mask: frozenset | None = None,
) -> dict[str, "WeightedPairGraph"]:
    """Shipped graphs, or a fresh cached computation in this worker."""
    if graphs is not None:
        return graphs
    if features is None:
        if pipeline is None:
            raise ValueError(
                f"block {block.query_name!r} has neither precomputed graphs, "
                f"features, nor a pipeline to extract with")
        features = cache.features_for(block, pipeline.extract_block)
    return batched_similarity_graphs(block, features, functions, cache=cache,
                                     backend=backend, mask=mask)


def _task_stats(query_name: str, seconds: float,
                cache: SimilarityCache) -> TaskStats:
    snapshot = cache.stats()
    return TaskStats(
        query_name=query_name,
        seconds=seconds,
        pairs_scored=snapshot.pair_misses,
        cache_hits=snapshot.pair_hits,
        cache_misses=snapshot.pair_misses,
    )


@dataclass(frozen=True)
class PrepareBlockTask:
    """Extract one block and compute its similarity graphs."""

    pipeline: "ExtractionPipeline"
    block: NameCollection
    functions: tuple[SimilarityFunction, ...]
    #: scoring-backend name (``None``: the worker's ambient default).
    backend: str | None = None


def run_prepare_block(payload: PrepareBlockTask) -> tuple[str, Any, Any, TaskStats]:
    """Worker body for :meth:`ExperimentContext.prepare` fan-out."""
    started = time.perf_counter()
    cache = SimilarityCache()
    features = cache.features_for(payload.block,
                                  payload.pipeline.extract_block)
    graphs = batched_similarity_graphs(payload.block, features,
                                       list(payload.functions), cache=cache,
                                       backend=payload.backend)
    stats = _task_stats(payload.block.query_name,
                        time.perf_counter() - started, cache)
    return (payload.block.query_name, features, graphs, stats)


@dataclass(frozen=True)
class FitBlockTask:
    """Fit one block's decisions and combiner parameters."""

    config: "ResolverConfig"
    block: NameCollection
    graphs: dict[str, "WeightedPairGraph"] | None
    pipeline: "ExtractionPipeline | None"
    training_seed: int
    #: materialized features from an eager extraction stage (skips
    #: in-worker extraction when graphs are absent).
    features: dict | None = None
    #: candidate-pair mask from the blocking stage (``None``: dense).
    mask: frozenset | None = None


def run_fit_block(payload: FitBlockTask) -> tuple[str, Any, TaskStats]:
    """Worker body for parallel :meth:`EntityResolver.fit`.

    The fit-time layer cache is dropped before returning: the hand-off
    only pays off inside one process, and shipping the quadratic graphs
    back to the parent would dwarf the fitted state.
    """
    from repro.core.resolver import EntityResolver

    started = time.perf_counter()
    cache = SimilarityCache()
    resolver = EntityResolver(payload.config)
    graphs = _block_graphs(payload.block, payload.graphs, payload.pipeline,
                           resolver.functions, cache,
                           features=payload.features,
                           backend=payload.config.backend,
                           mask=payload.mask)
    fitted = resolver.fit_block(payload.block, graphs,
                                training_seed=payload.training_seed)
    fitted._layer_cache = None
    stats = _task_stats(payload.block.query_name,
                        time.perf_counter() - started, cache)
    return (payload.block.query_name, fitted, stats)


@dataclass(frozen=True)
class PredictBlockTask:
    """Predict (and optionally score) one block with shipped fitted state."""

    config: "ResolverConfig"
    fitted: "FittedBlock"
    block: NameCollection
    graphs: dict[str, "WeightedPairGraph"] | None
    pipeline: "ExtractionPipeline | None"
    evaluate: bool
    #: materialized features from an eager extraction stage (skips
    #: in-worker extraction when graphs are absent).
    features: dict | None = None
    #: candidate-pair mask from the blocking stage (``None``: dense).
    mask: frozenset | None = None


def run_predict_block(payload: PredictBlockTask) -> tuple[str, Any, TaskStats]:
    """Worker body for parallel predict/evaluate over a collection.

    Rebuilds a single-block :class:`~repro.core.model.ResolverModel` in
    the worker and serves the payload block through the shipped fitted
    state (``model_block`` handles serving under a different name).
    """
    from repro.core.model import ResolverModel

    started = time.perf_counter()
    model = ResolverModel(config=payload.config,
                          blocks={payload.fitted.query_name: payload.fitted},
                          pipeline=payload.pipeline)
    kwargs = {"graphs": payload.graphs,
              "model_block": payload.fitted.query_name,
              "mask": payload.mask}
    if payload.graphs is None and payload.features is not None:
        kwargs["features"] = payload.features
    if payload.evaluate:
        result = model.evaluate_block(payload.block, **kwargs)
    else:
        result = model.predict_block(payload.block, **kwargs)
    stats = _task_stats(payload.block.query_name,
                        time.perf_counter() - started,
                        model._similarity_cache)
    return (payload.block.query_name, result, stats)


#: Task kinds dispatchable through a shard (name -> worker body).
TASK_KINDS: dict[str, Callable[[Any], Any]] = {
    "prepare": run_prepare_block,
    "fit": run_fit_block,
    "predict": run_predict_block,
}


@dataclass(frozen=True)
class FeaturePlaneSlot:
    """Marks a payload's ``features`` as living in the shard's plane
    region; workers rebind it to a zero-copy ``PlaneFeatureMap``."""

    header: Any


@dataclass(frozen=True)
class GraphPlaneSlot:
    """Marks a payload's ``graphs`` as living in the shard's plane
    region; workers rebind it to a zero-copy ``GraphPlaneMap``."""

    header: Any


@dataclass(frozen=True)
class BlockShard:
    """One fan-out's full payload list, published as a single shard.

    Pickling the list in one buffer lets the pickle memo deduplicate
    everything the payloads share — the config, the extraction pipeline,
    the similarity functions — so shared state crosses the process
    boundary exactly once per run instead of once per block.  On the
    plane path the payloads here are *skeletons*: their feature dicts
    and graphs are plane slots, and the numeric bulk never enters the
    pickle stream at all.
    """

    kind: str
    payloads: tuple

    def _bind_planes(self, view, base: int) -> "BlockShard":
        """Rebind plane slots to views over the attached segment.

        Called by :func:`~repro.runtime.shards.load_shard` right after
        the residual unpickles; a shard without slots returns itself.
        """
        if not any(isinstance(getattr(payload, "features", None),
                              FeaturePlaneSlot)
                   or isinstance(getattr(payload, "graphs", None),
                                 GraphPlaneSlot)
                   for payload in self.payloads):
            return self
        from repro.runtime import planes
        buffer = planes.PlaneBuffer(view, base)
        bound = []
        for payload in self.payloads:
            patch = {}
            features = getattr(payload, "features", None)
            if isinstance(features, FeaturePlaneSlot):
                patch["features"] = planes.PlaneFeatureMap(
                    planes.FeaturePlanes(features.header, buffer))
            graphs = getattr(payload, "graphs", None)
            if isinstance(graphs, GraphPlaneSlot):
                patch["graphs"] = planes.GraphPlaneMap(graphs.header, buffer)
            bound.append(replace(payload, **patch) if patch else payload)
        return BlockShard(kind=self.kind, payloads=tuple(bound))


def _payload_plane_eligible(payload) -> tuple[bool, bool]:
    """(features eligible, graphs eligible) for one payload."""
    from repro.runtime import planes
    return (planes.features_eligible(getattr(payload, "features", None)),
            planes.graphs_eligible(getattr(payload, "graphs", None)))


def _pack_plane_payloads(payloads: Sequence[Any]):
    """Strip eligible numeric bulk into a plane writer.

    Returns ``(skeleton payloads, PlaneWriter | None, planed count,
    fallback count)`` — *fallback* counts eligible fields whose encoding
    failed and therefore stayed in the pickle stream (should be zero;
    the CI bench validation asserts it).
    """
    from repro.runtime import planes
    writer = planes.PlaneWriter()
    skeletons = []
    planed = fallback = 0
    for payload in payloads:
        features_ok, graphs_ok = _payload_plane_eligible(payload)
        patch = {}
        if features_ok:
            try:
                patch["features"] = FeaturePlaneSlot(planes.encode_features(
                    payload.features, writer))
            except planes.PlaneEncodeError:
                fallback += 1
        if graphs_ok:
            try:
                patch["graphs"] = GraphPlaneSlot(planes.encode_graphs(
                    payload.graphs, writer))
            except planes.PlaneEncodeError:
                fallback += 1
        if patch:
            planed += len(patch)
            skeletons.append(replace(payload, **patch))
        else:
            skeletons.append(payload)
    if not planed:
        return list(payloads), None, 0, fallback
    return skeletons, writer, planed, fallback


@dataclass(frozen=True)
class ShardedBlockTask:
    """A few-dozen-byte descriptor of one task inside a published shard."""

    handle: ShardHandle
    index: int


def run_sharded_block(task: ShardedBlockTask) -> Any:
    """Worker body: resolve the shard (cached per process) and run one task.

    The time spent resolving the shard — attach, residual unpickle,
    plane binding; near zero on cache hits — is recorded on the task's
    :class:`TaskStats` so the scheduling side can report it.
    """
    started = time.perf_counter()
    shard: BlockShard = load_shard(task.handle)
    attach_seconds = time.perf_counter() - started
    result = TASK_KINDS[shard.kind](shard.payloads[task.index])
    stats = result[-1] if isinstance(result, tuple) and result else None
    if isinstance(stats, TaskStats):
        stats.attach_unpickle_seconds = attach_seconds
    return result


def run_block_tasks(executor: "BlockExecutor", kind: str,
                    payloads: Sequence[Any],
                    weights: Sequence[int] | None = None,
                    stats: "RunStats | None" = None) -> list[Any]:
    """Run one fan-out of block tasks, results in payload order.

    The scheduling entry point stages should use.  Serial executors run
    the plain loop directly — no shard is published, so degraded and
    single-payload paths never touch shared memory.  Parallel executors
    get the shard treatment: each payload's numeric bulk is packed into
    raw plane arrays (see :func:`planes_enabled`), the skeleton payload
    list is published once (:class:`BlockShard`), tasks shrink to
    :class:`ShardedBlockTask` descriptors, and ``weights`` (per-payload
    cost, e.g. block page counts) drives largest-first chunk packing.
    Results are identical to ``executor.run(task, payloads)`` in value
    and order.

    ``stats`` (a :class:`~repro.runtime.stats.RunStats`) receives the
    publication accounting: shard bytes, pickled residual bytes, plane
    bytes, and plane/fallback payload counts.
    """
    task = TASK_KINDS[kind]
    if len(payloads) <= 1 or executor.is_serial:
        return executor.run(task, payloads, weights=weights)
    writer = None
    planed = fallback = 0
    shipped = tuple(payloads)
    if planes_enabled():
        skeletons, writer, planed, fallback = _pack_plane_payloads(payloads)
        shipped = tuple(skeletons)
    with ShardStore() as store:
        handle = store.publish(BlockShard(kind=kind, payloads=shipped),
                               label=kind,
                               planes=writer,
                               local_payload=BlockShard(
                                   kind=kind, payloads=tuple(payloads)))
        if stats is not None:
            stats.shard_bytes_published += handle.nbytes
            stats.pickled_bytes += handle.pickled_bytes
            stats.plane_bytes += handle.plane_bytes
            stats.plane_payloads += planed
            stats.plane_fallback_payloads += fallback
        sharded = [ShardedBlockTask(handle=handle, index=index)
                   for index in range(len(payloads))]
        return executor.run(run_sharded_block, sharded, weights=weights)
