"""JSON serialization of document collections.

Generated corpora are cheap to rebuild from a seed, but persisting them lets
experiments pin an exact dataset (e.g. to share a run between the test suite
and the benchmark harness, or to inspect pages by hand).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.corpus.documents import DocumentCollection, NameCollection, WebPage

_FORMAT_VERSION = 1


def save_collection(collection: DocumentCollection, path: str | Path) -> None:
    """Write ``collection`` to ``path`` as a single JSON document."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "name": collection.name,
        "metadata": collection.metadata,
        "collections": [
            {
                "query_name": block.query_name,
                "pages": [
                    {
                        "doc_id": page.doc_id,
                        "query_name": page.query_name,
                        "url": page.url,
                        "title": page.title,
                        "text": page.text,
                        "person_id": page.person_id,
                    }
                    for page in block.pages
                ],
            }
            for block in collection.collections
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)


def load_collection(path: str | Path) -> DocumentCollection:
    """Read a collection previously written by :func:`save_collection`.

    Raises:
        ValueError: if the file was written by an incompatible version.
    """
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported collection format version: {version!r}")
    collections = []
    for block_data in payload["collections"]:
        pages = [WebPage(**page_data) for page_data in block_data["pages"]]
        collections.append(NameCollection(
            query_name=block_data["query_name"], pages=pages))
    return DocumentCollection(
        name=payload["name"],
        collections=collections,
        metadata=payload.get("metadata", {}),
    )
