"""JSON serialization of document collections.

Generated corpora are cheap to rebuild from a seed, but persisting them lets
experiments pin an exact dataset (e.g. to share a run between the test suite
and the benchmark harness, or to inspect pages by hand).

Two on-disk formats:

* **Single JSON document** (:func:`save_collection` /
  :func:`load_collection`) — the whole collection in memory at once;
  right for paper-scale fixtures.
* **Block-per-line JSONL** (:func:`save_blocks_jsonl` /
  :func:`iter_blocks_jsonl`) — a header line followed by one name block
  per line.  Both writer and reader are streaming: peak memory is one
  block, so million-page corpora write and re-read without ever being
  materialized.  :func:`load_collection` dispatches on the ``.jsonl``
  suffix, so every CLI ``--in`` accepts either format.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.corpus.documents import DocumentCollection, NameCollection, WebPage

_FORMAT_VERSION = 1
_JSONL_KIND = "jsonl-blocks"


def save_collection(collection: DocumentCollection, path: str | Path) -> None:
    """Write ``collection`` to ``path`` as a single JSON document."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "name": collection.name,
        "metadata": collection.metadata,
        "collections": [_block_to_payload(block)
                        for block in collection.collections],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)


def load_collection(path: str | Path) -> DocumentCollection:
    """Read a collection written by either saver.

    ``.jsonl`` paths load (materialized) through the streaming reader;
    everything else is parsed as a single JSON document.

    Raises:
        ValueError: if the file was written by an incompatible version.
    """
    path = Path(path)
    if path.suffix == ".jsonl":
        header = read_jsonl_header(path)
        return DocumentCollection(
            name=header.get("name", "synthetic"),
            collections=list(iter_blocks_jsonl(path)),
            metadata=header.get("metadata", {}),
        )
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported collection format version: {version!r}")
    collections = [_block_from_payload(block_data)
                   for block_data in payload["collections"]]
    return DocumentCollection(
        name=payload["name"],
        collections=collections,
        metadata=payload.get("metadata", {}),
    )


def save_blocks_jsonl(blocks: Iterable[NameCollection], path: str | Path,
                      name: str = "synthetic",
                      metadata: dict | None = None) -> int:
    """Stream ``blocks`` to ``path`` as block-per-line JSONL.

    Consumes the iterable lazily — pair it with
    ``CorpusGenerator.iter_blocks`` and a million-page corpus reaches
    disk in O(one block) memory.  Returns the number of pages written.
    """
    pages_written = 0
    with open(path, "w", encoding="utf-8") as handle:
        header = {
            "format_version": _FORMAT_VERSION,
            "kind": _JSONL_KIND,
            "name": name,
            "metadata": metadata or {},
        }
        handle.write(json.dumps(header) + "\n")
        for block in blocks:
            handle.write(json.dumps(_block_to_payload(block)) + "\n")
            pages_written += len(block.pages)
    return pages_written


def read_jsonl_header(path: str | Path) -> dict:
    """Parse and validate the header line of a JSONL collection file."""
    with open(path, encoding="utf-8") as handle:
        first = handle.readline()
    try:
        header = json.loads(first) if first.strip() else {}
    except json.JSONDecodeError:
        header = {}
    if not isinstance(header, dict) or header.get("kind") != _JSONL_KIND:
        raise ValueError(f"{path} is not a block-per-line JSONL collection")
    version = header.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported collection format version: {version!r}")
    return header


def iter_blocks_jsonl(path: str | Path) -> Iterator[NameCollection]:
    """Yield the blocks of a JSONL collection lazily, in file order."""
    with open(path, encoding="utf-8") as handle:
        first = handle.readline()
        header = json.loads(first) if first.strip() else {}
        if not isinstance(header, dict) or header.get("kind") != _JSONL_KIND:
            raise ValueError(f"{path} is not a block-per-line JSONL collection")
        if header.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported collection format version: "
                f"{header.get('format_version')!r}")
        for line in handle:
            if line.strip():
                yield _block_from_payload(json.loads(line))


def _block_to_payload(block: NameCollection) -> dict:
    return {
        "query_name": block.query_name,
        "pages": [
            {
                "doc_id": page.doc_id,
                "query_name": page.query_name,
                "url": page.url,
                "title": page.title,
                "text": page.text,
                "person_id": page.person_id,
            }
            for page in block.pages
        ],
    }


def _block_from_payload(block_data: dict) -> NameCollection:
    pages = [WebPage(**page_data) for page_data in block_data["pages"]]
    return NameCollection(query_name=block_data["query_name"], pages=pages)
