"""Synthetic web-corpus generator.

Replaces the paper's crawled WWW'05/WePS collections (see DESIGN.md §2).
The generator draws latent :class:`~repro.corpus.profiles.PersonProfile`
objects per ambiguous name, then synthesizes web pages from them with
controlled noise:

* **partial information** — pages omit organizations / concepts / associates
  with per-name probabilities, the paper's "missing or incomplete
  information" failure mode;
* **extraction noise** — mentioned entities are sometimes replaced by random
  ones, modeling noisy information-extraction input;
* **heterogeneity** — every name draws its own :class:`NameTraits`, so the
  informative features differ per name and no single similarity function
  wins everywhere (the paper's Table III observation).

All randomness flows from explicit seeds through local ``random.Random``
instances; the same (config, names, seed) triple always yields the identical
corpus.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, replace

from repro.corpus.documents import DocumentCollection, NameCollection, WebPage
from repro.corpus.profiles import NamePools, PersonProfile, sample_profile
from repro.corpus.vocabulary import Vocabulary, build_vocabulary


@dataclass(frozen=True)
class NameTraits:
    """Per-name feature-informativeness profile.

    Each ambiguous name draws one of these; the fields control how reliable
    each page feature is for that name.  The spread across names is what
    makes different similarity functions win for different names.
    """

    p_home_domain: float = 0.6
    p_missing_orgs: float = 0.3
    p_missing_concepts: float = 0.2
    concept_noise: float = 0.15
    org_noise: float = 0.1
    associate_noise: float = 0.15
    name_confusion: float = 0.1
    shared_word_rate: float = 0.25
    noise_word_rate: float = 0.2
    boilerplate_rate: float = 0.15
    offtopic_rate: float = 0.05
    min_tokens: int = 90
    max_tokens: int = 170

    @staticmethod
    def sample(rng: random.Random) -> "NameTraits":
        """Draw a heterogeneous traits profile for one name."""
        return NameTraits(
            p_home_domain=rng.uniform(0.3, 0.95),
            p_missing_orgs=rng.uniform(0.1, 0.6),
            p_missing_concepts=rng.uniform(0.05, 0.4),
            concept_noise=rng.uniform(0.0, 0.35),
            org_noise=rng.uniform(0.0, 0.3),
            associate_noise=rng.uniform(0.0, 0.3),
            name_confusion=rng.uniform(0.05, 0.3),
            shared_word_rate=rng.uniform(0.05, 0.22),
            noise_word_rate=rng.uniform(0.05, 0.2),
            boilerplate_rate=rng.uniform(0.02, 0.16),
            offtopic_rate=rng.uniform(0.0, 0.15),
        )


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs for corpus synthesis.

    Attributes:
        pages_per_name: number of retrieved pages per ambiguous name
            (~100 for WWW'05, ~150 for WePS-2).
        min_clusters / max_clusters: range the per-name true cluster count
            is drawn from when not fixed explicitly (paper: 2–61).
        cluster_size_alpha: Zipf exponent of the cluster-size distribution;
            larger means one dominant person plus a long tail.
        n_concepts_per_person: latent concept count per profile.
        n_topic_words: latent topical word count per profile.
        word_pool_factor / concept_pool_factor: per-name pool sizes as a
            multiple of one person's consumption; smaller factors mean
            namesakes overlap more and the corpus gets harder.
        vocabulary_seed: seed for :func:`build_vocabulary`; independent of
            the corpus seed so re-sampling pages keeps the lexicon fixed.
        fixed_traits: if set, every name uses these traits instead of
            sampling (useful for tests and ablations).
    """

    pages_per_name: int = 100
    min_clusters: int = 2
    max_clusters: int = 40
    cluster_size_alpha: float = 1.7
    n_concepts_per_person: int = 8
    n_topic_words: int = 60
    word_pool_factor: float = 4.5
    concept_pool_factor: float = 3.5
    vocabulary_seed: int = 7
    fixed_traits: NameTraits | None = None


def _zipf_cluster_sizes(rng: random.Random, n_pages: int, n_clusters: int,
                        alpha: float) -> list[int]:
    """Allocate ``n_pages`` over ``n_clusters`` with Zipf-ish weights.

    Every cluster receives at least one page; remaining pages are assigned
    proportionally to ``1 / rank**alpha`` with randomized rank order.
    """
    if n_clusters > n_pages:
        raise ValueError(f"cannot split {n_pages} pages into {n_clusters} clusters")
    weights = [1.0 / (rank ** alpha) for rank in range(1, n_clusters + 1)]
    rng.shuffle(weights)
    total = sum(weights)
    sizes = [1] * n_clusters
    remaining = n_pages - n_clusters
    # Largest-remainder apportionment of the leftover pages.
    quotas = [remaining * w / total for w in weights]
    floors = [int(q) for q in quotas]
    sizes = [s + f for s, f in zip(sizes, floors)]
    leftover = remaining - sum(floors)
    order = sorted(range(n_clusters), key=lambda i: quotas[i] - floors[i], reverse=True)
    for i in order[:leftover]:
        sizes[i] += 1
    return sizes


class CorpusGenerator:
    """Synthesizes :class:`DocumentCollection` datasets from a config."""

    def __init__(self, config: GeneratorConfig | None = None,
                 vocabulary: Vocabulary | None = None):
        self.config = config or GeneratorConfig()
        self.vocabulary = vocabulary or build_vocabulary(self.config.vocabulary_seed)
        self._boilerplate_cache: dict[str, list[str]] = {}

    def generate(
        self,
        names: list[str],
        seed: int,
        dataset_name: str = "synthetic",
        cluster_counts: dict[str, int] | None = None,
    ) -> DocumentCollection:
        """Generate a full dataset.

        Args:
            names: ambiguous query names (each becomes one block).
            seed: corpus seed; fully determines the output.
            dataset_name: label stored on the collection.
            cluster_counts: optional fixed true-cluster count per name;
                names absent from the mapping draw from the config range.
        """
        master = random.Random(seed)
        collections = []
        for query_name in names:
            name_seed = master.randrange(2**31)
            n_clusters = (cluster_counts or {}).get(query_name)
            collections.append(
                self._generate_name(query_name, name_seed, n_clusters))
        collection = DocumentCollection(name=dataset_name, collections=collections)
        collection.metadata = {
            "seed": seed,
            "pages_per_name": self.config.pages_per_name,
            "vocabulary_seed": self.config.vocabulary_seed,
        }
        return collection

    def _generate_name(self, query_name: str, seed: int,
                       n_clusters: int | None) -> NameCollection:
        """Generate one name's block of pages."""
        rng = random.Random(seed)
        config = self.config
        traits = config.fixed_traits or NameTraits.sample(rng)

        if n_clusters is None:
            upper = min(config.max_clusters, config.pages_per_name)
            n_clusters = rng.randint(config.min_clusters, upper)
        # Per-name skew jitter: some names are dominated by one famous
        # bearer, others are spread more evenly.
        alpha = config.cluster_size_alpha * rng.uniform(0.75, 1.4)
        sizes = _zipf_cluster_sizes(
            rng, config.pages_per_name, n_clusters, alpha)

        key = query_name.split()[-1].lower()
        pools = NamePools.sample(
            rng, self.vocabulary, n_clusters,
            n_topic_words=config.n_topic_words,
            n_concepts=config.n_concepts_per_person,
            word_pool_factor=config.word_pool_factor,
            concept_pool_factor=config.concept_pool_factor,
        )
        profiles: list[PersonProfile] = []
        for index in range(n_clusters):
            profiles.append(sample_profile(
                rng, pools,
                person_id=f"{key}#{index:02d}",
                query_name=query_name,
                n_concepts=config.n_concepts_per_person,
                n_topic_words=config.n_topic_words,
            ))

        assignments = [profile for profile, size in zip(profiles, sizes)
                       for _ in range(size)]
        rng.shuffle(assignments)

        pages = []
        for index, profile in enumerate(assignments):
            doc_id = f"{key}/{index:03d}"
            pages.append(self._generate_page(rng, doc_id, profile, profiles, traits))
        return NameCollection(query_name=query_name, pages=pages)

    def _generate_page(self, rng: random.Random, doc_id: str,
                       profile: PersonProfile, peers: list[PersonProfile],
                       traits: NameTraits) -> WebPage:
        """Synthesize one page about ``profile``."""
        offtopic = rng.random() < traits.offtopic_rate
        mentions: list[str] = []

        mentions.extend(self._name_mentions(rng, profile, peers, traits, offtopic))
        mentions.extend(self._org_mentions(rng, profile, traits, offtopic))
        mentions.extend(self._concept_mentions(rng, profile, traits, offtopic))
        mentions.extend(self._associate_mentions(rng, profile, traits, offtopic))
        for location in profile.locations:
            if rng.random() < (0.2 if offtopic else 0.5):
                mentions.append(location)

        url = self._page_url(rng, profile, traits)
        domain = url.split("://", 1)[-1].split("/", 1)[0]
        words = self._body_words(rng, profile, traits, offtopic, domain)
        text = self._compose_text(rng, mentions, words)

        title_words = rng.sample(profile.topic_words, 2)
        title = f"{profile.full_name} {' '.join(title_words)}"
        return WebPage(
            doc_id=doc_id,
            query_name=profile.query_name,
            url=url,
            title=title,
            text=text,
            person_id=profile.person_id,
        )

    def _name_mentions(self, rng: random.Random, profile: PersonProfile,
                       peers: list[PersonProfile], traits: NameTraits,
                       offtopic: bool) -> list[str]:
        """The person's own name variants plus occasional dominant others.

        All namesakes share the query full name, so own-name mentions are
        identical across clusters.  With probability ``name_confusion`` the
        page is dominated by an *associate's* name instead (a profile page
        of a colleague that merely cites the query person) — the failure
        mode that makes F3 ("most frequent name") imperfect.
        """
        variants = profile.name_variants()
        n_own = rng.randint(1, 2) if offtopic else rng.randint(2, 5)
        mentions = [variants[0]] * max(1, n_own - 1)
        mentions.extend(rng.choice(variants) for _ in range(n_own - len(mentions) + 1))
        if profile.associates and rng.random() < traits.name_confusion:
            dominant = rng.choice(profile.associates)
            mentions.extend([dominant] * rng.randint(2, 4))
        if offtopic:
            # Off-topic pages are usually *about someone else* who merely
            # mentions the query person in passing.
            stranger = self.vocabulary.full_name(rng)
            mentions.extend([stranger] * rng.randint(2, 4))
        return mentions

    def _org_mentions(self, rng: random.Random, profile: PersonProfile,
                      traits: NameTraits, offtopic: bool) -> list[str]:
        if rng.random() < traits.p_missing_orgs or offtopic:
            return []
        mentions = []
        for org in rng.sample(profile.organizations,
                              rng.randint(1, len(profile.organizations))):
            if rng.random() < traits.org_noise:
                org = rng.choice(self.vocabulary.organizations)
            mentions.extend([org] * rng.randint(1, 2))
        return mentions

    def _concept_mentions(self, rng: random.Random, profile: PersonProfile,
                          traits: NameTraits, offtopic: bool) -> list[str]:
        if rng.random() < traits.p_missing_concepts:
            return []
        concepts = list(profile.concepts)
        weights = list(profile.concepts.values())
        n_mention = rng.randint(1, 2) if offtopic else rng.randint(2, 6)
        mentions = []
        for _ in range(n_mention):
            concept = rng.choices(concepts, weights=weights, k=1)[0]
            if rng.random() < traits.concept_noise:
                concept = rng.choice(self.vocabulary.concepts)
            mentions.extend([concept] * rng.randint(1, 3))
        return mentions

    def _associate_mentions(self, rng: random.Random, profile: PersonProfile,
                            traits: NameTraits, offtopic: bool) -> list[str]:
        n_assoc = 0 if offtopic else rng.randint(0, 3)
        mentions = []
        for name in rng.sample(profile.associates,
                               min(n_assoc, len(profile.associates))):
            if rng.random() < traits.associate_noise:
                name = self.vocabulary.full_name(rng)
            mentions.append(name)
        return mentions

    def _body_words(self, rng: random.Random, profile: PersonProfile,
                    traits: NameTraits, offtopic: bool,
                    domain: str) -> list[str]:
        """Draw the page's plain content words from the mixture model.

        The mixture has five layers: site boilerplate (same for every page
        of a domain — the template text that confounds TF-IDF), random
        noise words, general filler, name-shared words (topical overlap of
        namesakes) and the person's own topic words.
        """
        n_tokens = rng.randint(traits.min_tokens, traits.max_tokens)
        shared_rate = traits.shared_word_rate
        noise_rate = traits.noise_word_rate
        boilerplate_rate = traits.boilerplate_rate
        if offtopic:
            noise_rate = min(0.9, noise_rate + 0.4)
        boilerplate = self._domain_boilerplate(domain)
        words = []
        for _ in range(n_tokens):
            roll = rng.random()
            if roll < boilerplate_rate:
                words.append(rng.choice(boilerplate))
            elif roll < boilerplate_rate + noise_rate:
                words.append(rng.choice(self.vocabulary.content_words))
            elif roll < boilerplate_rate + noise_rate + 0.12:
                words.append(rng.choice(self.vocabulary.general_words))
            elif roll < boilerplate_rate + noise_rate + 0.12 + shared_rate:
                words.append(rng.choice(profile.shared_words))
            else:
                words.append(rng.choice(profile.topic_words))
        return words

    def _domain_boilerplate(self, domain: str) -> list[str]:
        """The site-template words of a domain (stable across pages/seeds)."""
        cached = self._boilerplate_cache.get(domain)
        if cached is None:
            seed = zlib.crc32(domain.encode("utf-8")) ^ self.vocabulary.seed
            domain_rng = random.Random(seed)
            cached = domain_rng.sample(self.vocabulary.content_words, 15)
            self._boilerplate_cache[domain] = cached
        return cached

    def _compose_text(self, rng: random.Random, mentions: list[str],
                      words: list[str]) -> str:
        """Interleave entity mentions into the word stream as sentences."""
        tokens = list(words)
        for mention in mentions:
            position = rng.randint(0, len(tokens))
            tokens.insert(position, mention)
        sentences = []
        cursor = 0
        while cursor < len(tokens):
            length = rng.randint(8, 14)
            sentences.append(" ".join(tokens[cursor:cursor + length]) + ".")
            cursor += length
        return " ".join(sentences)

    def _page_url(self, rng: random.Random, profile: PersonProfile,
                  traits: NameTraits) -> str:
        if rng.random() < traits.p_home_domain:
            domain = rng.choice(profile.home_domains)
        else:
            domain = rng.choice(self.vocabulary.domains)
        path_words = rng.sample(self.vocabulary.content_words, 2)
        return f"http://{domain}/{path_words[0]}/{path_words[1]}{rng.randint(0, 999)}.html"


def with_traits(config: GeneratorConfig, traits: NameTraits) -> GeneratorConfig:
    """Return a copy of ``config`` with :attr:`fixed_traits` set."""
    return replace(config, fixed_traits=traits)
