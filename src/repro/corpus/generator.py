"""Synthetic web-corpus generator.

Replaces the paper's crawled WWW'05/WePS collections (see DESIGN.md §2).
The generator draws latent :class:`~repro.corpus.profiles.PersonProfile`
objects per ambiguous name, then synthesizes web pages from them with
controlled noise:

* **partial information** — pages omit organizations / concepts / associates
  with per-name probabilities, the paper's "missing or incomplete
  information" failure mode;
* **extraction noise** — mentioned entities are sometimes replaced by random
  ones, modeling noisy information-extraction input;
* **heterogeneity** — every name draws its own :class:`NameTraits`, so the
  informative features differ per name and no single similarity function
  wins everywhere (the paper's Table III observation).

All randomness flows from explicit seeds through local ``random.Random``
instances; the same (config, names, seed) triple always yields the identical
corpus.

Scale: the generator is million-page-capable.  Blocks can be produced
lazily (:meth:`CorpusGenerator.iter_blocks`) in O(one block) memory, and
under ``seeding="independent"`` every name's seed is a pure hash of
``(corpus seed, query name)`` — any block is regenerable in O(1) without
touching the rest of the corpus (:meth:`CorpusGenerator.generate_block`),
so generation itself parallelizes trivially.  Skew knobs
(``cluster_count_skew``, ``page_length_skew``, ``vocabulary_zipf``) and
:func:`synthesize_query_names`'s collision rate control how hostile the
corpus is at scale; all default to the legacy behavior, byte for byte.
"""

from __future__ import annotations

import bisect
import hashlib
import itertools
import random
import zlib
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, replace

from repro.corpus.documents import DocumentCollection, NameCollection, WebPage
from repro.corpus.profiles import NamePools, PersonProfile, sample_profile
from repro.corpus.vocabulary import (
    Vocabulary,
    build_vocabulary,
    vocabulary_sizes,
)

#: Valid :attr:`GeneratorConfig.seeding` schemes.
SEEDING_SCHEMES = ("sequential", "independent")

#: Valid :attr:`GeneratorConfig.doc_id_scheme` values.
DOC_ID_SCHEMES = ("surname", "full")


def independent_block_seed(seed: int, query_name: str) -> int:
    """The per-name seed of the ``"independent"`` seeding scheme.

    A pure, process-stable hash of ``(corpus seed, query name)`` — no
    sequential master RNG, so any block's seed is computable in O(1)
    without deriving the seeds of the names before it.  blake2b rather
    than ``hash()``: Python's string hashing is per-process randomized.
    """
    digest = hashlib.blake2b(f"{seed}\x1f{query_name}".encode("utf-8"),
                             digest_size=8).digest()
    return int.from_bytes(digest, "big") % (2 ** 31)


class ZipfSampler:
    """Zipfian (rank-weighted) sampling over a fixed word list.

    Item at rank ``r`` (1-based list position) is drawn with probability
    proportional to ``1 / r**alpha``.  Cumulative weights are precomputed
    once, so each draw costs one ``rng.random()`` plus a binary search —
    O(log V) against the uniform path's O(1), but independent of corpus
    size.  Deterministic: the cumulative sums are a fixed left-to-right
    fold over the list order.
    """

    def __init__(self, items: Sequence[str], alpha: float):
        if alpha <= 0.0:
            raise ValueError(f"Zipf exponent must be positive, got {alpha}")
        self.items = list(items)
        self.alpha = alpha
        total = 0.0
        cumulative = []
        for rank in range(1, len(self.items) + 1):
            total += 1.0 / (rank ** alpha)
            cumulative.append(total)
        self._cumulative = cumulative
        self._total = total

    def choice(self, rng: random.Random) -> str:
        """Draw one item (consumes exactly one ``rng.random()``)."""
        position = bisect.bisect_left(self._cumulative,
                                      rng.random() * self._total)
        return self.items[min(position, len(self.items) - 1)]


def synthesize_query_names(vocabulary: Vocabulary, n_names: int, seed: int,
                           collision_rate: float = 0.0) -> list[str]:
    """Draw ``n_names`` distinct ambiguous query names from a vocabulary.

    ``collision_rate`` is the probability each new name *reuses a surname
    an earlier query name already uses* — colliding names share blocking
    tokens (and, in web text, confuse token/neighborhood blockers and
    name-based similarity functions) while remaining distinct query
    blocks.  0.0 draws surnames independently; 1.0 packs every name onto
    as few surnames as possible.  Deterministic in ``(vocabulary, seed)``.

    Raises:
        ValueError: when the vocabulary's name pools cannot yield
            ``n_names`` distinct full names (enlarge them via
            :func:`~repro.corpus.vocabulary.build_vocabulary`'s
            ``n_first_names`` / ``n_last_names``).
    """
    if not 0.0 <= collision_rate <= 1.0:
        raise ValueError(f"collision_rate must be in [0, 1], got {collision_rate}")
    capacity = len(vocabulary.first_names) * len(vocabulary.last_names)
    if n_names > capacity:
        raise ValueError(
            f"cannot synthesize {n_names} distinct names from a "
            f"{len(vocabulary.first_names)}x{len(vocabulary.last_names)} name "
            f"vocabulary; enlarge n_first_names/n_last_names")
    rng = random.Random(seed)
    names: list[str] = []
    used: set[str] = set()
    used_surnames: list[str] = []
    surname_seen: set[str] = set()
    attempts = 0
    max_attempts = 50 * n_names + 1000
    while len(names) < n_names:
        attempts += 1
        if attempts > max_attempts:
            raise ValueError(
                f"exhausted name synthesis after {attempts} attempts "
                f"({len(names)}/{n_names} names); enlarge the vocabulary's "
                f"name pools or lower collision_rate")
        if used_surnames and rng.random() < collision_rate:
            surname = rng.choice(used_surnames)
        else:
            surname = rng.choice(vocabulary.last_names)
        full = f"{rng.choice(vocabulary.first_names)} {surname}"
        if full in used:
            continue
        used.add(full)
        names.append(full)
        if surname not in surname_seen:
            surname_seen.add(surname)
            used_surnames.append(surname)
    return names


@dataclass(frozen=True)
class NameTraits:
    """Per-name feature-informativeness profile.

    Each ambiguous name draws one of these; the fields control how reliable
    each page feature is for that name.  The spread across names is what
    makes different similarity functions win for different names.
    """

    p_home_domain: float = 0.6
    p_missing_orgs: float = 0.3
    p_missing_concepts: float = 0.2
    concept_noise: float = 0.15
    org_noise: float = 0.1
    associate_noise: float = 0.15
    name_confusion: float = 0.1
    shared_word_rate: float = 0.25
    noise_word_rate: float = 0.2
    boilerplate_rate: float = 0.15
    offtopic_rate: float = 0.05
    min_tokens: int = 90
    max_tokens: int = 170

    @staticmethod
    def sample(rng: random.Random) -> "NameTraits":
        """Draw a heterogeneous traits profile for one name."""
        return NameTraits(
            p_home_domain=rng.uniform(0.3, 0.95),
            p_missing_orgs=rng.uniform(0.1, 0.6),
            p_missing_concepts=rng.uniform(0.05, 0.4),
            concept_noise=rng.uniform(0.0, 0.35),
            org_noise=rng.uniform(0.0, 0.3),
            associate_noise=rng.uniform(0.0, 0.3),
            name_confusion=rng.uniform(0.05, 0.3),
            shared_word_rate=rng.uniform(0.05, 0.22),
            noise_word_rate=rng.uniform(0.05, 0.2),
            boilerplate_rate=rng.uniform(0.02, 0.16),
            offtopic_rate=rng.uniform(0.0, 0.15),
        )


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs for corpus synthesis.

    Attributes:
        pages_per_name: number of retrieved pages per ambiguous name
            (~100 for WWW'05, ~150 for WePS-2).
        min_clusters / max_clusters: range the per-name true cluster count
            is drawn from when not fixed explicitly (paper: 2–61).
        cluster_size_alpha: Zipf exponent of the cluster-size distribution;
            larger means one dominant person plus a long tail.
        n_concepts_per_person: latent concept count per profile.
        n_topic_words: latent topical word count per profile.
        word_pool_factor / concept_pool_factor: per-name pool sizes as a
            multiple of one person's consumption; smaller factors mean
            namesakes overlap more and the corpus gets harder.
        vocabulary_seed: seed for :func:`build_vocabulary`; independent of
            the corpus seed so re-sampling pages keeps the lexicon fixed.
        fixed_traits: if set, every name uses these traits instead of
            sampling (useful for tests and ablations).
        seeding: how per-name seeds derive from the corpus seed.
            ``"sequential"`` (default, legacy) draws them from a master
            RNG in name order — block *i*'s content depends on its
            position in the name list.  ``"independent"`` hashes
            ``(seed, query_name)`` (:func:`independent_block_seed`) — any
            block regenerates in O(1) without the rest of the corpus,
            which is what makes streaming and parallel generation cheap.
        cluster_count_skew: entities-per-name distribution.  0.0 (default)
            draws the true cluster count uniformly from
            ``[min_clusters, max_clusters]``; > 0 weights count ``k`` by
            ``1 / k**skew`` — most names have few bearers, a heavy tail
            has many, which matches crawled name ambiguity far better at
            scale.
        page_length_skew: 0.0 (default) draws page lengths uniformly from
            the traits' token range; > 0 multiplies each draw by a capped
            Pareto(``skew``) tail — a few pages are much longer, as in
            real crawls.  Smaller values mean heavier tails.
        vocabulary_zipf: 0.0 (default) draws filler/noise words uniformly
            from the lexicon; > 0 draws them Zipf(``vocabulary_zipf``)
            rank-weighted, so token frequencies follow the power law that
            real TF-IDF weighting is calibrated against.
        doc_id_scheme: ``"surname"`` (default, legacy) keys doc/person ids
            by the lowercased surname — fine for curated name lists, but
            namesake *query names* ("Alice Smith", "Bob Smith") would
            collide.  ``"full"`` keys by the full slugged name and is
            required for collision-rate corpora.
    """

    pages_per_name: int = 100
    min_clusters: int = 2
    max_clusters: int = 40
    cluster_size_alpha: float = 1.7
    n_concepts_per_person: int = 8
    n_topic_words: int = 60
    word_pool_factor: float = 4.5
    concept_pool_factor: float = 3.5
    vocabulary_seed: int = 7
    fixed_traits: NameTraits | None = None
    seeding: str = "sequential"
    cluster_count_skew: float = 0.0
    page_length_skew: float = 0.0
    vocabulary_zipf: float = 0.0
    doc_id_scheme: str = "surname"

    def __post_init__(self) -> None:
        if self.seeding not in SEEDING_SCHEMES:
            raise ValueError(
                f"unknown seeding scheme {self.seeding!r}; "
                f"expected one of {SEEDING_SCHEMES}")
        if self.doc_id_scheme not in DOC_ID_SCHEMES:
            raise ValueError(
                f"unknown doc_id scheme {self.doc_id_scheme!r}; "
                f"expected one of {DOC_ID_SCHEMES}")
        for knob in ("cluster_count_skew", "page_length_skew",
                     "vocabulary_zipf"):
            if getattr(self, knob) < 0.0:
                raise ValueError(f"{knob} must be >= 0, "
                                 f"got {getattr(self, knob)}")


def _zipf_cluster_sizes(rng: random.Random, n_pages: int, n_clusters: int,
                        alpha: float) -> list[int]:
    """Allocate ``n_pages`` over ``n_clusters`` with Zipf-ish weights.

    Every cluster receives at least one page; remaining pages are assigned
    proportionally to ``1 / rank**alpha`` with randomized rank order.
    """
    if n_clusters > n_pages:
        raise ValueError(f"cannot split {n_pages} pages into {n_clusters} clusters")
    weights = [1.0 / (rank ** alpha) for rank in range(1, n_clusters + 1)]
    rng.shuffle(weights)
    total = sum(weights)
    sizes = [1] * n_clusters
    remaining = n_pages - n_clusters
    # Largest-remainder apportionment of the leftover pages.
    quotas = [remaining * w / total for w in weights]
    floors = [int(q) for q in quotas]
    sizes = [s + f for s, f in zip(sizes, floors)]
    leftover = remaining - sum(floors)
    order = sorted(range(n_clusters), key=lambda i: quotas[i] - floors[i], reverse=True)
    for i in order[:leftover]:
        sizes[i] += 1
    return sizes


class CorpusGenerator:
    """Synthesizes :class:`DocumentCollection` datasets from a config."""

    def __init__(self, config: GeneratorConfig | None = None,
                 vocabulary: Vocabulary | None = None):
        self.config = config or GeneratorConfig()
        self.vocabulary = vocabulary or build_vocabulary(self.config.vocabulary_seed)
        self._boilerplate_cache: dict[str, list[str]] = {}
        if self.config.vocabulary_zipf > 0.0:
            alpha = self.config.vocabulary_zipf
            self._content_sampler = ZipfSampler(self.vocabulary.content_words,
                                                alpha)
            self._general_sampler = ZipfSampler(self.vocabulary.general_words,
                                                alpha)
        else:
            self._content_sampler = None
            self._general_sampler = None

    def generate(
        self,
        names: list[str],
        seed: int,
        dataset_name: str = "synthetic",
        cluster_counts: dict[str, int] | None = None,
    ) -> DocumentCollection:
        """Generate a full dataset.

        Args:
            names: ambiguous query names (each becomes one block).
            seed: corpus seed; fully determines the output.
            dataset_name: label stored on the collection.
            cluster_counts: optional fixed true-cluster count per name;
                names absent from the mapping draw from the config range.
        """
        collections = list(self.iter_blocks(names, seed, cluster_counts))
        collection = DocumentCollection(name=dataset_name, collections=collections)
        collection.metadata = self.corpus_metadata(seed)
        return collection

    def corpus_metadata(self, seed: int) -> dict:
        """The metadata :meth:`generate` attaches to a collection.

        Exposed so streaming writers (block-per-line JSONL, see
        ``repro.corpus.loaders``) can persist the same provenance without
        materializing the corpus.  ``vocabulary_sizes`` is recorded only
        when the lexicon was built at non-default sizes, so legacy corpora
        keep byte-identical metadata.
        """
        metadata = {
            "seed": seed,
            "pages_per_name": self.config.pages_per_name,
            "vocabulary_seed": self.config.vocabulary_seed,
        }
        sizes = vocabulary_sizes(self.vocabulary)
        if sizes:
            metadata["vocabulary_sizes"] = sizes
        if self.config.seeding != "sequential":
            metadata["seeding"] = self.config.seeding
        return metadata

    def block_seeds(self, names: Sequence[str], seed: int) -> list[int]:
        """The per-name seeds ``generate(names, seed)`` would use.

        Under ``"sequential"`` seeding these come from a master RNG in
        name order (legacy behavior); under ``"independent"`` each is a
        pure hash of ``(seed, query_name)``.
        """
        if self.config.seeding == "independent":
            return [independent_block_seed(seed, name) for name in names]
        master = random.Random(seed)
        return [master.randrange(2**31) for _ in names]

    def iter_blocks(
        self,
        names: Sequence[str],
        seed: int,
        cluster_counts: dict[str, int] | None = None,
    ) -> Iterator[NameCollection]:
        """Yield name blocks lazily, in name order.

        Materializing the iterator equals :meth:`generate` block for
        block under either seeding scheme, but only one block is alive at
        a time — peak memory is O(pages_per_name), independent of
        ``len(names)``.  (The up-front seed list is O(len(names)) ints.)
        """
        counts = cluster_counts or {}
        for query_name, name_seed in zip(names, self.block_seeds(names, seed)):
            yield self._generate_name(query_name, name_seed,
                                      counts.get(query_name))

    def generate_block(self, query_name: str, seed: int,
                       n_clusters: int | None = None) -> NameCollection:
        """Regenerate one name's block in O(1), without its corpus.

        Requires ``seeding="independent"`` — only there is a block's seed
        a pure function of ``(seed, query_name)``.  The result is
        byte-identical to the same name's block in
        ``generate(names, seed)`` for any name list containing it.
        """
        if self.config.seeding != "independent":
            raise ValueError(
                "generate_block requires seeding='independent'; under "
                "'sequential' seeding a block's seed depends on its "
                "position in the name list — use iter_blocks instead")
        return self._generate_name(
            query_name, independent_block_seed(seed, query_name), n_clusters)

    def _generate_name(self, query_name: str, seed: int,
                       n_clusters: int | None) -> NameCollection:
        """Generate one name's block of pages."""
        rng = random.Random(seed)
        config = self.config
        traits = config.fixed_traits or NameTraits.sample(rng)

        if n_clusters is None:
            upper = min(config.max_clusters, config.pages_per_name)
            n_clusters = self._draw_cluster_count(rng, config.min_clusters,
                                                  upper)
        # Per-name skew jitter: some names are dominated by one famous
        # bearer, others are spread more evenly.
        alpha = config.cluster_size_alpha * rng.uniform(0.75, 1.4)
        sizes = _zipf_cluster_sizes(
            rng, config.pages_per_name, n_clusters, alpha)

        if config.doc_id_scheme == "full":
            key = "-".join(query_name.lower().split())
        else:
            key = query_name.split()[-1].lower()
        pools = NamePools.sample(
            rng, self.vocabulary, n_clusters,
            n_topic_words=config.n_topic_words,
            n_concepts=config.n_concepts_per_person,
            word_pool_factor=config.word_pool_factor,
            concept_pool_factor=config.concept_pool_factor,
        )
        profiles: list[PersonProfile] = []
        for index in range(n_clusters):
            profiles.append(sample_profile(
                rng, pools,
                person_id=f"{key}#{index:02d}",
                query_name=query_name,
                n_concepts=config.n_concepts_per_person,
                n_topic_words=config.n_topic_words,
            ))

        assignments = [profile for profile, size in zip(profiles, sizes)
                       for _ in range(size)]
        rng.shuffle(assignments)

        pages = []
        for index, profile in enumerate(assignments):
            doc_id = f"{key}/{index:03d}"
            pages.append(self._generate_page(rng, doc_id, profile, profiles, traits))
        return NameCollection(query_name=query_name, pages=pages)

    def _generate_page(self, rng: random.Random, doc_id: str,
                       profile: PersonProfile, peers: list[PersonProfile],
                       traits: NameTraits) -> WebPage:
        """Synthesize one page about ``profile``."""
        offtopic = rng.random() < traits.offtopic_rate
        mentions: list[str] = []

        mentions.extend(self._name_mentions(rng, profile, peers, traits, offtopic))
        mentions.extend(self._org_mentions(rng, profile, traits, offtopic))
        mentions.extend(self._concept_mentions(rng, profile, traits, offtopic))
        mentions.extend(self._associate_mentions(rng, profile, traits, offtopic))
        for location in profile.locations:
            if rng.random() < (0.2 if offtopic else 0.5):
                mentions.append(location)

        url = self._page_url(rng, profile, traits)
        domain = url.split("://", 1)[-1].split("/", 1)[0]
        words = self._body_words(rng, profile, traits, offtopic, domain)
        text = self._compose_text(rng, mentions, words)

        title_words = rng.sample(profile.topic_words, 2)
        title = f"{profile.full_name} {' '.join(title_words)}"
        return WebPage(
            doc_id=doc_id,
            query_name=profile.query_name,
            url=url,
            title=title,
            text=text,
            person_id=profile.person_id,
        )

    def _name_mentions(self, rng: random.Random, profile: PersonProfile,
                       peers: list[PersonProfile], traits: NameTraits,
                       offtopic: bool) -> list[str]:
        """The person's own name variants plus occasional dominant others.

        All namesakes share the query full name, so own-name mentions are
        identical across clusters.  With probability ``name_confusion`` the
        page is dominated by an *associate's* name instead (a profile page
        of a colleague that merely cites the query person) — the failure
        mode that makes F3 ("most frequent name") imperfect.
        """
        variants = profile.name_variants()
        n_own = rng.randint(1, 2) if offtopic else rng.randint(2, 5)
        mentions = [variants[0]] * max(1, n_own - 1)
        mentions.extend(rng.choice(variants) for _ in range(n_own - len(mentions) + 1))
        if profile.associates and rng.random() < traits.name_confusion:
            dominant = rng.choice(profile.associates)
            mentions.extend([dominant] * rng.randint(2, 4))
        if offtopic:
            # Off-topic pages are usually *about someone else* who merely
            # mentions the query person in passing.
            stranger = self.vocabulary.full_name(rng)
            mentions.extend([stranger] * rng.randint(2, 4))
        return mentions

    def _org_mentions(self, rng: random.Random, profile: PersonProfile,
                      traits: NameTraits, offtopic: bool) -> list[str]:
        if rng.random() < traits.p_missing_orgs or offtopic:
            return []
        mentions = []
        for org in rng.sample(profile.organizations,
                              rng.randint(1, len(profile.organizations))):
            if rng.random() < traits.org_noise:
                org = rng.choice(self.vocabulary.organizations)
            mentions.extend([org] * rng.randint(1, 2))
        return mentions

    def _concept_mentions(self, rng: random.Random, profile: PersonProfile,
                          traits: NameTraits, offtopic: bool) -> list[str]:
        if rng.random() < traits.p_missing_concepts:
            return []
        concepts = list(profile.concepts)
        weights = list(profile.concepts.values())
        n_mention = rng.randint(1, 2) if offtopic else rng.randint(2, 6)
        mentions = []
        for _ in range(n_mention):
            concept = rng.choices(concepts, weights=weights, k=1)[0]
            if rng.random() < traits.concept_noise:
                concept = rng.choice(self.vocabulary.concepts)
            mentions.extend([concept] * rng.randint(1, 3))
        return mentions

    def _associate_mentions(self, rng: random.Random, profile: PersonProfile,
                            traits: NameTraits, offtopic: bool) -> list[str]:
        n_assoc = 0 if offtopic else rng.randint(0, 3)
        mentions = []
        for name in rng.sample(profile.associates,
                               min(n_assoc, len(profile.associates))):
            if rng.random() < traits.associate_noise:
                name = self.vocabulary.full_name(rng)
            mentions.append(name)
        return mentions

    def _body_words(self, rng: random.Random, profile: PersonProfile,
                    traits: NameTraits, offtopic: bool,
                    domain: str) -> list[str]:
        """Draw the page's plain content words from the mixture model.

        The mixture has five layers: site boilerplate (same for every page
        of a domain — the template text that confounds TF-IDF), random
        noise words, general filler, name-shared words (topical overlap of
        namesakes) and the person's own topic words.
        """
        n_tokens = self._draw_page_length(rng, traits)
        shared_rate = traits.shared_word_rate
        noise_rate = traits.noise_word_rate
        boilerplate_rate = traits.boilerplate_rate
        if offtopic:
            noise_rate = min(0.9, noise_rate + 0.4)
        boilerplate = self._domain_boilerplate(domain)
        words = []
        for _ in range(n_tokens):
            roll = rng.random()
            if roll < boilerplate_rate:
                words.append(rng.choice(boilerplate))
            elif roll < boilerplate_rate + noise_rate:
                words.append(self._content_word(rng))
            elif roll < boilerplate_rate + noise_rate + 0.12:
                words.append(self._general_word(rng))
            elif roll < boilerplate_rate + noise_rate + 0.12 + shared_rate:
                words.append(rng.choice(profile.shared_words))
            else:
                words.append(rng.choice(profile.topic_words))
        return words

    def _content_word(self, rng: random.Random) -> str:
        """One lexicon content word — uniform, or Zipfian when skewed."""
        if self._content_sampler is not None:
            return self._content_sampler.choice(rng)
        return rng.choice(self.vocabulary.content_words)

    def _general_word(self, rng: random.Random) -> str:
        if self._general_sampler is not None:
            return self._general_sampler.choice(rng)
        return rng.choice(self.vocabulary.general_words)

    def _draw_cluster_count(self, rng: random.Random, lower: int,
                            upper: int) -> int:
        """Entities-per-name draw: uniform, or ``1/k**skew``-weighted."""
        skew = self.config.cluster_count_skew
        if skew <= 0.0 or lower >= upper:
            return rng.randint(lower, upper)
        cumulative = list(itertools.accumulate(
            1.0 / (k ** skew) for k in range(lower, upper + 1)))
        position = bisect.bisect_left(cumulative, rng.random() * cumulative[-1])
        return lower + min(position, upper - lower)

    def _draw_page_length(self, rng: random.Random,
                          traits: NameTraits) -> int:
        """Page token count: uniform range, with an optional Pareto tail."""
        n_tokens = rng.randint(traits.min_tokens, traits.max_tokens)
        skew = self.config.page_length_skew
        if skew > 0.0:
            # paretovariate yields multipliers >= 1; cap the tail so one
            # page can never dominate a block's memory or runtime.
            n_tokens = int(n_tokens * min(rng.paretovariate(skew), 8.0))
        return n_tokens

    def _domain_boilerplate(self, domain: str) -> list[str]:
        """The site-template words of a domain (stable across pages/seeds)."""
        cached = self._boilerplate_cache.get(domain)
        if cached is None:
            seed = zlib.crc32(domain.encode("utf-8")) ^ self.vocabulary.seed
            domain_rng = random.Random(seed)
            cached = domain_rng.sample(self.vocabulary.content_words, 15)
            self._boilerplate_cache[domain] = cached
        return cached

    def _compose_text(self, rng: random.Random, mentions: list[str],
                      words: list[str]) -> str:
        """Interleave entity mentions into the word stream as sentences."""
        tokens = list(words)
        for mention in mentions:
            position = rng.randint(0, len(tokens))
            tokens.insert(position, mention)
        sentences = []
        cursor = 0
        while cursor < len(tokens):
            length = rng.randint(8, 14)
            sentences.append(" ".join(tokens[cursor:cursor + length]) + ".")
            cursor += length
        return " ".join(sentences)

    def _page_url(self, rng: random.Random, profile: PersonProfile,
                  traits: NameTraits) -> str:
        if rng.random() < traits.p_home_domain:
            domain = rng.choice(profile.home_domains)
        else:
            domain = rng.choice(self.vocabulary.domains)
        path_words = rng.sample(self.vocabulary.content_words, 2)
        return f"http://{domain}/{path_words[0]}/{path_words[1]}{rng.randint(0, 999)}.html"


def with_traits(config: GeneratorConfig, traits: NameTraits) -> GeneratorConfig:
    """Return a copy of ``config`` with :attr:`fixed_traits` set."""
    return replace(config, fixed_traits=traits)
