"""Dataset builders mirroring the paper's two evaluation collections.

``www05_like`` reproduces the shape of the WWW'05 dataset of Bekkerman &
McCallum (12 ambiguous surnames, ~100 Google results each, 2–61 true
clusters per name) and ``weps2_like`` the WePS-2 ACL subset the paper
reports (10 names, ~150 Yahoo results each, fewer but larger clusters and
noisier pages).  Both are synthesized — see DESIGN.md §2 for the
substitution rationale.
"""

from __future__ import annotations

from dataclasses import replace

from repro.corpus.documents import DocumentCollection
from repro.corpus.generator import CorpusGenerator, GeneratorConfig

#: The 12 ambiguous queries of the WWW'05 dataset.  The original queries
#: are full person names (the paper's Table III labels rows by surname);
#: all persons behind one query share that full name.
WWW05_NAMES = [
    "Adam Cheyer", "William Cohen", "Dina Hardt", "David Israel",
    "Leslie Kaelbling", "David Mark", "Andrew Mccallum", "Tom Mitchell",
    "David Mulford", "Andrew Ng", "Fernando Pereira", "Lynn Voss",
]

#: True cluster counts per WWW'05 query (keyed by surname label).  The
#: paper only states the range (2–61); these values reproduce that range
#: with the easy names (Cheyer, Kaelbling — near-perfect scores in Table
#: III) given few clusters and the hard names (Voss, Pereira — lowest
#: scores) given many.
WWW05_CLUSTER_COUNTS = {
    "Cheyer": 2,
    "Cohen": 12,
    "Hardt": 6,
    "Israel": 18,
    "Kaelbling": 2,
    "Mark": 30,
    "Mccallum": 10,
    "Mitchell": 37,
    "Mulford": 24,
    "Ng": 29,
    "Pereira": 48,
    "Voss": 61,
}

#: Ten ACL'08-flavoured ambiguous queries for the WePS-2-like dataset.
#: The paper reports results on the 10 ACL committee names; the originals'
#: identities do not matter for the reproduction, only the block count.
WEPS2_ACL_NAMES = [
    "Amanda Baker", "James Carter", "Ruth Dawson", "Peter Ellis",
    "Helen Foster", "Michael Gordon", "Susan Harper", "Paul Ingram",
    "Laura Jensen", "Frank Keller",
]

#: Cluster counts for the WePS-like queries (keyed by surname label).
#: WePS-2 names average fewer, larger clusters than WWW'05 (many
#: wiki/census names dominated by one famous bearer), which contributes to
#: its different score profile.
WEPS2_CLUSTER_COUNTS = {
    "Baker": 20, "Carter": 8, "Dawson": 26, "Ellis": 14, "Foster": 34,
    "Gordon": 11, "Harper": 41, "Ingram": 17, "Jensen": 23, "Keller": 29,
}


def surname(query_name: str) -> str:
    """Surname label of a query name (Table III row labels)."""
    return query_name.split()[-1]


def www05_like(seed: int = 1, pages_per_name: int = 100,
               names: list[str] | None = None,
               config: GeneratorConfig | None = None) -> DocumentCollection:
    """Build a WWW'05-shaped synthetic dataset.

    Args:
        seed: corpus seed (vocabulary seed is fixed by the config).
        pages_per_name: pages per ambiguous name; the original has ~100.
            Smaller values scale cluster counts proportionally so every
            cluster stays non-empty.
        names: subset of :data:`WWW05_NAMES` to generate (default: all 12).
        config: full generator config override.
    """
    names = names or WWW05_NAMES
    config = config or GeneratorConfig(pages_per_name=pages_per_name)
    if config.pages_per_name != pages_per_name:
        config = replace(config, pages_per_name=pages_per_name)
    counts = _scaled_counts(WWW05_CLUSTER_COUNTS, pages_per_name, reference=100, names=names)
    generator = CorpusGenerator(config)
    return generator.generate(names, seed=seed, dataset_name="www05-like",
                              cluster_counts=counts)


def weps2_like(seed: int = 2, pages_per_name: int = 150,
               names: list[str] | None = None,
               config: GeneratorConfig | None = None) -> DocumentCollection:
    """Build a WePS-2-shaped synthetic dataset (the 10 reported ACL names).

    WePS pages are noisier than WWW'05 pages (the paper's absolute scores
    drop by ~0.1 across the board), modeled here by a harsher default
    generator configuration.
    """
    names = names or WEPS2_ACL_NAMES
    if config is None:
        config = GeneratorConfig(
            pages_per_name=pages_per_name,
            min_clusters=4,
            max_clusters=45,
            cluster_size_alpha=1.0,
            vocabulary_seed=11,
        )
    elif config.pages_per_name != pages_per_name:
        config = replace(config, pages_per_name=pages_per_name)
    counts = _scaled_counts(WEPS2_CLUSTER_COUNTS, pages_per_name, reference=150, names=names)
    generator = CorpusGenerator(config)
    return generator.generate(names, seed=seed, dataset_name="weps2-like",
                              cluster_counts=counts)


def custom_dataset(names: list[str], seed: int,
                   config: GeneratorConfig | None = None,
                   cluster_counts: dict[str, int] | None = None,
                   dataset_name: str = "custom") -> DocumentCollection:
    """Build a dataset with arbitrary names and configuration."""
    generator = CorpusGenerator(config or GeneratorConfig())
    return generator.generate(names, seed=seed, dataset_name=dataset_name,
                              cluster_counts=cluster_counts)


def _scaled_counts(counts: dict[str, int], pages_per_name: int,
                   reference: int, names: list[str]) -> dict[str, int]:
    """Per-query cluster counts, scaled when the page budget shrinks/grows.

    ``counts`` is keyed by surname label; the result is keyed by the full
    query names the generator expects.
    """
    by_query: dict[str, int] = {}
    for query in names:
        count = counts.get(surname(query))
        if count is None:
            continue
        if pages_per_name != reference:
            count = max(2, round(count * pages_per_name / reference))
        by_query[query] = min(count, pages_per_name)
    return by_query
