"""Dataset builders mirroring the paper's two evaluation collections.

``www05_like`` reproduces the shape of the WWW'05 dataset of Bekkerman &
McCallum (12 ambiguous surnames, ~100 Google results each, 2–61 true
clusters per name) and ``weps2_like`` the WePS-2 ACL subset the paper
reports (10 names, ~150 Yahoo results each, fewer but larger clusters and
noisier pages).  Both are synthesized — see DESIGN.md §2 for the
substitution rationale.
"""

from __future__ import annotations

import math
from dataclasses import replace

from repro.corpus.documents import DocumentCollection
from repro.corpus.generator import (
    CorpusGenerator,
    GeneratorConfig,
    synthesize_query_names,
)
from repro.corpus.vocabulary import Vocabulary, build_vocabulary

#: The 12 ambiguous queries of the WWW'05 dataset.  The original queries
#: are full person names (the paper's Table III labels rows by surname);
#: all persons behind one query share that full name.
WWW05_NAMES = [
    "Adam Cheyer", "William Cohen", "Dina Hardt", "David Israel",
    "Leslie Kaelbling", "David Mark", "Andrew Mccallum", "Tom Mitchell",
    "David Mulford", "Andrew Ng", "Fernando Pereira", "Lynn Voss",
]

#: True cluster counts per WWW'05 query (keyed by surname label).  The
#: paper only states the range (2–61); these values reproduce that range
#: with the easy names (Cheyer, Kaelbling — near-perfect scores in Table
#: III) given few clusters and the hard names (Voss, Pereira — lowest
#: scores) given many.
WWW05_CLUSTER_COUNTS = {
    "Cheyer": 2,
    "Cohen": 12,
    "Hardt": 6,
    "Israel": 18,
    "Kaelbling": 2,
    "Mark": 30,
    "Mccallum": 10,
    "Mitchell": 37,
    "Mulford": 24,
    "Ng": 29,
    "Pereira": 48,
    "Voss": 61,
}

#: Ten ACL'08-flavoured ambiguous queries for the WePS-2-like dataset.
#: The paper reports results on the 10 ACL committee names; the originals'
#: identities do not matter for the reproduction, only the block count.
WEPS2_ACL_NAMES = [
    "Amanda Baker", "James Carter", "Ruth Dawson", "Peter Ellis",
    "Helen Foster", "Michael Gordon", "Susan Harper", "Paul Ingram",
    "Laura Jensen", "Frank Keller",
]

#: Cluster counts for the WePS-like queries (keyed by surname label).
#: WePS-2 names average fewer, larger clusters than WWW'05 (many
#: wiki/census names dominated by one famous bearer), which contributes to
#: its different score profile.
WEPS2_CLUSTER_COUNTS = {
    "Baker": 20, "Carter": 8, "Dawson": 26, "Ellis": 14, "Foster": 34,
    "Gordon": 11, "Harper": 41, "Ingram": 17, "Jensen": 23, "Keller": 29,
}


def surname(query_name: str) -> str:
    """Surname label of a query name (Table III row labels)."""
    return query_name.split()[-1]


def www05_like(seed: int = 1, pages_per_name: int = 100,
               names: list[str] | None = None,
               config: GeneratorConfig | None = None) -> DocumentCollection:
    """Build a WWW'05-shaped synthetic dataset.

    Args:
        seed: corpus seed (vocabulary seed is fixed by the config).
        pages_per_name: pages per ambiguous name; the original has ~100.
            Smaller values scale cluster counts proportionally so every
            cluster stays non-empty.
        names: subset of :data:`WWW05_NAMES` to generate (default: all 12).
        config: full generator config override.
    """
    names = names or WWW05_NAMES
    config = config or GeneratorConfig(pages_per_name=pages_per_name)
    if config.pages_per_name != pages_per_name:
        config = replace(config, pages_per_name=pages_per_name)
    counts = _scaled_counts(WWW05_CLUSTER_COUNTS, pages_per_name, reference=100, names=names)
    generator = CorpusGenerator(config)
    return generator.generate(names, seed=seed, dataset_name="www05-like",
                              cluster_counts=counts)


def weps2_like(seed: int = 2, pages_per_name: int = 150,
               names: list[str] | None = None,
               config: GeneratorConfig | None = None) -> DocumentCollection:
    """Build a WePS-2-shaped synthetic dataset (the 10 reported ACL names).

    WePS pages are noisier than WWW'05 pages (the paper's absolute scores
    drop by ~0.1 across the board), modeled here by a harsher default
    generator configuration.
    """
    names = names or WEPS2_ACL_NAMES
    if config is None:
        config = GeneratorConfig(
            pages_per_name=pages_per_name,
            min_clusters=4,
            max_clusters=45,
            cluster_size_alpha=1.0,
            vocabulary_seed=11,
        )
    elif config.pages_per_name != pages_per_name:
        config = replace(config, pages_per_name=pages_per_name)
    counts = _scaled_counts(WEPS2_CLUSTER_COUNTS, pages_per_name, reference=150, names=names)
    generator = CorpusGenerator(config)
    return generator.generate(names, seed=seed, dataset_name="weps2-like",
                              cluster_counts=counts)


def scale_config(pages_per_name: int = 20,
                 collision_rate: float = 0.0,
                 cluster_count_skew: float = 1.1,
                 page_length_skew: float = 0.0,
                 vocabulary_zipf: float = 1.05,
                 vocabulary_seed: int = 7) -> GeneratorConfig:
    """Generator config tuned for large synthetic sweeps.

    Differences from the paper-shaped defaults: independent per-name
    seeding (O(1) block regeneration — streaming and parallel-safe),
    full-name doc ids (surname collisions are the point of scale
    corpora), a skewed entities-per-name distribution and a Zipfian
    lexicon.  ``collision_rate`` is accepted for signature symmetry with
    :func:`scale_generator` but lives in name synthesis, not here.
    """
    del collision_rate  # applied by synthesize_query_names, not the config
    return GeneratorConfig(
        pages_per_name=pages_per_name,
        min_clusters=2,
        max_clusters=min(12, pages_per_name),
        seeding="independent",
        doc_id_scheme="full",
        cluster_count_skew=cluster_count_skew,
        page_length_skew=page_length_skew,
        vocabulary_zipf=vocabulary_zipf,
        vocabulary_seed=vocabulary_seed,
    )


def scale_vocabulary(n_names: int, seed: int = 7) -> Vocabulary:
    """A vocabulary whose name pools comfortably fit ``n_names`` queries.

    Default pools hold 70×90 = 6 300 distinct full names; million-page
    corpora need tens of thousands.  Name pools grow with ``sqrt(n)``
    (keeping ~4× headroom so synthesis never grinds against exhaustion);
    every other category keeps its default size, and because
    :func:`build_vocabulary` sub-seeds each category independently, the
    rest of the lexicon — and hence the NER gazetteers — is unchanged.
    """
    side = math.isqrt(max(0, 4 * n_names - 1)) + 1
    return build_vocabulary(
        seed,
        n_first_names=max(70, side),
        n_last_names=max(90, side),
    )


def scale_generator(
    n_names: int,
    seed: int,
    pages_per_name: int = 20,
    collision_rate: float = 0.0,
    config: GeneratorConfig | None = None,
) -> tuple[CorpusGenerator, list[str]]:
    """A generator plus synthesized query names for a scale corpus.

    This is the streaming entry point: callers drive
    ``generator.iter_blocks(names, seed)`` (O(one block) memory) or
    ``generator.generate_block(name, seed)`` (O(1) regeneration of any
    single block).  :func:`scale_corpus` materializes the same thing.

    Args:
        n_names: total ambiguous-name (block) count; total pages are
            ``n_names * pages_per_name``.
        seed: corpus seed — also drives name synthesis, so the whole
            corpus is a pure function of the arguments.
        pages_per_name: block size.
        collision_rate: probability a synthesized name reuses an earlier
            query name's surname (see :func:`synthesize_query_names`).
        config: full config override (must use independent seeding for
            ``generate_block`` to work).
    """
    config = config or scale_config(pages_per_name=pages_per_name)
    vocabulary = scale_vocabulary(n_names, seed=config.vocabulary_seed)
    generator = CorpusGenerator(config, vocabulary=vocabulary)
    names = synthesize_query_names(vocabulary, n_names, seed=seed,
                                   collision_rate=collision_rate)
    return generator, names


def scale_corpus(
    n_names: int,
    seed: int,
    pages_per_name: int = 20,
    collision_rate: float = 0.0,
    config: GeneratorConfig | None = None,
    dataset_name: str | None = None,
) -> DocumentCollection:
    """Materialize a scale corpus (see :func:`scale_generator`)."""
    generator, names = scale_generator(
        n_names, seed, pages_per_name=pages_per_name,
        collision_rate=collision_rate, config=config)
    if dataset_name is None:
        dataset_name = f"scale-{n_names}x{generator.config.pages_per_name}"
    return generator.generate(names, seed=seed, dataset_name=dataset_name)


def custom_dataset(names: list[str], seed: int,
                   config: GeneratorConfig | None = None,
                   cluster_counts: dict[str, int] | None = None,
                   dataset_name: str = "custom") -> DocumentCollection:
    """Build a dataset with arbitrary names and configuration."""
    generator = CorpusGenerator(config or GeneratorConfig())
    return generator.generate(names, seed=seed, dataset_name=dataset_name,
                              cluster_counts=cluster_counts)


def _scaled_counts(counts: dict[str, int], pages_per_name: int,
                   reference: int, names: list[str]) -> dict[str, int]:
    """Per-query cluster counts, scaled when the page budget shrinks/grows.

    ``counts`` is keyed by surname label; the result is keyed by the full
    query names the generator expects.
    """
    by_query: dict[str, int] = {}
    for query in names:
        count = counts.get(surname(query))
        if count is None:
            continue
        if pages_per_name != reference:
            count = max(2, round(count * pages_per_name / reference))
        by_query[query] = min(count, pages_per_name)
    return by_query
