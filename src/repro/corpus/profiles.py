"""Latent person profiles behind ambiguous names.

Each generated dataset first draws a set of :class:`PersonProfile` objects —
the real-world persons of the paper's problem statement (the unknown set
``P``).  Pages are then synthesized *from* profiles with noise, so ground
truth exists by construction while the observable page features are only a
partial, noisy projection of the profile.

Profiles for one ambiguous name draw from shared per-name *pools*
(:class:`NamePools`): namesakes overlap in vocabulary, concepts,
organizations, associates and hosting domains, exactly the correlation
that makes web people search hard.  Names with many namesakes exhaust
their pools and overlap more, so high-cluster names are intrinsically
harder — the ordering the paper's Table III exhibits.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.corpus.vocabulary import Vocabulary


@dataclass
class PersonProfile:
    """One latent real-world person sharing an ambiguous name.

    Attributes:
        person_id: globally unique identifier, e.g. ``"cohen#03"``.
        query_name: the ambiguous full query name.
        full_name: the person's name — identical to ``query_name`` for all
            namesakes (full-name queries are what makes the problem hard).
        concepts: concept phrase -> salience weight (sums to 1).
        organizations: affiliated organization names.
        associates: full names of frequently co-mentioned persons.
        locations: places tied to this person.
        home_domains: web domains hosting most of this person's pages.
        topic_words: content words characteristic of the person's topic.
        shared_words: content words shared by *all* persons of this name
            (models same-name topical overlap that confuses TF-IDF).
    """

    person_id: str
    query_name: str
    full_name: str
    concepts: dict[str, float] = field(default_factory=dict)
    organizations: list[str] = field(default_factory=list)
    associates: list[str] = field(default_factory=list)
    locations: list[str] = field(default_factory=list)
    home_domains: list[str] = field(default_factory=list)
    topic_words: list[str] = field(default_factory=list)
    shared_words: list[str] = field(default_factory=list)

    @property
    def first_name(self) -> str:
        return self.full_name.split(" ", 1)[0]

    @property
    def last_name(self) -> str:
        return self.full_name.split(" ", 1)[-1]

    def name_variants(self) -> list[str]:
        """Surface forms of the person's name seen on web pages.

        All namesakes produce the same variants — the name feature cannot
        separate them directly, only indirectly (e.g. when a page is
        dominated by some other person's name).
        """
        first, last = self.first_name, self.last_name
        return [
            f"{first} {last}",
            f"{first[0]}. {last}",
            last,
        ]


@dataclass
class NamePools:
    """Per-name resource pools all namesake profiles draw from.

    Pool sizes govern how much two namesakes overlap: a pool barely larger
    than what one person consumes forces heavy overlap.
    """

    words: list[str]
    shared_words: list[str]
    concepts: list[str]
    organizations: list[str]
    associates: list[str]
    locations: list[str]
    domains: list[str]

    @classmethod
    def sample(cls, rng: random.Random, vocabulary: Vocabulary,
               n_clusters: int, n_topic_words: int = 60,
               n_concepts: int = 8, word_pool_factor: float = 4.5,
               concept_pool_factor: float = 3.5) -> "NamePools":
        """Draw the name's resource pools.

        Pool sizes are independent of the namesake count: how similar two
        random namesakes look should not depend on how many *other*
        namesakes exist.  (High-cluster names are still harder — they have
        more cluster boundaries to get right and smaller clusters that
        transitive closure merges on a single false edge.)  The pool
        factors control the baseline overlap between two namesakes
        (smaller factor → more overlap → harder corpus).
        """
        word_pool = max(int(word_pool_factor * n_topic_words),
                        n_topic_words + 10)
        concept_pool = max(int(concept_pool_factor * n_concepts),
                           n_concepts + 3)
        org_pool = 9
        associate_pool = 16
        domain_pool = 10
        location_pool = 6
        return cls(
            words=rng.sample(vocabulary.content_words,
                             min(word_pool, len(vocabulary.content_words))),
            shared_words=rng.sample(vocabulary.content_words, 30),
            concepts=rng.sample(vocabulary.concepts,
                                min(concept_pool, len(vocabulary.concepts))),
            organizations=rng.sample(vocabulary.organizations,
                                     min(org_pool, len(vocabulary.organizations))),
            associates=[vocabulary.full_name(rng) for _ in range(associate_pool)],
            locations=rng.sample(vocabulary.locations,
                                 min(location_pool, len(vocabulary.locations))),
            domains=rng.sample(vocabulary.domains,
                               min(domain_pool, len(vocabulary.domains))),
        )


def sample_profile(
    rng: random.Random,
    pools: NamePools,
    person_id: str,
    query_name: str,
    n_concepts: int = 8,
    n_topic_words: int = 60,
) -> PersonProfile:
    """Draw one person profile for ``query_name`` from the name's pools.

    All persons behind one ambiguous query share the *same* full name —
    that is exactly what makes the web-people-search problem hard (the
    WWW'05 queries are full names such as "William Cohen"); only page
    content can separate the namesakes.

    Args:
        rng: the generator's RNG (never the global one).
        pools: the name-level resource pools (shared by all namesakes).
        person_id: identifier to assign.
        query_name: the ambiguous full query name.
        n_concepts: concepts per person.
        n_topic_words: topical content words per person.
    """
    n_concepts = min(n_concepts, len(pools.concepts))
    concept_choices = rng.sample(pools.concepts, n_concepts)
    raw_weights = [rng.uniform(0.5, 2.0) for _ in concept_choices]
    total = sum(raw_weights)
    concepts = {c: w / total for c, w in zip(concept_choices, raw_weights)}

    organizations = rng.sample(pools.organizations,
                               min(rng.randint(1, 3), len(pools.organizations)))
    associates = rng.sample(pools.associates,
                            min(rng.randint(3, 6), len(pools.associates)))
    locations = rng.sample(pools.locations,
                           min(rng.randint(1, 2), len(pools.locations)))
    home_domains = rng.sample(pools.domains,
                              min(rng.randint(1, 3), len(pools.domains)))
    topic_words = rng.sample(pools.words, min(n_topic_words, len(pools.words)))

    return PersonProfile(
        person_id=person_id,
        query_name=query_name,
        full_name=query_name,
        concepts=concepts,
        organizations=organizations,
        associates=associates,
        locations=locations,
        home_domains=home_domains,
        topic_words=topic_words,
        shared_words=pools.shared_words,
    )
