"""Document model for web-page entity resolution.

The paper's input is a collection of unstructured web documents grouped by
the ambiguous person name they were retrieved for (one search query per
name).  :class:`WebPage` models one retrieved page, :class:`NameCollection`
one name's result list (which is also the paper's blocking unit), and
:class:`DocumentCollection` an entire dataset such as WWW'05 or WePS-2.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field, replace


def find_by_query_name(owner, blocks: Sequence, query_name: str):
    """Indexed first-match lookup over ``owner._index``.

    Shared by every container of ``query_name``-carrying blocks (datasets
    here, resolution/prediction results in :mod:`repro.core.model`).  The
    lazy index is verified on hit and rebuilt on any inconsistency, so
    every mutation — appends, same-length replacements, and in-place
    replacements that *create* a duplicate of an already-indexed name —
    resolves to the first matching block.  First-match verification
    scans the positions before the indexed one (duplicates can only
    appear there, and a later mutation can introduce one at any time),
    so a hit costs O(position) name comparisons; block counts per
    container are small, and correctness under arbitrary in-place
    mutation is worth the scan.

    Raises:
        KeyError: if no block carries ``query_name``.
    """
    cache = owner._index
    rebuilt = cache is None or cache[0] != len(blocks)
    if rebuilt:
        cache = owner._index = _build_name_index(blocks)
    position = cache[1].get(query_name)
    if position is not None and blocks[position].query_name == query_name:
        if rebuilt or _is_first_match(blocks, position, query_name):
            return blocks[position]
        # A replacement created an earlier duplicate: rebuild so first-
        # match semantics hold (now and for subsequent lookups).
        cache = owner._index = _build_name_index(blocks)
        return blocks[cache[1][query_name]]
    if not rebuilt:
        cache = owner._index = _build_name_index(blocks)
        position = cache[1].get(query_name)
        if (position is not None
                and blocks[position].query_name == query_name):
            return blocks[position]
    raise KeyError(query_name)


def _is_first_match(blocks: Sequence, position: int, query_name: str) -> bool:
    """True when no block before ``position`` carries ``query_name``."""
    return all(blocks[earlier].query_name != query_name
               for earlier in range(position))


def _build_name_index(blocks: Sequence) -> tuple[int, dict[str, int]]:
    index: dict[str, int] = {}
    for position, block in enumerate(blocks):
        index.setdefault(block.query_name, position)  # first match wins
    return (len(blocks), index)


@dataclass(frozen=True)
class WebPage:
    """A single retrieved web page.

    Attributes:
        doc_id: collection-unique identifier, e.g. ``"cohen/017"``.
        query_name: the ambiguous person name this page was retrieved for.
        url: full page URL.
        title: page title text.
        text: page body text (plain tokens, entity mentions capitalized).
        person_id: ground-truth identifier of the real person the page is
            about, or ``None`` when unlabeled.  Ground truth is available for
            the datasets in our experiments, mirroring the manually labeled
            WWW'05/WePS collections.
    """

    doc_id: str
    query_name: str
    url: str
    title: str
    text: str
    person_id: str | None = None

    @property
    def domain(self) -> str:
        """The network location of :attr:`url` (empty if unparsable)."""
        stripped = self.url.split("://", 1)[-1]
        return stripped.split("/", 1)[0]


@dataclass
class NameCollection:
    """All pages retrieved for one ambiguous person name.

    This is the paper's blocking unit: similarity is only ever computed
    between pages sharing a query name (§IV-C footnote).
    """

    query_name: str
    pages: list[WebPage] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.pages)

    def __iter__(self) -> Iterator[WebPage]:
        return iter(self.pages)

    def page_ids(self) -> list[str]:
        """Document ids in page order."""
        return [page.doc_id for page in self.pages]

    def ground_truth(self) -> dict[str, str]:
        """Map ``doc_id -> person_id`` for all labeled pages.

        Raises:
            ValueError: if any page is unlabeled; the evaluation protocol
                requires complete ground truth.
        """
        truth: dict[str, str] = {}
        for page in self.pages:
            if page.person_id is None:
                raise ValueError(f"page {page.doc_id!r} has no ground-truth label")
            truth[page.doc_id] = page.person_id
        return truth

    def true_clusters(self) -> list[set[str]]:
        """Ground-truth partition of this name's pages as sets of doc ids."""
        clusters: dict[str, set[str]] = {}
        for doc_id, person in self.ground_truth().items():
            clusters.setdefault(person, set()).add(doc_id)
        return list(clusters.values())

    def n_persons(self) -> int:
        """Number of distinct real persons behind this name."""
        return len({page.person_id for page in self.pages})

    def pairs(self) -> Iterator[tuple[WebPage, WebPage]]:
        """All unordered page pairs within the block, in index order."""
        for i, left in enumerate(self.pages):
            for right in self.pages[i + 1:]:
                yield left, right

    def without_labels(self) -> "NameCollection":
        """A copy of this block with every ground-truth label removed.

        The serve-side view: what a fitted model sees when resolving
        pages no one has annotated.
        """
        return NameCollection(
            query_name=self.query_name,
            pages=[replace(page, person_id=None) for page in self.pages])


@dataclass
class DocumentCollection:
    """A full dataset: one :class:`NameCollection` per ambiguous name."""

    name: str
    collections: list[NameCollection] = field(default_factory=list)
    metadata: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._index: tuple[int, dict[str, int]] | None = None

    def __len__(self) -> int:
        return len(self.collections)

    def __iter__(self) -> Iterator[NameCollection]:
        return iter(self.collections)

    def query_names(self) -> list[str]:
        """The ambiguous names, in collection order."""
        return [collection.query_name for collection in self.collections]

    def by_name(self, query_name: str) -> NameCollection:
        """Return the block for ``query_name``.

        Backed by a lazy, hit-verified first-match name→block index
        (see :func:`find_by_query_name`).

        Raises:
            KeyError: if no block with that name exists.
        """
        return find_by_query_name(self, self.collections, query_name)

    def n_pages(self) -> int:
        """Total page count across all names."""
        return sum(len(collection) for collection in self.collections)

    def all_pages(self) -> Iterator[WebPage]:
        """Iterate every page in the dataset."""
        for collection in self.collections:
            yield from collection.pages

    def without_labels(self) -> "DocumentCollection":
        """An unlabeled copy of the dataset (metadata preserved)."""
        return DocumentCollection(
            name=self.name,
            collections=[block.without_labels()
                         for block in self.collections],
            metadata=dict(self.metadata))

    def summary(self) -> dict[str, object]:
        """Dataset shape statistics (names, pages, cluster counts)."""
        cluster_counts = [collection.n_persons() for collection in self.collections]
        return {
            "dataset": self.name,
            "names": len(self.collections),
            "pages": self.n_pages(),
            "min_clusters": min(cluster_counts) if cluster_counts else 0,
            "max_clusters": max(cluster_counts) if cluster_counts else 0,
        }


def collection_from_pages(name: str, pages: Iterable[WebPage]) -> DocumentCollection:
    """Group loose pages into a :class:`DocumentCollection` by query name.

    Pages keep their relative order within each name; names appear in
    first-seen order.
    """
    by_name: dict[str, NameCollection] = {}
    ordered: list[NameCollection] = []
    for page in pages:
        block = by_name.get(page.query_name)
        if block is None:
            block = NameCollection(query_name=page.query_name)
            by_name[page.query_name] = block
            ordered.append(block)
        block.pages.append(page)
    return DocumentCollection(name=name, collections=ordered)
