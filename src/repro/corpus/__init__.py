"""Document model and synthetic Web-corpus substrate.

The paper evaluates on the WWW'05 (Bekkerman & McCallum) and WePS-2 web
collections, which are not retrievable offline.  This package provides a
faithful document model (:mod:`repro.corpus.documents`) plus a seeded
synthetic generator (:mod:`repro.corpus.generator`) that reproduces the
statistical structure those collections exhibit: ambiguous person names,
heavy-tailed cluster sizes, pages with partial or missing information, and
per-name heterogeneity in which page features are informative.
"""

from repro.corpus.documents import DocumentCollection, NameCollection, WebPage
from repro.corpus.generator import (
    CorpusGenerator,
    GeneratorConfig,
    NameTraits,
    ZipfSampler,
    independent_block_seed,
    synthesize_query_names,
)
from repro.corpus.profiles import PersonProfile
from repro.corpus.vocabulary import Vocabulary, build_vocabulary, vocabulary_sizes
from repro.corpus.datasets import (
    WEPS2_ACL_NAMES,
    WWW05_NAMES,
    WWW05_CLUSTER_COUNTS,
    custom_dataset,
    scale_config,
    scale_corpus,
    scale_generator,
    scale_vocabulary,
    surname,
    weps2_like,
    www05_like,
)
from repro.corpus.loaders import (
    iter_blocks_jsonl,
    load_collection,
    read_jsonl_header,
    save_blocks_jsonl,
    save_collection,
)

__all__ = [
    "WebPage",
    "NameCollection",
    "DocumentCollection",
    "Vocabulary",
    "build_vocabulary",
    "vocabulary_sizes",
    "PersonProfile",
    "CorpusGenerator",
    "GeneratorConfig",
    "NameTraits",
    "ZipfSampler",
    "independent_block_seed",
    "synthesize_query_names",
    "WWW05_NAMES",
    "WWW05_CLUSTER_COUNTS",
    "WEPS2_ACL_NAMES",
    "www05_like",
    "weps2_like",
    "custom_dataset",
    "scale_config",
    "scale_corpus",
    "scale_generator",
    "scale_vocabulary",
    "surname",
    "save_collection",
    "load_collection",
    "save_blocks_jsonl",
    "iter_blocks_jsonl",
    "read_jsonl_header",
]
