"""Seeded vocabularies for the synthetic web corpus.

All strings that appear on generated pages (content words, Wikipedia-style
concept phrases, organization names, person names, locations and web
domains) are drawn from a :class:`Vocabulary` built deterministically from an
integer seed.  The same vocabularies double as the gazetteers used by the
dictionary-based NER in :mod:`repro.extraction.ner`, mirroring the paper's
use of dictionary-based named entity recognition.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

_CONSONANTS = "bcdfghjklmnprstvwz"
_VOWELS = "aeiou"
_ONSETS = [c + v for c in _CONSONANTS for v in _VOWELS]
_CODAS = ["n", "r", "s", "l", "m", "t", "k", ""]


def _make_word(rng: random.Random, min_syllables: int = 2, max_syllables: int = 4) -> str:
    """Build a pronounceable lowercase pseudo-word from syllables."""
    n_syllables = rng.randint(min_syllables, max_syllables)
    syllables = [rng.choice(_ONSETS) for _ in range(n_syllables)]
    return "".join(syllables) + rng.choice(_CODAS)


def _make_unique_words(rng: random.Random, count: int, **kwargs) -> list[str]:
    """Generate ``count`` distinct pseudo-words."""
    words: list[str] = []
    seen: set[str] = set()
    while len(words) < count:
        word = _make_word(rng, **kwargs)
        if word not in seen:
            seen.add(word)
            words.append(word)
    return words


_ORG_SUFFIXES = [
    "University", "Institute", "Labs", "Corporation", "Systems",
    "Foundation", "College", "Group", "Technologies", "Society",
]
_DOMAIN_TLDS = [".com", ".org", ".edu", ".net", ".io"]
_CONCEPT_HEADS = [
    "theory", "analysis", "networks", "systems", "learning",
    "models", "methods", "design", "algebra", "dynamics",
]


@dataclass
class Vocabulary:
    """All lexical material available to the corpus generator.

    Attributes:
        content_words: topical lowercase words pages draw their body from.
        general_words: high-frequency filler words shared by every page.
        concepts: multi-word concept phrases (Wikipedia-article style).
        organizations: organization names (capitalized, often multi-word).
        first_names: capitalized given names.
        last_names: capitalized family names (excluding query surnames).
        locations: capitalized place names.
        domains: bare web domains such as ``"fooware.org"``.
        seed: seed this vocabulary was built from.
    """

    content_words: list[str] = field(default_factory=list)
    general_words: list[str] = field(default_factory=list)
    concepts: list[str] = field(default_factory=list)
    organizations: list[str] = field(default_factory=list)
    first_names: list[str] = field(default_factory=list)
    last_names: list[str] = field(default_factory=list)
    locations: list[str] = field(default_factory=list)
    domains: list[str] = field(default_factory=list)
    seed: int = 0

    def full_name(self, rng: random.Random, last_name: str | None = None) -> str:
        """Draw a ``"First Last"`` full name, optionally with a fixed surname."""
        first = rng.choice(self.first_names)
        last = last_name if last_name is not None else rng.choice(self.last_names)
        return f"{first} {last}"

    def as_gazetteers(self) -> dict[str, list[str]]:
        """Expose the entity vocabularies as NER gazetteers."""
        return {
            "organization": list(self.organizations),
            "location": list(self.locations),
        }


#: Default category sizes of :func:`build_vocabulary`, keyed by its
#: keyword arguments.  Collections built at other sizes record the
#: non-default entries in their metadata (``"vocabulary_sizes"``) so the
#: identical lexicon — and therefore the identical extraction pipeline —
#: can be rebuilt from a saved corpus.
DEFAULT_VOCABULARY_SIZES = {
    "n_content_words": 2400,
    "n_general_words": 220,
    "n_concepts": 360,
    "n_organizations": 240,
    "n_first_names": 70,
    "n_last_names": 90,
    "n_locations": 110,
    "n_domains": 160,
}

#: Maps each size keyword to the Vocabulary list it controls.
_SIZE_FIELDS = {
    "n_content_words": "content_words",
    "n_general_words": "general_words",
    "n_concepts": "concepts",
    "n_organizations": "organizations",
    "n_first_names": "first_names",
    "n_last_names": "last_names",
    "n_locations": "locations",
    "n_domains": "domains",
}


def vocabulary_sizes(vocabulary: Vocabulary) -> dict[str, int]:
    """The non-default category sizes of ``vocabulary``.

    Returns a (possibly empty) mapping of :func:`build_vocabulary`
    keyword arguments; ``build_vocabulary(v.seed, **vocabulary_sizes(v))``
    rebuilds ``v`` exactly.  Empty for default-sized vocabularies, so
    legacy corpus metadata stays unchanged.
    """
    return {
        keyword: len(getattr(vocabulary, attr))
        for keyword, attr in _SIZE_FIELDS.items()
        if len(getattr(vocabulary, attr)) != DEFAULT_VOCABULARY_SIZES[keyword]
    }


def build_vocabulary(
    seed: int = 0,
    n_content_words: int = 2400,
    n_general_words: int = 220,
    n_concepts: int = 360,
    n_organizations: int = 240,
    n_first_names: int = 70,
    n_last_names: int = 90,
    n_locations: int = 110,
    n_domains: int = 160,
) -> Vocabulary:
    """Build a deterministic :class:`Vocabulary` from ``seed``.

    Every category is sampled from an independent sub-seeded RNG so that
    enlarging one category does not perturb the others.
    """
    master = random.Random(seed)
    seeds = {name: master.randrange(2**31) for name in (
        "content", "general", "concepts", "orgs", "first", "last", "loc", "dom")}

    content_rng = random.Random(seeds["content"])
    content_words = _make_unique_words(content_rng, n_content_words)

    general_rng = random.Random(seeds["general"])
    general_words = _make_unique_words(general_rng, n_general_words, min_syllables=1, max_syllables=2)

    concept_rng = random.Random(seeds["concepts"])
    concept_mods = _make_unique_words(concept_rng, n_concepts)
    concepts = [f"{mod} {concept_rng.choice(_CONCEPT_HEADS)}" for mod in concept_mods]

    org_rng = random.Random(seeds["orgs"])
    org_stems = _make_unique_words(org_rng, n_organizations)
    organizations = [
        f"{stem.capitalize()} {org_rng.choice(_ORG_SUFFIXES)}" for stem in org_stems
    ]

    first_rng = random.Random(seeds["first"])
    first_names = [w.capitalize() for w in _make_unique_words(first_rng, n_first_names, min_syllables=2, max_syllables=2)]

    last_rng = random.Random(seeds["last"])
    last_names = [w.capitalize() for w in _make_unique_words(last_rng, n_last_names, min_syllables=2, max_syllables=3)]

    loc_rng = random.Random(seeds["loc"])
    locations = [w.capitalize() for w in _make_unique_words(loc_rng, n_locations, min_syllables=2, max_syllables=3)]

    dom_rng = random.Random(seeds["dom"])
    domain_stems = _make_unique_words(dom_rng, n_domains)
    domains = [stem + dom_rng.choice(_DOMAIN_TLDS) for stem in domain_stems]

    return Vocabulary(
        content_words=content_words,
        general_words=general_words,
        concepts=concepts,
        organizations=organizations,
        first_names=first_names,
        last_names=last_names,
        locations=locations,
        domains=domains,
        seed=seed,
    )
