"""Incremental entity resolution.

The paper's motivating application — web people search — is a living
index: new pages for a name arrive continuously, and re-running the full
quadratic pipeline per page is wasteful.  ``IncrementalResolver`` adopts a
fitted :class:`~repro.core.model.ResolverModel` (or fits one itself from a
labeled initial block) and then assigns each new page in
O(existing pages × functions): it scores the new page against every
current entity with the *fitted* decision layers (no re-training) and
either joins the best-matching entity or founds a new one.

The incremental decision reuses whatever combiner the base configuration
chose: under best-graph selection the winning layer decides; under
(entropy-)weighted averaging the stored layer weights and learned
combination threshold decide.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import ResolverConfig
from repro.graph.entity_graph import PairKey, pair_key
from repro.core.model import (
    BlockPrediction,
    FittedBlock,
    FittedLayer,
    ResolverModel,
    compute_similarity_graphs,
)
from repro.core.resolver import EntityResolver
from repro.corpus.documents import NameCollection
from repro.extraction.features import PageFeatures
from repro.metrics.clusterings import Clustering
from repro.similarity.backends import resolve_backend
from repro.similarity.base import SimilarityFunction
from repro.similarity.functions import function_by_name


#: Combiners whose stored parameters suffice to decide single links —
#: the modes the incremental request path (and ``ResolutionSession``)
#: can serve.
INCREMENTAL_COMBINERS = ("best_graph", "weighted_average")


@dataclass
class Assignment:
    """Outcome of adding one page incrementally."""

    doc_id: str
    cluster_index: int
    created_new_cluster: bool
    link_probability: float  # best cluster's mean link probability


@dataclass
class _FittedState:
    """Everything the fitted model provides that assignment needs."""

    layers: list[FittedLayer]
    functions: dict[str, SimilarityFunction]
    chosen_layer: FittedLayer | None  # best-graph mode
    combination_threshold: float | None  # weighted-average mode
    layer_weights: list[float] = field(default_factory=list)


class IncrementalResolver:
    """Adopt a fitted model once, then assign new pages without re-training.

    Args:
        config: resolver configuration for the initial fit.  Supported
            combiners: ``"best_graph"`` and ``"weighted_average"``.

    Raises:
        ValueError: for unsupported combiners.
    """

    def __init__(self, config: ResolverConfig | None = None):
        self.config = config or ResolverConfig()
        if self.config.combiner not in INCREMENTAL_COMBINERS:
            raise ValueError(
                f"incremental mode does not support combiner "
                f"{self.config.combiner!r}")
        # The request path scores one new page against every indexed
        # page through the config's scoring backend (one batched
        # one-vs-many call per similarity function); backends are
        # bit-identical, so assignments never depend on the choice.
        self._backend = resolve_backend(self.config.backend)
        self._state: _FittedState | None = None
        self._features: dict[str, PageFeatures] = {}
        self._clusters: list[set[str]] = []

    @classmethod
    def from_model(
        cls,
        model: ResolverModel,
        block: NameCollection,
        features: dict[str, PageFeatures],
        model_block: str | None = None,
        graphs: dict | None = None,
    ) -> "IncrementalResolver":
        """Serve from an already-fitted model — no labels consumed.

        The block is resolved once with ``model.predict`` to seed the
        entity index; subsequent :meth:`add_page` calls reuse the model's
        fitted layers.

        Args:
            model: a fitted resolver model (e.g. ``ResolverModel.load``).
            block: the initial page collection (labels not required).
            features: extracted features for every page of the block.
            model_block: reuse another name's fitted state (for names the
                model was never fitted on).
            graphs: precomputed similarity graphs for the block; pass the
                same object ``fit`` ran on to skip the quadratic
                similarity step entirely.

        Raises:
            ValueError: for model combiners without incremental support.
            KeyError: when the model has no state for the block's name.
        """
        resolver = cls(model.config)
        if graphs is None:
            graphs = compute_similarity_graphs(
                block, features, list(resolver._build_functions().values()),
                backend=model.config.backend)
        prediction = model.predict_block(block, graphs=graphs,
                                         model_block=model_block)
        fitted = model.blocks[model_block or block.query_name]
        resolver._adopt(fitted, prediction, features)
        return resolver

    @classmethod
    def from_fitted(
        cls,
        config: ResolverConfig,
        fitted: FittedBlock,
        features: dict[str, PageFeatures] | None = None,
        clusters: list[set[str]] | None = None,
    ) -> "IncrementalResolver":
        """Adopt fitted state directly, without a seeding prediction.

        Unlike :meth:`from_model` this never resolves an initial block:
        the entity index starts from ``clusters`` (empty by default) and
        every page arrives through :meth:`add_page`.  This is the
        request-path constructor
        :class:`~repro.pipeline.session.ResolutionSession` uses when the
        first page of a never-served name shows up.

        The combination machinery comes from the fitted block's stored
        ``combiner_params``: the chosen layer under best-graph selection
        (falling back to the highest stored graph accuracy when the
        stored winner is absent, matching
        :meth:`BestGraphSelector.apply`), the learned threshold under
        weighted averaging.

        Args:
            config: the configuration the state was fitted under.
            fitted: one block's fitted state (e.g. from a loaded model).
            features: features of the pages already in ``clusters``.
            clusters: initial entity partition over those pages.

        Raises:
            ValueError: for unsupported combiners.
        """
        resolver = cls(config)
        chosen = None
        weights: list[float] = []
        if config.combiner == "best_graph":
            label = fitted.combiner_params.get("chosen_layer")
            chosen = next((layer for layer in fitted.layers
                           if layer.label == label), None)
            if chosen is None:
                chosen = max(fitted.layers,
                             key=lambda layer: layer.graph_accuracy)
        else:
            weights = [max(layer.training_accuracy, 1e-9)
                       for layer in fitted.layers]
        threshold = fitted.combiner_params.get("threshold")
        resolver._state = _FittedState(
            layers=list(fitted.layers),
            functions=resolver._build_functions(),
            chosen_layer=chosen,
            combination_threshold=(float(threshold)
                                   if threshold is not None else None),
            layer_weights=weights,
        )
        resolver._features = dict(features or {})
        resolver._clusters = [set(cluster) for cluster in (clusters or [])]
        return resolver

    @property
    def is_fitted(self) -> bool:
        return self._state is not None

    def clusters(self) -> Clustering:
        """The current entity partition.

        Raises:
            RuntimeError: before :meth:`fit`.
        """
        self._require_fitted()
        return Clustering(self._clusters)

    def fit(self, block: NameCollection,
            features: dict[str, PageFeatures],
            training_seed: int = 0) -> Clustering:
        """Fit on an initial *labeled* block and freeze the machinery.

        Convenience wrapper over ``EntityResolver.fit`` +
        :meth:`from_model` for callers that start from labels rather than
        a saved model.

        Args:
            block: the initial (labeled) page collection.
            features: extracted features for every page of the block.
            training_seed: training-sample seed.
        """
        resolver = EntityResolver(self.config)
        graphs = compute_similarity_graphs(
            block, features, resolver._functions,
            backend=self.config.backend)
        model = resolver.fit(block, training_seed=training_seed,
                             graphs=graphs)
        prediction = model.predict_block(block, graphs=graphs)
        self._adopt(model.blocks[block.query_name], prediction, features)
        return prediction.predicted

    def _build_functions(self) -> dict[str, SimilarityFunction]:
        return {name: function_by_name(name)
                for name in self.config.function_names}

    def _adopt(self, fitted: FittedBlock, prediction: BlockPrediction,
               features: dict[str, PageFeatures]) -> None:
        """Freeze fitted state and the initial partition."""
        chosen = None
        weights: list[float] = []
        if self.config.combiner == "best_graph":
            chosen = next(layer for layer in fitted.layers
                          if layer.label == prediction.chosen_layer)
        else:
            weights = [max(layer.training_accuracy, 1e-9)
                       for layer in fitted.layers]
        self._state = _FittedState(
            layers=list(fitted.layers),
            functions=self._build_functions(),
            chosen_layer=chosen,
            combination_threshold=prediction.combination.threshold,
            layer_weights=weights,
        )
        self._features = dict(features)
        self._clusters = [set(cluster) for cluster in prediction.predicted]

    def indexed_features(self) -> list[PageFeatures]:
        """Features of every indexed page, in the order they were added.

        The request-coalescing layer scores a whole micro-batch of new
        pages against exactly this ordered set in one masked backend
        call; exposing it (rather than the raw dict) keeps the add order
        — which fixes the scoring block's page positions — part of the
        contract.
        """
        self._require_fitted()
        return list(self._features.values())

    def scoring_function_names(self) -> list[str]:
        """Similarity functions a link decision actually consults.

        Best-graph selection decides with the chosen layer's function
        alone; weighted averaging folds every layer, so it needs the
        whole battery.  Batched scorers use this to avoid computing
        functions whose scores the combiner would ignore.
        """
        self._require_fitted()
        state = self._state
        if state.chosen_layer is not None:
            return [state.chosen_layer.function_name]
        return list(state.functions)

    def link_probability(self, new: PageFeatures,
                         existing: PageFeatures) -> float:
        """Combined link probability of (new page, existing page).

        Raises:
            RuntimeError: before :meth:`fit`.
        """
        self._require_fitted()
        return self._pair_probabilities(new, [existing])[0]

    def _pair_probabilities(
        self, new: PageFeatures, existing: list[PageFeatures],
        scores: dict[str, dict[PairKey, float]] | None = None,
    ) -> list[float]:
        """Combined link probabilities of ``new`` against many pages.

        One batched :meth:`~repro.similarity.backends.ScoringBackend.
        pair_scores` call per similarity function (layers sharing a
        function reuse its scores — the values are pure per pair), then
        the combiner's stored parameters fold the per-layer
        probabilities exactly as the one-pair path always has.

        ``scores`` (``function name -> {pair_key: score}``) substitutes
        precomputed pair scores for the backend calls — the coalescing
        path of :mod:`repro.serving` scores a whole micro-batch in one
        masked pass and feeds the values through here.  Precomputed
        scores must be bit-identical to what ``pair_scores`` would
        return (the backends' masked block sweep guarantees this), so
        the fold below never knows the difference.
        """
        state = self._state
        if state.chosen_layer is not None:
            layer = state.chosen_layer
            function = state.functions[layer.function_name]
            link = layer.fitted.link_probability
            if scores is not None:
                table = scores[layer.function_name]
                return [link(table[pair_key(new.doc_id, other.doc_id)])
                        for other in existing]
            return [link(score)
                    for score in self._backend.pair_scores(function, new,
                                                           existing)]
        if scores is not None:
            scores_by_function = {
                name: [scores[name][pair_key(new.doc_id, other.doc_id)]
                       for other in existing]
                for name in state.functions}
        else:
            scores_by_function = {
                name: self._backend.pair_scores(function, new, existing)
                for name, function in state.functions.items()}
        total = sum(state.layer_weights)
        probabilities = []
        for index in range(len(existing)):
            numerator = 0.0
            for layer, weight in zip(state.layers, state.layer_weights):
                probability = layer.fitted.link_probability(
                    scores_by_function[layer.function_name][index])
                numerator += weight * probability
            probabilities.append(numerator / total)
        return probabilities

    def _link_decision_threshold(self) -> float:
        """The probability cut-off that asserts a link."""
        state = self._state
        if state.chosen_layer is not None:
            return 0.5  # region-accuracy majority rule
        return state.combination_threshold if (
            state.combination_threshold is not None) else 0.5

    def add_page(self, features: PageFeatures,
                 scores: dict[str, dict[PairKey, float]] | None = None,
                 ) -> Assignment:
        """Assign one new page to an entity (or create a new one).

        The page joins the cluster with the highest *mean* link probability
        over its members, provided that mean clears the fitted decision
        threshold; otherwise it becomes a new singleton entity.

        Args:
            features: the new page's extracted features.
            scores: optional precomputed pair scores (``function name ->
                {pair_key: score}``) covering this page against every
                indexed page — the request-coalescing fast path; must be
                bit-identical to backend ``pair_scores`` values.

        Raises:
            RuntimeError: before :meth:`fit`.
            ValueError: if the doc id already exists.
        """
        self._require_fitted()
        if features.doc_id in self._features:
            raise ValueError(f"page {features.doc_id!r} already resolved")

        # One batched scoring pass over every indexed page; the
        # per-cluster means then fold exactly as the pairwise loop did.
        members = [member for cluster in self._clusters
                   for member in cluster]
        probabilities = dict(zip(members, self._pair_probabilities(
            features, [self._features[member] for member in members],
            scores=scores)))
        best_index = -1
        best_probability = -1.0
        for index, cluster in enumerate(self._clusters):
            total = sum(probabilities[member] for member in cluster)
            mean_probability = total / len(cluster)
            if mean_probability > best_probability:
                best_probability = mean_probability
                best_index = index

        threshold = self._link_decision_threshold()
        if best_index >= 0 and best_probability > threshold:
            self._clusters[best_index].add(features.doc_id)
            assignment = Assignment(
                doc_id=features.doc_id,
                cluster_index=best_index,
                created_new_cluster=False,
                link_probability=best_probability,
            )
        else:
            self._clusters.append({features.doc_id})
            assignment = Assignment(
                doc_id=features.doc_id,
                cluster_index=len(self._clusters) - 1,
                created_new_cluster=True,
                link_probability=max(best_probability, 0.0),
            )
        self._features[features.doc_id] = features
        return assignment

    def add_pages(self, pages: list[PageFeatures]) -> list[Assignment]:
        """Assign several new pages in order."""
        return [self.add_page(features) for features in pages]

    def _require_fitted(self) -> None:
        if self._state is None:
            raise RuntimeError("IncrementalResolver used before fit()")
