"""The paper's entity-resolution framework (§IV).

Pipeline: per-function weighted pair graphs → decision criteria learned on
a small training sample (plain thresholds, equal-width regions, k-means
regions with per-region accuracy estimation) → decision graphs with
accuracy estimates → combination (best-graph selection or accuracy-weighted
averaging) → clustering (transitive closure or correlation clustering).

``EntityResolver.fit`` (Algorithm 1's learning steps) ties it together and
returns a :class:`ResolverModel` that predicts on unlabeled pages,
evaluates against ground truth, and serializes to JSON.  New combiners,
decision criteria, clusterers, similarity functions, sampling modes and
blockers plug in through :mod:`repro.core.registry`.
"""

from repro.core.labels import TrainingSample
from repro.core.registry import (
    BLOCKERS,
    CLUSTERERS,
    COMBINERS,
    CRITERIA,
    SAMPLING_MODES,
    SIMILARITIES,
    STAGES,
    Registry,
    register_blocker,
    register_clusterer,
    register_combiner,
    register_criterion,
    register_sampling_mode,
    register_similarity,
    register_stage,
)
from repro.core.thresholds import LearnedThreshold, learn_threshold
from repro.core.regions import (
    EqualWidthRegions,
    KMeansRegions,
    Regions,
    ThresholdRegions,
    fit_regions,
)
from repro.core.accuracy import RegionAccuracyProfile, overall_accuracy
from repro.core.decisions import (
    DecisionCriterion,
    FittedDecision,
    RegionAccuracyDecision,
    ThresholdDecision,
    build_criteria,
)
from repro.core.combination import (
    BestGraphSelector,
    CombinationResult,
    Combiner,
    DecisionLayer,
    MajorityVoteCombiner,
    WeightedAverageCombiner,
    build_combiner,
)
from repro.core.config import ResolverConfig
from repro.core.entropy import (
    EntropyWeightedCombiner,
    feature_availability,
    information_gain,
    shannon_entropy,
    value_entropy,
)
from repro.core.clusterers import cluster_combination
from repro.core.model import (
    BlockPrediction,
    BlockResolution,
    CollectionPrediction,
    CollectionResolution,
    FittedBlock,
    FittedLayer,
    ResolverModel,
    compute_similarity_graphs,
)
from repro.core.resolver import EntityResolver
from repro.core.incremental import Assignment, IncrementalResolver

__all__ = [
    "TrainingSample",
    "LearnedThreshold",
    "learn_threshold",
    "Regions",
    "EqualWidthRegions",
    "KMeansRegions",
    "ThresholdRegions",
    "fit_regions",
    "RegionAccuracyProfile",
    "overall_accuracy",
    "DecisionCriterion",
    "FittedDecision",
    "ThresholdDecision",
    "RegionAccuracyDecision",
    "build_criteria",
    "DecisionLayer",
    "Combiner",
    "CombinationResult",
    "BestGraphSelector",
    "WeightedAverageCombiner",
    "MajorityVoteCombiner",
    "build_combiner",
    "ResolverConfig",
    "EntropyWeightedCombiner",
    "shannon_entropy",
    "feature_availability",
    "value_entropy",
    "information_gain",
    "EntityResolver",
    "IncrementalResolver",
    "Assignment",
    "ResolverModel",
    "FittedBlock",
    "FittedLayer",
    "BlockPrediction",
    "CollectionPrediction",
    "BlockResolution",
    "CollectionResolution",
    "compute_similarity_graphs",
    "cluster_combination",
    "Registry",
    "BLOCKERS",
    "COMBINERS",
    "CRITERIA",
    "CLUSTERERS",
    "SIMILARITIES",
    "SAMPLING_MODES",
    "STAGES",
    "register_blocker",
    "register_combiner",
    "register_criterion",
    "register_clusterer",
    "register_similarity",
    "register_sampling_mode",
    "register_stage",
]
