"""Optimal-threshold learning (§IV-A).

For each similarity function the paper chooses the threshold that
maximizes the number of correct link decisions on the training sample.
The search is exact: with the sample sorted by value, every distinct
decision boundary is evaluated with prefix sums in O(n log n).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

#: Threshold meaning "never link" (no value in [0, 1] reaches it).
NEVER_LINK = 1.1
#: Threshold meaning "always link".
ALWAYS_LINK = 0.0


@dataclass(frozen=True)
class LearnedThreshold:
    """A fitted decision threshold with its training accuracy.

    The decision rule is ``link iff value >= threshold``.
    """

    threshold: float
    training_accuracy: float
    n_training: int

    def decide(self, value: float) -> bool:
        return value >= self.threshold

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable snapshot (exact float round-trip)."""
        return {
            "threshold": self.threshold,
            "training_accuracy": self.training_accuracy,
            "n_training": self.n_training,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "LearnedThreshold":
        """Rebuild a threshold saved by :meth:`to_dict`."""
        return cls(
            threshold=float(payload["threshold"]),
            training_accuracy=float(payload["training_accuracy"]),
            n_training=int(payload["n_training"]),
        )


def learn_threshold(labeled_values: Sequence[tuple[float, bool]]) -> LearnedThreshold:
    """Fit the accuracy-maximizing threshold on (value, label) pairs.

    Candidate thresholds are 0.0 ("always link"), the midpoints between
    consecutive distinct values, and :data:`NEVER_LINK`.  Ties prefer the
    *higher* threshold (more conservative linking), which matters because
    transitive closure amplifies false links far more than false splits.

    An empty sample yields the conservative ``NEVER_LINK`` rule with
    accuracy 0.0.
    """
    if not labeled_values:
        return LearnedThreshold(threshold=NEVER_LINK, training_accuracy=0.0,
                                n_training=0)

    ordered = sorted(labeled_values)
    n_total = len(ordered)
    n_positives = sum(1 for _, label in ordered if label)

    # Sweep boundaries from low to high.  With threshold below everything,
    # all pairs are predicted "link": correct = n_positives.
    best_threshold = ALWAYS_LINK
    best_correct = n_positives

    # After placing the boundary just above ordered[i], pairs 0..i are
    # predicted "no link" and the rest "link".
    negatives_below = 0
    positives_below = 0
    for index, (value, label) in enumerate(ordered):
        if label:
            positives_below += 1
        else:
            negatives_below += 1
        next_value = ordered[index + 1][0] if index + 1 < n_total else None
        if next_value is not None and next_value == value:
            continue  # boundary cannot separate equal values
        correct = negatives_below + (n_positives - positives_below)
        if correct >= best_correct:  # >= prefers the higher threshold
            best_correct = correct
            if next_value is None:
                best_threshold = NEVER_LINK
            else:
                boundary = (value + next_value) / 2.0
                if boundary <= value:
                    # Float rounding collapsed the midpoint onto the lower
                    # value (adjacent/denormal floats); the next value
                    # itself is the smallest threshold that separates.
                    boundary = next_value
                best_threshold = boundary

    return LearnedThreshold(
        threshold=best_threshold,
        training_accuracy=best_correct / n_total,
        n_training=n_total,
    )
