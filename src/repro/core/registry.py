"""Plugin registries for the resolver's pluggable backends.

The framework has six extension axes — combiners (§IV-B), decision
criteria (§IV-A), clusterers (§IV-C), similarity functions (Table I),
block executors (the runtime engine) and blockers (candidate-pair
generation, the §IV-C footnote's general setting) — plus the
training-sampling mode of the evaluation protocol.  Each axis is a
:class:`Registry`: a named map
from config strings to factories, so new backends register themselves
instead of editing if-chains in ``repro.core``.

After registration, ``ResolverConfig`` validates the backend's name and
``EntityResolver``/``ResolverModel`` build it through the registry;
nothing in ``repro.core`` needs to change.  ``ResolverModel.load``
resolves backends the same way, so a process that loads a saved model
only needs the backend's module imported first.

Writing your own backend — a combiner and a similarity function
---------------------------------------------------------------

A combiner subclasses :class:`~repro.core.combination.Combiner` and must
be constructible with no arguments; a similarity function is a
:class:`~repro.similarity.base.SimilarityFunction` instance.  This is a
complete, runnable plugin module::

    from repro.core.combination import (
        Combiner, DecisionGraph, CombinationResult, WeightedPairGraph)
    from repro.core.registry import register_combiner, register_similarity
    from repro.similarity.base import SimilarityFunction
    from repro.similarity.measures import jaccard

    @register_combiner("union")
    class UnionCombiner(Combiner):
        '''Edge iff any layer asserts it (maximal recall).'''
        name = "union"

        def combine(self, layers, training):
            return self.apply(layers, {})

        def apply(self, layers, params):
            # Label-free: predict-time serving re-runs this from params.
            nodes = list(layers[0].graph.nodes)
            edges = set().union(*(layer.graph.edges for layer in layers))
            probabilities = {pair: 1.0 for pair in edges}
            return CombinationResult(
                graph=DecisionGraph(nodes=nodes, edges=edges),
                probabilities=WeightedPairGraph(nodes=nodes,
                                                weights=probabilities))

    register_similarity("F_url_tokens")(SimilarityFunction(
        "F_url_tokens", "URL tokens", "jaccard",
        lambda left, right: jaccard(set(left.url.split("/")),
                                    set(right.url.split("/")))))

Then ``ResolverConfig(combiner="union")`` or
``ResolverConfig(function_names=(..., "F_url_tokens"))`` validates, fitting
uses the plugin, and models fitted with it load back in any process that
imports the plugin module before :meth:`ResolverModel.load`.  Combiners
must implement ``apply`` (label-free re-combination from stored
``fit_params``) for models to serve predictions; see
:class:`~repro.core.combination.Combiner` for the contract.  Similarity
functions may additionally carry a ``preparer`` for the batched engine
path (see :mod:`repro.similarity.base`) — optional, the plain scorer is
used otherwise.

Executor backends (the ``EXECUTORS`` axis) are factories
``(workers: int) -> BlockExecutor``; see :mod:`repro.runtime.executor`
for the scheduling contract and determinism requirements.

The built-in backends live in ordinary modules (``repro.core.combination``,
``repro.core.decisions``, ``repro.core.clusterers``,
``repro.runtime.executor``, ``repro.similarity.functions``/``extended``,
``repro.ml.sampling``) and are loaded lazily on first registry read, which
keeps this module import-cycle free: it depends on nothing inside
``repro``.
"""

from __future__ import annotations

import importlib
from collections.abc import Callable, Iterator
from typing import TypeVar

T = TypeVar("T")

#: Modules whose import registers every built-in backend.  Loaded lazily on
#: first registry *read*; registration itself never triggers loading, so the
#: built-in modules can import this one freely.
_BUILTIN_MODULES = (
    "repro.core.decisions",
    "repro.core.combination",
    "repro.core.clusterers",
    "repro.runtime.executor",
    # Blockers live outside repro.core and only import data-model
    # packages (corpus, graph, extraction) plus this module.
    "repro.blocking.name_blocking",
    "repro.blocking.token_blocking",
    "repro.blocking.sorted_neighborhood",
    # The pipeline package keeps its module-level imports outside
    # repro.core (stage bodies import core lazily), so loading it here
    # cannot re-enter a partially imported core module.
    "repro.pipeline.stages",
)

_builtins_loaded = False


def _load_builtins() -> None:
    global _builtins_loaded
    if _builtins_loaded:
        return
    # Flip the flag first: the built-in modules import this module, and a
    # re-entrant read during their import must not recurse.
    _builtins_loaded = True
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)
    # Modules outside repro.core cannot import this one at module level
    # (repro.core.__init__ imports resolver, which imports them back), so
    # their built-ins are bridged here instead of self-registering.
    from repro.ml.sampling import BUILTIN_SAMPLING_MODES
    from repro.similarity.extended import EXTENDED_REGISTRY
    from repro.similarity.functions import _REGISTRY as _base_functions

    for name, function in {**_base_functions, **EXTENDED_REGISTRY}.items():
        SIMILARITIES._entries.setdefault(name, function)
    for name, sampler in BUILTIN_SAMPLING_MODES.items():
        SAMPLING_MODES._entries.setdefault(name, sampler)


class Registry:
    """A named map from config strings to backend factories.

    Args:
        kind: human-readable axis name used in error messages, e.g.
            ``"combiner"``.
        plural: plural form for error messages (default: ``kind + "s"``).
    """

    def __init__(self, kind: str, plural: str | None = None):
        self.kind = kind
        self.plural = plural or f"{kind}s"
        self._entries: dict[str, object] = {}

    def add(self, name: str, entry: T, replace: bool = False) -> T:
        """Register ``entry`` under ``name``.

        Args:
            name: the config string for this backend.
            entry: the factory/object to register.
            replace: allow overwriting an existing registration.

        Raises:
            ValueError: when ``name`` is taken and ``replace`` is false.
        """
        # Load built-ins first so a collision with one is caught (or an
        # intentional replace=True override sticks) regardless of whether
        # anything has read the registry yet.  Re-entrant calls from the
        # built-in modules themselves are cut off by the loaded flag.
        _load_builtins()
        if not replace and name in self._entries:
            raise ValueError(
                f"{self.kind} {name!r} is already registered; "
                f"pass replace=True to override")
        self._entries[name] = entry
        return entry

    def register(self, name: str | None = None,
                 replace: bool = False) -> Callable[[T], T]:
        """Decorator form of :meth:`add`.

        Args:
            name: registration name; defaults to the decorated object's
                ``name`` attribute (combiners and similarity functions
                carry one) or its ``__name__``.
            replace: allow overwriting an existing registration.
        """
        def decorate(entry: T) -> T:
            key = name
            if key is None:
                key = getattr(entry, "name", None)
            if key is None or not isinstance(key, str):
                key = getattr(entry, "__name__", None)
            if not key:
                raise ValueError(f"cannot infer a {self.kind} name for {entry!r}")
            return self.add(key, entry, replace=replace)
        return decorate

    def get(self, name: str) -> object:
        """The entry registered under ``name``.

        Raises:
            ValueError: for unknown names, listing the known values.
        """
        _load_builtins()
        try:
            return self._entries[name]
        except KeyError:
            raise ValueError(self.unknown_message(name)) from None

    def names(self) -> tuple[str, ...]:
        """All registered names, sorted."""
        _load_builtins()
        return tuple(sorted(self._entries))

    def validate(self, name: str) -> None:
        """Raise unless ``name`` is registered.

        Raises:
            ValueError: for unknown names, listing the known values.
        """
        if name not in self:
            raise ValueError(self.unknown_message(name))

    def unknown_message(self, name: str) -> str:
        return (f"unknown {self.kind}: {name!r}; "
                f"known {self.plural} are: {', '.join(self.names())}")

    def __contains__(self, name: object) -> bool:
        _load_builtins()
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        _load_builtins()
        return len(self._entries)

    def __repr__(self) -> str:
        return f"Registry({self.kind}: {', '.join(sorted(self._entries))})"


#: name -> :class:`~repro.core.combination.Combiner` subclass (no-arg
#: constructible).
COMBINERS = Registry("combiner")

#: name -> factory ``(k: int) -> DecisionCriterion``.
CRITERIA = Registry("decision criterion", plural="decision criteria")

#: name -> callable ``(combination: CombinationResult, seed: int) ->
#: Iterable[set[str]]`` producing the final partition.
CLUSTERERS = Registry("clusterer")

#: name -> :class:`~repro.similarity.base.SimilarityFunction`.
SIMILARITIES = Registry("similarity function")

#: name -> callable ``(block, fraction, rng) -> list[LabeledPair]``.
SAMPLING_MODES = Registry("sampling mode")

#: name -> factory ``(workers: int) ->
#: :class:`~repro.runtime.executor.BlockExecutor`` scheduling block tasks.
EXECUTORS = Registry("executor")

#: name -> no-arg-constructible :class:`~repro.blocking.base.Blocker`
#: subclass generating candidate pairs; ``ResolverConfig.blocker``
#: selects one and the pipeline's ``block`` stage builds it.
BLOCKERS = Registry("blocker")

#: name -> no-arg-constructible :class:`~repro.pipeline.stage.Stage`
#: subclass; plans are composed from these by
#: :func:`repro.pipeline.plan.Pipeline.from_names` and the default-plan
#: builders.
STAGES = Registry("pipeline stage")


def register_combiner(name: str | None = None, replace: bool = False):
    """Class decorator registering a no-arg-constructible combiner."""
    return COMBINERS.register(name, replace=replace)


def register_criterion(name: str | None = None, replace: bool = False):
    """Decorator registering a criterion factory ``(k) -> DecisionCriterion``."""
    return CRITERIA.register(name, replace=replace)


def register_clusterer(name: str | None = None, replace: bool = False):
    """Decorator registering a clusterer ``(combination, seed) -> clusters``."""
    return CLUSTERERS.register(name, replace=replace)


def register_similarity(name: str | None = None, replace: bool = False):
    """Decorator registering a :class:`SimilarityFunction` by name."""
    return SIMILARITIES.register(name, replace=replace)


def register_sampling_mode(name: str | None = None, replace: bool = False):
    """Decorator registering a training-sampling mode."""
    return SAMPLING_MODES.register(name, replace=replace)


def register_executor(name: str | None = None, replace: bool = False):
    """Decorator registering a block-executor factory ``(workers) -> BlockExecutor``."""
    return EXECUTORS.register(name, replace=replace)


def register_blocker(name: str | None = None, replace: bool = False):
    """Class decorator registering a no-arg-constructible blocker.

    Registered blockers become valid ``ResolverConfig(blocker=...)``
    values; the pipeline's ``block`` stage resolves the configured name
    through :data:`BLOCKERS` and drives the whole resolution pass off
    the blocker's candidate pairs (see :mod:`repro.blocking.base` and
    ``docs/blocking.md``).
    """
    return BLOCKERS.register(name, replace=replace)


def register_stage(name: str | None = None, replace: bool = False):
    """Class decorator registering a no-arg-constructible pipeline stage.

    Registered stages are addressable by name in
    :meth:`~repro.pipeline.plan.Pipeline.from_names`; registering with
    ``replace=True`` under a built-in name (``"block"``, ``"extract"``,
    ``"similarity"``, ``"fit"``, ``"decide"``, ``"cluster"``) swaps that
    stage in every default plan built afterwards.
    """
    return STAGES.register(name, replace=replace)
