"""Labeled training samples.

A :class:`TrainingSample` is the small labeled pair set (paper: 10 % of the
data) on which thresholds, regions, accuracy profiles and combination
weights are learned.  It also joins labels with one function's similarity
values, the (value, label) view every criterion fits on.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.graph.entity_graph import PairKey, WeightedPairGraph


@dataclass(frozen=True)
class TrainingSample:
    """An immutable labeled pair sample for one block.

    Attributes:
        pairs: (canonical pair key, is-same-person) tuples.
    """

    pairs: tuple[tuple[PairKey, bool], ...]

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[PairKey, bool]]) -> "TrainingSample":
        return cls(pairs=tuple(pairs))

    def __len__(self) -> int:
        return len(self.pairs)

    def n_positives(self) -> int:
        """Number of same-person (link) pairs in the sample."""
        return sum(1 for _, label in self.pairs if label)

    def n_negatives(self) -> int:
        return len(self.pairs) - self.n_positives()

    def link_prior(self) -> float:
        """Fraction of link pairs; 0.5 (uninformative) on an empty sample."""
        if not self.pairs:
            return 0.5
        return self.n_positives() / len(self.pairs)

    def labeled_values(self, graph: WeightedPairGraph) -> list[tuple[float, bool]]:
        """Join the sample with one function's similarity values.

        Pairs missing from the graph read as similarity 0.0 (consistent
        with :class:`WeightedPairGraph` semantics).
        """
        weights = graph.weights
        return [(weights.get(pair, 0.0), label) for pair, label in self.pairs]

    def pair_keys(self) -> set[PairKey]:
        return {pair for pair, _ in self.pairs}

    def label_of(self, pair: PairKey) -> bool:
        """Ground-truth label of a sampled pair.

        Raises:
            KeyError: if the pair is not in the sample.
        """
        for key, label in self.pairs:
            if key == pair:
                return label
        raise KeyError(pair)
