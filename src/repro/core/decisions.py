"""Decision criteria D_j (§IV-A).

A decision criterion turns one function's similarity value into a binary
same-person decision plus a link-probability estimate.  The paper studies:

* ``ThresholdDecision`` — link iff value ≥ learned threshold (the I
  columns of Table II);
* ``RegionAccuracyDecision`` — partition the value space (equal-width or
  k-means regions), estimate per-region link accuracy, and side with the
  region majority (the C columns).

Both expose the same fitted interface, because a threshold is just a
two-region partition whose region accuracies are learned the same way.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.accuracy import RegionAccuracyProfile, overall_accuracy
from repro.core.registry import CRITERIA, register_criterion
from repro.core.regions import ThresholdRegions, fit_regions
from repro.core.thresholds import LearnedThreshold, learn_threshold


@dataclass(frozen=True)
class FittedDecision:
    """A criterion fitted on one (function, training sample) combination.

    Attributes:
        criterion_name: e.g. ``"threshold"`` or ``"kmeans"``.
        profile: the per-region accuracy profile backing probabilities.
        threshold: the learned threshold (``None`` for region criteria).
        training_accuracy: fraction of correct decisions on the training
            sample — the paper's acc(G_Dj), used for combining.
    """

    criterion_name: str
    profile: RegionAccuracyProfile
    threshold: LearnedThreshold | None
    training_accuracy: float

    def decide(self, value: float) -> bool:
        """Binary same-person decision for a similarity value."""
        if self.threshold is not None:
            return self.threshold.decide(value)
        return self.profile.decide(value)

    def link_probability(self, value: float) -> float:
        """Estimated P(link) for the value (the §IV-B edge weight)."""
        return self.profile.link_probability(value)

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable snapshot of the fitted state."""
        return {
            "criterion_name": self.criterion_name,
            "profile": self.profile.to_dict(),
            "threshold": (None if self.threshold is None
                          else self.threshold.to_dict()),
            "training_accuracy": self.training_accuracy,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "FittedDecision":
        """Rebuild a fitted decision saved by :meth:`to_dict`."""
        threshold_payload = payload["threshold"]
        return cls(
            criterion_name=str(payload["criterion_name"]),
            profile=RegionAccuracyProfile.from_dict(payload["profile"]),
            threshold=(None if threshold_payload is None
                       else LearnedThreshold.from_dict(threshold_payload)),
            training_accuracy=float(payload["training_accuracy"]),
        )


class DecisionCriterion(ABC):
    """A decision-criterion family, fittable per function."""

    name: str

    @abstractmethod
    def fit(self, labeled_values: Sequence[tuple[float, bool]]) -> FittedDecision:
        """Fit on training (similarity value, is-link) pairs."""


class ThresholdDecision(DecisionCriterion):
    """Link iff value ≥ the accuracy-maximizing learned threshold."""

    name = "threshold"

    def fit(self, labeled_values: Sequence[tuple[float, bool]]) -> FittedDecision:
        threshold = learn_threshold(labeled_values)
        regions = ThresholdRegions(threshold.threshold)
        profile = RegionAccuracyProfile(regions, labeled_values)
        decisions = [threshold.decide(value) for value, _ in labeled_values]
        labels = [label for _, label in labeled_values]
        accuracy = overall_accuracy(decisions, labels) if labels else 0.0
        return FittedDecision(
            criterion_name=self.name,
            profile=profile,
            threshold=threshold,
            training_accuracy=accuracy,
        )


class RegionAccuracyDecision(DecisionCriterion):
    """Per-region majority decisions over a fitted value-space partition.

    Args:
        method: ``"equal_width"`` or ``"kmeans"`` (§IV-A's two options).
        k: bin/cluster count (the paper uses ~10).
    """

    def __init__(self, method: str = "kmeans", k: int = 10):
        if method not in ("equal_width", "kmeans"):
            raise ValueError(f"unknown region method: {method!r}")
        self.method = method
        self.k = k
        self.name = method

    def fit(self, labeled_values: Sequence[tuple[float, bool]]) -> FittedDecision:
        values = [value for value, _ in labeled_values]
        if not values:
            # Degenerate: no training data; a single uninformative region.
            regions = ThresholdRegions(threshold=1.1)
        else:
            regions = fit_regions(self.method, values, k=self.k)
        profile = RegionAccuracyProfile(regions, labeled_values)
        decisions = [profile.decide(value) for value, _ in labeled_values]
        labels = [label for _, label in labeled_values]
        accuracy = overall_accuracy(decisions, labels) if labels else 0.0
        return FittedDecision(
            criterion_name=self.name,
            profile=profile,
            threshold=None,
            training_accuracy=accuracy,
        )


@register_criterion("threshold")
def _threshold_criterion(k: int) -> DecisionCriterion:
    return ThresholdDecision()


@register_criterion("equal_width")
def _equal_width_criterion(k: int) -> DecisionCriterion:
    return RegionAccuracyDecision(method="equal_width", k=k)


@register_criterion("kmeans")
def _kmeans_criterion(k: int) -> DecisionCriterion:
    return RegionAccuracyDecision(method="kmeans", k=k)


def build_criteria(names: Sequence[str], k: int = 10) -> list[DecisionCriterion]:
    """Instantiate criteria from config names.

    Resolves through the :data:`~repro.core.registry.CRITERIA` registry
    (factories of signature ``(k) -> DecisionCriterion``), so criteria
    added with ``@register_criterion`` work here without editing this
    module.

    Args:
        names: built-ins are ``"threshold"``, ``"equal_width"``,
            ``"kmeans"``.
        k: region count passed to each factory.

    Raises:
        ValueError: for unknown criterion names.
    """
    return [CRITERIA.get(name)(k) for name in names]
