"""Algorithm 1 — the end-to-end entity-resolution procedure.

Per block (one ambiguous name):

1. compute the complete weighted graph ``G_w^fi`` for every similarity
   function (blocking means pairs are only formed within the block);
2. learn the decision criteria D_j from the training sample;
3. apply each criterion to get decision graphs ``G^i_Dj`` with accuracy
   estimates;
4. combine the layers into ``G_combined``;
5. cluster (transitive closure or correlation clustering);
6. output the final partition.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.combination import CombinationResult, DecisionLayer, build_combiner
from repro.core.config import ResolverConfig
from repro.core.decisions import build_criteria
from repro.core.labels import TrainingSample
from repro.corpus.documents import DocumentCollection, NameCollection
from repro.corpus.vocabulary import build_vocabulary
from repro.extraction.features import PageFeatures
from repro.extraction.pipeline import ExtractionPipeline
from repro.graph.components import UnionFind
from repro.graph.correlation import correlation_cluster
from repro.graph.entity_graph import DecisionGraph, WeightedPairGraph, pair_key
from repro.graph.star import star_cluster
from repro.graph.transitive import transitive_closure_clusters
from repro.metrics.clusterings import Clustering, clustering_from_assignments
from repro.metrics.report import MetricReport, evaluate_clustering, mean_report
from repro.ml.sampling import sample_training_pairs
from repro.similarity.base import SimilarityFunction
from repro.similarity.functions import functions_subset


def _graph_accuracy(graph: DecisionGraph, training: TrainingSample) -> float:
    """acc(G_Dj): agreement of the graph's *implied* equivalence with the
    training labels.

    The implied equivalence is the transitive closure (the final clustering
    is the closure, §IV-C), so an over-linking graph whose chains merge
    distinct persons scores poorly even if its individual edge decisions
    looked fine in isolation.
    """
    if not training.pairs:
        return 0.0
    forest = UnionFind(graph.nodes)
    for left, right in graph.edges:
        forest.union(left, right)
    correct = sum(
        1 for (left, right), label in training.pairs
        if forest.connected(left, right) == label
    )
    return correct / len(training.pairs)


def compute_similarity_graphs(
    block: NameCollection,
    features: dict[str, PageFeatures],
    functions: list[SimilarityFunction],
) -> dict[str, WeightedPairGraph]:
    """The complete weighted graph ``G_w^fi`` for every function.

    This is the quadratic step; experiments precompute and cache these
    graphs per dataset because similarity values do not depend on the
    training sample.
    """
    ids = block.page_ids()
    graphs = {
        function.name: WeightedPairGraph(nodes=list(ids))
        for function in functions
    }
    for i, left_id in enumerate(ids):
        left = features[left_id]
        for right_id in ids[i + 1:]:
            right = features[right_id]
            key = pair_key(left_id, right_id)
            for function in functions:
                graphs[function.name].weights[key] = function(left, right)
    return graphs


@dataclass
class BlockResolution:
    """Resolution output and diagnostics for one name's block."""

    query_name: str
    predicted: Clustering
    truth: Clustering
    report: MetricReport
    combination: CombinationResult
    layer_accuracies: dict[str, float] = field(default_factory=dict)

    @property
    def chosen_layer(self) -> str | None:
        """Winning layer under best-graph selection (else ``None``)."""
        return self.combination.chosen_layer


@dataclass
class CollectionResolution:
    """Resolution of a whole dataset (one entry per ambiguous name)."""

    dataset: str
    blocks: list[BlockResolution]

    def mean_report(self) -> MetricReport:
        """Macro-average of the per-name metric reports."""
        return mean_report([block.report for block in self.blocks])

    def by_name(self, query_name: str) -> BlockResolution:
        """Result for one name.

        Raises:
            KeyError: if the name is absent.
        """
        for block in self.blocks:
            if block.query_name == query_name:
                return block
        raise KeyError(query_name)


class EntityResolver:
    """The paper's entity-resolution framework, configured once, run often.

    Args:
        config: resolver configuration (see :class:`ResolverConfig`).
        pipeline: extraction pipeline; when omitted, one is rebuilt from
            the dataset's generator metadata (synthetic corpora record
            their vocabulary seed).
    """

    def __init__(self, config: ResolverConfig | None = None,
                 pipeline: ExtractionPipeline | None = None):
        self.config = config or ResolverConfig()
        self._pipeline = pipeline
        self._functions = functions_subset(self.config.function_names)
        self._criteria = build_criteria(self.config.criteria, k=self.config.region_k)
        self._combiner = build_combiner(self.config.combiner)

    def pipeline_for(self, collection: DocumentCollection) -> ExtractionPipeline:
        """The extraction pipeline to use for ``collection``.

        Raises:
            ValueError: when no pipeline was supplied and the collection
                carries no vocabulary metadata to rebuild one from.
        """
        if self._pipeline is not None:
            return self._pipeline
        seed = collection.metadata.get("vocabulary_seed")
        if seed is None:
            raise ValueError(
                "collection has no vocabulary metadata; pass an ExtractionPipeline")
        vocabulary = build_vocabulary(int(seed))
        return ExtractionPipeline.from_vocabulary(
            vocabulary, query_names=collection.query_names())

    def resolve_collection(
        self,
        collection: DocumentCollection,
        training_seed: int = 0,
        graphs_by_name: dict[str, dict[str, WeightedPairGraph]] | None = None,
    ) -> CollectionResolution:
        """Resolve every block of a dataset.

        Args:
            collection: the dataset.
            training_seed: seed of the per-block training-sample draw.
            graphs_by_name: optional precomputed similarity graphs
                (``query name -> function name -> graph``) to skip the
                quadratic similarity step.
        """
        pipeline = self.pipeline_for(collection)
        blocks = []
        for block in collection:
            graphs = (graphs_by_name or {}).get(block.query_name)
            blocks.append(self.resolve_block(
                block, training_seed=training_seed,
                pipeline=pipeline, graphs=graphs))
        return CollectionResolution(dataset=collection.name, blocks=blocks)

    def resolve_block(
        self,
        block: NameCollection,
        training_seed: int = 0,
        pipeline: ExtractionPipeline | None = None,
        features: dict[str, PageFeatures] | None = None,
        graphs: dict[str, WeightedPairGraph] | None = None,
    ) -> BlockResolution:
        """Run Algorithm 1 on one block.

        Args:
            block: the name's page collection (fully labeled).
            training_seed: training-sample seed for this run.
            pipeline: extraction pipeline (required unless ``features`` or
                ``graphs`` already cover the block).
            features: precomputed page features (skips extraction).
            graphs: precomputed weighted graphs (skips extraction *and*
                similarity computation).
        """
        if graphs is None:
            if features is None:
                if pipeline is None:
                    raise ValueError("need a pipeline, features, or graphs")
                features = pipeline.extract_block(block)
            graphs = compute_similarity_graphs(block, features, self._functions)

        training = TrainingSample.from_pairs(sample_training_pairs(
            block,
            fraction=self.config.training_fraction,
            seed=training_seed,
            mode=self.config.sampling_mode,
        ))

        layers = self.build_layers(graphs, training)
        combination = self._combiner.combine(layers, training)
        predicted = self._cluster(combination)

        truth = clustering_from_assignments(block.ground_truth())
        report = evaluate_clustering(predicted, truth)
        return BlockResolution(
            query_name=block.query_name,
            predicted=predicted,
            truth=truth,
            report=report,
            combination=combination,
            layer_accuracies={layer.label: layer.training_accuracy
                              for layer in layers},
        )

    def build_layers(self, graphs: dict[str, WeightedPairGraph],
                     training: TrainingSample) -> list[DecisionLayer]:
        """Fit every (function, criterion) decision layer.

        Exposed for experiments that inspect or recombine layers directly
        (Figure 1, the combiner ablation).
        """
        layers: list[DecisionLayer] = []
        for function in self._functions:
            graph = graphs[function.name]
            labeled_values = training.labeled_values(graph)
            for criterion in self._criteria:
                fitted = criterion.fit(labeled_values)
                decision_graph = DecisionGraph(nodes=list(graph.nodes))
                probabilities = {}
                for pair, value in graph.pairs():
                    probabilities[pair] = fitted.link_probability(value)
                    if fitted.decide(value):
                        decision_graph.edges.add(pair)
                layers.append(DecisionLayer(
                    function_name=function.name,
                    criterion_name=criterion.name,
                    graph=decision_graph,
                    probabilities=probabilities,
                    fitted=fitted,
                    graph_accuracy=_graph_accuracy(decision_graph, training),
                ))
        return layers

    def _cluster(self, combination: CombinationResult) -> Clustering:
        """Apply the configured clustering to the combined graph."""
        if self.config.clusterer == "transitive":
            clusters = transitive_closure_clusters(combination.graph)
        elif self.config.clusterer == "star":
            clusters = star_cluster(combination.graph,
                                    weights=combination.probabilities)
        else:
            clusters = correlation_cluster(
                combination.probabilities, seed=self.config.correlation_seed)
        return Clustering(clusters)
