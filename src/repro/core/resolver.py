"""Algorithm 1 — the end-to-end entity-resolution procedure.

Per block (one ambiguous name):

1. compute the complete weighted graph ``G_w^fi`` for every similarity
   function (blocking means pairs are only formed within the block);
2. learn the decision criteria D_j from the training sample;
3. apply each criterion to get decision graphs ``G^i_Dj`` with accuracy
   estimates;
4. combine the layers into ``G_combined``;
5. cluster (via the clusterer registry: transitive closure, star or
   correlation clustering);
6. output the final partition.

The public API splits this into train and serve:
:meth:`EntityResolver.fit` runs steps 1–4's *learning* on labeled data and
returns a :class:`~repro.core.model.ResolverModel`, whose ``predict``
re-applies the fitted machinery to unlabeled pages and ``evaluate`` scores
predictions against ground truth.  ``resolve_block`` /
``resolve_collection`` remain as deprecated fit+predict+evaluate wrappers
for the paper's fully-labeled workflow.
"""

from __future__ import annotations

import time
import warnings

from repro.core.combination import DecisionLayer, build_combiner
from repro.core.config import ResolverConfig
from repro.core.decisions import build_criteria
from repro.core.labels import TrainingSample
from repro.core.model import (
    BlockResolution,
    CollectionResolution,
    FittedBlock,
    FittedLayer,
    ResolverModel,
    apply_fitted_decision,
    apply_fitted_decisions,
    compute_similarity_graphs,
    resolve_extraction_pipeline,
)
from repro.corpus.documents import DocumentCollection, NameCollection
from repro.extraction.features import PageFeatures
from repro.extraction.pipeline import ExtractionPipeline
from repro.graph.components import UnionFind
from repro.graph.entity_graph import DecisionGraph, WeightedPairGraph
from repro.ml.sampling import sample_training_pairs
from repro.runtime.executor import BlockExecutor, executor_from_config
from repro.runtime.stats import RunStats
from repro.similarity.functions import functions_subset

__all__ = [
    "BlockResolution",
    "CollectionResolution",
    "EntityResolver",
    "compute_similarity_graphs",
]


def _graph_accuracy(graph: DecisionGraph, training: TrainingSample) -> float:
    """acc(G_Dj): agreement of the graph's *implied* equivalence with the
    training labels.

    The implied equivalence is the transitive closure (the final clustering
    is the closure, §IV-C), so an over-linking graph whose chains merge
    distinct persons scores poorly even if its individual edge decisions
    looked fine in isolation.
    """
    if not training.pairs:
        return 0.0
    forest = UnionFind(graph.nodes)
    for left, right in graph.edges:
        forest.union(left, right)
    correct = sum(
        1 for (left, right), label in training.pairs
        if forest.connected(left, right) == label
    )
    return correct / len(training.pairs)


class EntityResolver:
    """The paper's entity-resolution framework, configured once, run often.

    Args:
        config: resolver configuration (see :class:`ResolverConfig`).
        pipeline: extraction pipeline; when omitted, one is rebuilt from
            the dataset's generator metadata (synthetic corpora record
            their vocabulary seed).
    """

    def __init__(self, config: ResolverConfig | None = None,
                 pipeline: ExtractionPipeline | None = None):
        self.config = config or ResolverConfig()
        self._pipeline = pipeline
        self._functions = functions_subset(self.config.function_names)
        self._criteria = build_criteria(self.config.criteria, k=self.config.region_k)
        self._combiner = build_combiner(self.config.combiner)

    @property
    def functions(self) -> list:
        """The configured similarity functions, in config order."""
        return list(self._functions)

    def pipeline_for(self, collection: DocumentCollection) -> ExtractionPipeline:
        """The extraction pipeline to use for ``collection``.

        Raises:
            ValueError: when no pipeline was supplied and the collection
                carries no vocabulary metadata to rebuild one from.
        """
        return resolve_extraction_pipeline(collection, self._pipeline)

    # -- fitting (the train side) ---------------------------------------

    def fit(
        self,
        data: DocumentCollection | NameCollection,
        training_seed: int = 0,
        pipeline: ExtractionPipeline | None = None,
        features: dict[str, PageFeatures] | None = None,
        graphs: dict[str, WeightedPairGraph] | None = None,
        graphs_by_name: dict[str, dict[str, WeightedPairGraph]] | None = None,
        executor: BlockExecutor | None = None,
        plan=None,
    ) -> ResolverModel:
        """Learn decision criteria and combination parameters from labels.

        This is the only step that reads ground truth: per block it draws
        the training sample, fits every (function, criterion) decision
        layer, estimates layer accuracies, and freezes the combiner's
        learned parameters.  The returned
        :class:`~repro.core.model.ResolverModel` predicts without labels
        and serializes with ``save``/``load``.

        Collection fitting is a thin driver over a stage plan (see
        :mod:`repro.pipeline`): the default
        :func:`~repro.pipeline.plan.fit_plan` runs ``block → extract →
        similarity → fit``, and a custom ``plan=`` swaps any stage
        without touching this method.  The run's per-stage timings land
        on the returned model's ``fit_stage_stats``.

        Fitting also seeds a one-shot per-block layer cache (holding the
        block's similarity graphs) for the immediate fit → predict pass;
        when keeping a directly-fitted model alive and serving only
        selected blocks, call ``model.release_fit_caches()`` to drop the
        unconsumed ones.

        Args:
            data: a labeled dataset, or a single labeled block.
            training_seed: seed of the per-block training-sample draw.
            pipeline: extraction pipeline (resolved lazily from collection
                metadata when omitted; unused for blocks fully covered by
                precomputed graphs).
            features: precomputed features (single-block fitting only).
            graphs: precomputed weighted graphs (single-block fitting
                only).
            graphs_by_name: precomputed similarity graphs per query name
                (collection fitting only).
            executor: block executor scheduling per-block fitting for
                collections (default: the backend the config selects).
                Serial and parallel fitting produce identical models; the
                pass's :class:`~repro.runtime.stats.RunStats` lands on
                the returned model's ``fit_stats``.
            plan: a custom :class:`~repro.pipeline.plan.Pipeline`
                producing a :class:`~repro.pipeline.artifacts.Decisions`
                artifact (collection fitting only; default:
                :func:`~repro.pipeline.plan.fit_plan`).

        Raises:
            ValueError: when a block's similarity graphs cannot be
                computed for lack of a pipeline/features/graphs, or when
                a kwarg does not apply to the input type (``features``/
                ``graphs`` are single-block only, ``graphs_by_name`` is
                collection only).
        """
        if isinstance(data, NameCollection):
            if graphs_by_name is not None:
                raise ValueError(
                    "graphs_by_name applies to collection fitting; "
                    "pass graphs= for a single block")
            graphs = self._block_graphs(data, pipeline, features, graphs)
            fitted = self.fit_block(data, graphs, training_seed)
            return ResolverModel(
                config=self.config,
                blocks={data.query_name: fitted},
                pipeline=pipeline or self._pipeline,
            )

        if features is not None or graphs is not None:
            raise ValueError(
                "features/graphs apply to single-block fitting; "
                "pass graphs_by_name= for a collection")
        from repro.pipeline.artifacts import Corpus, Decisions
        from repro.pipeline.plan import fit_plan
        from repro.pipeline.stage import PipelineContext

        owns_executor = executor is None
        executor = executor or executor_from_config(self.config)
        plan = plan or fit_plan(self.config)
        started = time.perf_counter()
        ctx = PipelineContext(
            config=self.config,
            executor=executor,
            phase="fit",
            resolver=self,
            extraction=pipeline or self._pipeline,
            graphs_by_name=graphs_by_name,
            training_seed=training_seed,
        )
        try:
            decisions = plan.run(Corpus(collection=data), ctx)
        finally:
            # Close only pools this call created from the config; a
            # caller-provided executor persists across its runs.
            if owns_executor:
                executor.close()
        if not isinstance(decisions, Decisions):
            raise TypeError(
                f"fit plan {plan.name!r} produced "
                f"{type(decisions).__name__}, expected Decisions")
        stats = ctx.engine_stats() or RunStats.for_executor("fit", executor)
        # The pass's wall clock covers the whole plan, not just the fit
        # stage (matching the pre-pipeline accounting).
        stats.wall_seconds = time.perf_counter() - started
        model = ResolverModel(config=self.config, blocks=decisions.fitted,
                              pipeline=ctx.extraction)
        model.fit_stats = stats
        model.fit_stage_stats = list(ctx.stage_stats)
        return model

    def _block_graphs(
        self,
        block: NameCollection,
        pipeline: ExtractionPipeline | None,
        features: dict[str, PageFeatures] | None,
        graphs: dict[str, WeightedPairGraph] | None,
    ) -> dict[str, WeightedPairGraph]:
        """Similarity graphs for one block, computing what is missing.

        Raises:
            ValueError: when neither graphs, features nor a pipeline are
                available.
        """
        if graphs is not None:
            return graphs
        if features is None:
            pipeline = pipeline or self._pipeline
            if pipeline is None:
                raise ValueError("need a pipeline, features, or graphs")
            features = pipeline.extract_block(block)
        return compute_similarity_graphs(block, features, self._functions,
                                         backend=self.config.backend)

    def fit_block(self, block: NameCollection,
                  graphs: dict[str, WeightedPairGraph],
                  training_seed: int = 0) -> FittedBlock:
        """Fit one block: training sample → layers → combiner parameters.

        The unit of work the block executors schedule (see
        :mod:`repro.runtime.tasks`); exposed so custom schedulers can fit
        blocks independently and assemble their own
        :class:`~repro.core.model.ResolverModel`.
        """
        training = TrainingSample.from_pairs(sample_training_pairs(
            block,
            fraction=self.config.training_fraction,
            seed=training_seed,
            mode=self.config.sampling_mode,
        ))
        layers = self.build_layers(graphs, training)
        combination = self._combiner.combine(layers, training)
        fitted = FittedBlock(
            query_name=block.query_name,
            layers=[FittedLayer(
                function_name=layer.function_name,
                criterion_name=layer.criterion_name,
                fitted=layer.fitted,
                graph_accuracy=layer.graph_accuracy,
            ) for layer in layers],
            combiner_params=self._combiner.fit_params(combination),
            n_training=len(training),
        )
        # Fit-time layers are exactly what predict would rebuild over the
        # same graphs; seed the cache so fit → predict applies them once.
        fitted._layer_cache = (graphs, layers)
        return fitted

    def build_layers(self, graphs: dict[str, WeightedPairGraph],
                     training: TrainingSample) -> list[DecisionLayer]:
        """Fit every (function, criterion) decision layer.

        Exposed for experiments that inspect or recombine layers directly
        (Figure 1, the combiner ablation).  All criteria of one function
        are applied to its graph in a single batched pair sweep
        (:func:`~repro.core.model.apply_fitted_decisions`); layer order
        stays function-outer, criterion-inner.
        """
        layers: list[DecisionLayer] = []
        for function in self._functions:
            graph = graphs[function.name]
            labeled_values = training.labeled_values(graph)
            fitted_criteria = [criterion.fit(labeled_values)
                               for criterion in self._criteria]
            applied = apply_fitted_decisions(fitted_criteria, graph)
            for criterion, fitted, (decision_graph, probabilities) in zip(
                    self._criteria, fitted_criteria, applied):
                layers.append(DecisionLayer(
                    function_name=function.name,
                    criterion_name=criterion.name,
                    graph=decision_graph,
                    probabilities=probabilities,
                    fitted=fitted,
                    graph_accuracy=_graph_accuracy(decision_graph, training),
                ))
        return layers

    # -- deprecated labeled-workflow wrappers ---------------------------

    def resolve_collection(
        self,
        collection: DocumentCollection,
        training_seed: int = 0,
        graphs_by_name: dict[str, dict[str, WeightedPairGraph]] | None = None,
    ) -> CollectionResolution:
        """Resolve every block of a fully labeled dataset.

        .. deprecated:: 1.1
            Thin wrapper over ``fit(...)`` + ``ResolverModel.evaluate``;
            prefer those directly — they separate the label-consuming
            training step from label-free prediction.

        Args:
            collection: the dataset (every page labeled).
            training_seed: seed of the per-block training-sample draw.
            graphs_by_name: optional precomputed similarity graphs
                (``query name -> function name -> graph``) to skip the
                quadratic similarity step.
        """
        warnings.warn(
            "EntityResolver.resolve_collection is deprecated; use "
            "fit(...) and ResolverModel.evaluate/predict instead",
            DeprecationWarning, stacklevel=2)
        pipeline = self.pipeline_for(collection)
        # Streamed per block: fitting is per-block, so fit + evaluate one
        # block at a time — each block's graphs are computed once, shared
        # between the two passes, and released before the next block
        # (the legacy loop's memory profile).
        blocks = []
        for block in collection:
            graphs = (graphs_by_name or {}).get(block.query_name)
            if graphs is None:
                graphs = compute_similarity_graphs(
                    block, pipeline.extract_block(block), self._functions,
                    backend=self.config.backend)
            model = self.fit(block, training_seed=training_seed,
                             graphs=graphs)
            blocks.append(model.evaluate_block(block, graphs=graphs))
        return CollectionResolution(dataset=collection.name, blocks=blocks)

    def resolve_block(
        self,
        block: NameCollection,
        training_seed: int = 0,
        pipeline: ExtractionPipeline | None = None,
        features: dict[str, PageFeatures] | None = None,
        graphs: dict[str, WeightedPairGraph] | None = None,
    ) -> BlockResolution:
        """Run Algorithm 1 on one fully labeled block.

        .. deprecated:: 1.1
            Thin wrapper over ``fit(...)`` + ``ResolverModel.evaluate``;
            prefer those directly.

        Args:
            block: the name's page collection (fully labeled).
            training_seed: training-sample seed for this run.
            pipeline: extraction pipeline (required unless ``features`` or
                ``graphs`` already cover the block).
            features: precomputed page features (skips extraction).
            graphs: precomputed weighted graphs (skips extraction *and*
                similarity computation).
        """
        warnings.warn(
            "EntityResolver.resolve_block is deprecated; use fit(...) "
            "and ResolverModel.evaluate/predict instead",
            DeprecationWarning, stacklevel=2)
        graphs = self._block_graphs(block, pipeline, features, graphs)
        model = self.fit(block, training_seed=training_seed, graphs=graphs)
        return model.evaluate_block(block, graphs=graphs)
