"""Combining multiple similarity functions (§IV-B).

Every (similarity function, decision criterion) combination yields a
:class:`DecisionLayer`: a decision graph G_Dj plus per-pair link
probabilities and a training-set accuracy estimate acc(G_Dj).  Combiners
merge layers into one graph:

* :class:`BestGraphSelector` — estimate every layer's overall accuracy and
  keep the single best graph.  The paper reports this performed best on
  its datasets (the C columns of Table II), while noting the winner varies.
* :class:`WeightedAverageCombiner` — the multigraph route: weight each
  layer's per-pair link probability by the layer's accuracy, average, and
  learn an optimal threshold on the combined value (the W column).
* :class:`MajorityVoteCombiner` — classic classifier-fusion baseline the
  related work discusses.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.decisions import FittedDecision
from repro.core.labels import TrainingSample
from repro.core.registry import COMBINERS, register_combiner
from repro.core.thresholds import learn_threshold
from repro.graph.entity_graph import DecisionGraph, PairKey, WeightedPairGraph


@dataclass
class DecisionLayer:
    """One (function, criterion) decision graph with its estimates.

    Attributes:
        function_name: e.g. ``"F3"``.
        criterion_name: e.g. ``"kmeans"``.
        graph: the layer's decision graph G_Dj.
        probabilities: per-pair link-probability estimates (every scored
            pair, not only asserted edges — negative evidence matters for
            averaging).
        fitted: the fitted decision backing this layer.
        graph_accuracy: acc(G_Dj) — the fraction of training pairs whose
            label matches the equivalence the graph *implies* (i.e. after
            transitive closure, since the final resolution is the closure).
            This is the selection signal of best-graph combination: it
            punishes over-linking layers whose chains merge everything,
            which raw per-pair accuracy cannot see.
    """

    function_name: str
    criterion_name: str
    graph: DecisionGraph
    probabilities: dict[PairKey, float]
    fitted: FittedDecision
    graph_accuracy: float = 0.0

    @property
    def label(self) -> str:
        return f"{self.function_name}/{self.criterion_name}"

    @property
    def training_accuracy(self) -> float:
        """Per-pair decision accuracy on the training sample."""
        return self.fitted.training_accuracy


@dataclass
class CombinationResult:
    """The combined graph G_combined plus diagnostics.

    Attributes:
        graph: combined decision graph.
        probabilities: combined per-pair link probabilities (drives
            correlation clustering when selected).
        chosen_layer: the winning layer's label (best-graph selection only).
        threshold: the learned combination threshold (weighted average only).
    """

    graph: DecisionGraph
    probabilities: WeightedPairGraph
    chosen_layer: str | None = None
    threshold: float | None = None
    diagnostics: dict[str, float] = field(default_factory=dict)


class Combiner(ABC):
    """Merges decision layers into one combined graph.

    ``combine`` is the fit-time path: it may consult the labeled training
    sample (best-graph selection scores layers on it, weighted averaging
    learns its link threshold on it).  Whatever it learned beyond the
    layers themselves must be captured by ``fit_params`` so that ``apply``
    can re-combine the same layers on *unlabeled* data — that pair of
    methods is what lets a fitted :class:`~repro.core.model.ResolverModel`
    serve predictions without ground truth.
    """

    name: str

    @abstractmethod
    def combine(self, layers: Sequence[DecisionLayer],
                training: TrainingSample) -> CombinationResult:
        """Combine ``layers`` (all over the same node universe).

        Raises:
            ValueError: when called with no layers.
        """

    def fit_params(self, result: CombinationResult) -> dict[str, object]:
        """JSON-serializable parameters ``apply`` needs (default: none)."""
        return {}

    def apply(self, layers: Sequence[DecisionLayer],
              params: dict[str, object]) -> CombinationResult:
        """Re-combine ``layers`` without labels, from stored ``params``.

        Must reproduce ``combine``'s output bit-for-bit when the layers
        carry the same fitted decisions the params were learned with.

        Raises:
            ValueError: when called with no layers or unusable params.
        """
        raise NotImplementedError(
            f"combiner {self.name!r} does not support label-free application")


def _require_layers(layers: Sequence[DecisionLayer]) -> None:
    if not layers:
        raise ValueError("cannot combine zero decision layers")


@register_combiner("best_graph")
class BestGraphSelector(Combiner):
    """Keep the layer with the highest estimated graph accuracy acc(G_Dj).

    Ties break toward the earlier layer (stable, deterministic).  This is
    dynamic classifier *selection* at the graph level; the paper found it
    the strongest combiner on both datasets.
    """

    name = "best_graph"

    def combine(self, layers: Sequence[DecisionLayer],
                training: TrainingSample) -> CombinationResult:
        _require_layers(layers)
        best = max(layers, key=lambda layer: layer.graph_accuracy)
        return self._select(best)

    def fit_params(self, result: CombinationResult) -> dict[str, object]:
        return {"chosen_layer": result.chosen_layer}

    def apply(self, layers: Sequence[DecisionLayer],
              params: dict[str, object]) -> CombinationResult:
        _require_layers(layers)
        chosen_label = params.get("chosen_layer")
        best = next((layer for layer in layers if layer.label == chosen_label),
                    None)
        if best is None:
            # The stored winner is gone (e.g. the model now runs a layer
            # subset); re-select on the stored accuracy estimates, which
            # uses the same tie-breaking as fit-time selection.
            best = max(layers, key=lambda layer: layer.graph_accuracy)
        return self._select(best)

    def _select(self, best: DecisionLayer) -> CombinationResult:
        probabilities = WeightedPairGraph(
            nodes=list(best.graph.nodes), weights=dict(best.probabilities))
        return CombinationResult(
            graph=DecisionGraph(nodes=list(best.graph.nodes),
                                edges=set(best.graph.edges)),
            probabilities=probabilities,
            chosen_layer=best.label,
            diagnostics={"chosen_accuracy": best.graph_accuracy},
        )


def average_probabilities(layers: Sequence[DecisionLayer],
                          weights: Sequence[float]) -> dict[PairKey, float]:
    """Weight-averaged per-pair link probabilities across layers."""
    total_weight = sum(weights)
    combined: dict[PairKey, float] = {}
    all_pairs: set[PairKey] = set()
    for layer in layers:
        all_pairs.update(layer.probabilities)
    for pair in all_pairs:
        numerator = 0.0
        for layer, weight in zip(layers, weights):
            numerator += weight * layer.probabilities.get(pair, 0.0)
        combined[pair] = numerator / total_weight
    return combined


def thresholded_result(nodes: list[str], combined: dict[PairKey, float],
                       threshold: float,
                       diagnostics: dict[str, float] | None = None,
                       ) -> CombinationResult:
    """Build a :class:`CombinationResult` by cutting averaged probabilities
    at ``threshold`` (link iff probability >= threshold)."""
    graph = DecisionGraph(nodes=nodes)
    for pair, probability in combined.items():
        if probability >= threshold:
            graph.edges.add(pair)
    return CombinationResult(
        graph=graph,
        probabilities=WeightedPairGraph(nodes=nodes, weights=combined),
        threshold=threshold,
        diagnostics=diagnostics or {},
    )


@register_combiner("weighted_average")
class WeightedAverageCombiner(Combiner):
    """Accuracy-weighted average of per-layer link probabilities.

    Every pair's combined probability is
    ``Σ_l acc_l · p_l(pair) / Σ_l acc_l``; the link threshold on the
    combined value is then learned on the training sample (§IV-B).
    """

    name = "weighted_average"

    def _weights(self, layers: Sequence[DecisionLayer]) -> list[float]:
        return [max(layer.training_accuracy, 1e-9) for layer in layers]

    def combine(self, layers: Sequence[DecisionLayer],
                training: TrainingSample) -> CombinationResult:
        _require_layers(layers)
        nodes = list(layers[0].graph.nodes)
        combined = average_probabilities(layers, self._weights(layers))
        labeled = [(combined.get(pair, 0.0), label) for pair, label in training.pairs]
        threshold = learn_threshold(labeled)
        return thresholded_result(
            nodes, combined, threshold.threshold,
            diagnostics={"training_accuracy": threshold.training_accuracy})

    def fit_params(self, result: CombinationResult) -> dict[str, object]:
        return {"threshold": result.threshold,
                "diagnostics": dict(result.diagnostics)}

    def apply(self, layers: Sequence[DecisionLayer],
              params: dict[str, object]) -> CombinationResult:
        _require_layers(layers)
        threshold = params.get("threshold")
        if threshold is None:
            raise ValueError(
                "weighted_average needs a stored 'threshold' to apply")
        nodes = list(layers[0].graph.nodes)
        combined = average_probabilities(layers, self._weights(layers))
        return thresholded_result(
            nodes, combined, float(threshold),
            diagnostics=dict(params.get("diagnostics") or {}))


@register_combiner("majority")
class MajorityVoteCombiner(Combiner):
    """Edge iff a strict majority of layers assert it (classifier fusion)."""

    name = "majority"

    def apply(self, layers: Sequence[DecisionLayer],
              params: dict[str, object]) -> CombinationResult:
        # Voting never consults labels; apply is combine without training.
        return self.combine(layers, TrainingSample.from_pairs([]))

    def combine(self, layers: Sequence[DecisionLayer],
                training: TrainingSample) -> CombinationResult:
        _require_layers(layers)
        nodes = list(layers[0].graph.nodes)
        n_layers = len(layers)
        votes: dict[PairKey, int] = {}
        all_pairs: set[PairKey] = set()
        for layer in layers:
            all_pairs.update(layer.probabilities)
            for pair in layer.graph.edges:
                votes[pair] = votes.get(pair, 0) + 1

        graph = DecisionGraph(nodes=nodes)
        probabilities: dict[PairKey, float] = {}
        for pair in all_pairs:
            fraction = votes.get(pair, 0) / n_layers
            probabilities[pair] = fraction
            if fraction > 0.5:
                graph.edges.add(pair)
        return CombinationResult(
            graph=graph,
            probabilities=WeightedPairGraph(nodes=nodes, weights=probabilities),
        )


def build_combiner(name: str) -> Combiner:
    """Combiner factory for config strings.

    Resolves through the :data:`~repro.core.registry.COMBINERS` registry,
    so combiners added with ``@register_combiner`` are constructible here
    without editing this module.

    Raises:
        ValueError: for unknown combiner names.
    """
    factory = COMBINERS.get(name)
    return factory()
