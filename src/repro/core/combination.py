"""Combining multiple similarity functions (§IV-B).

Every (similarity function, decision criterion) combination yields a
:class:`DecisionLayer`: a decision graph G_Dj plus per-pair link
probabilities and a training-set accuracy estimate acc(G_Dj).  Combiners
merge layers into one graph:

* :class:`BestGraphSelector` — estimate every layer's overall accuracy and
  keep the single best graph.  The paper reports this performed best on
  its datasets (the C columns of Table II), while noting the winner varies.
* :class:`WeightedAverageCombiner` — the multigraph route: weight each
  layer's per-pair link probability by the layer's accuracy, average, and
  learn an optimal threshold on the combined value (the W column).
* :class:`MajorityVoteCombiner` — classic classifier-fusion baseline the
  related work discusses.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.decisions import FittedDecision
from repro.core.labels import TrainingSample
from repro.core.thresholds import learn_threshold
from repro.graph.entity_graph import DecisionGraph, PairKey, WeightedPairGraph


@dataclass
class DecisionLayer:
    """One (function, criterion) decision graph with its estimates.

    Attributes:
        function_name: e.g. ``"F3"``.
        criterion_name: e.g. ``"kmeans"``.
        graph: the layer's decision graph G_Dj.
        probabilities: per-pair link-probability estimates (every scored
            pair, not only asserted edges — negative evidence matters for
            averaging).
        fitted: the fitted decision backing this layer.
        graph_accuracy: acc(G_Dj) — the fraction of training pairs whose
            label matches the equivalence the graph *implies* (i.e. after
            transitive closure, since the final resolution is the closure).
            This is the selection signal of best-graph combination: it
            punishes over-linking layers whose chains merge everything,
            which raw per-pair accuracy cannot see.
    """

    function_name: str
    criterion_name: str
    graph: DecisionGraph
    probabilities: dict[PairKey, float]
    fitted: FittedDecision
    graph_accuracy: float = 0.0

    @property
    def label(self) -> str:
        return f"{self.function_name}/{self.criterion_name}"

    @property
    def training_accuracy(self) -> float:
        """Per-pair decision accuracy on the training sample."""
        return self.fitted.training_accuracy


@dataclass
class CombinationResult:
    """The combined graph G_combined plus diagnostics.

    Attributes:
        graph: combined decision graph.
        probabilities: combined per-pair link probabilities (drives
            correlation clustering when selected).
        chosen_layer: the winning layer's label (best-graph selection only).
        threshold: the learned combination threshold (weighted average only).
    """

    graph: DecisionGraph
    probabilities: WeightedPairGraph
    chosen_layer: str | None = None
    threshold: float | None = None
    diagnostics: dict[str, float] = field(default_factory=dict)


class Combiner(ABC):
    """Merges decision layers into one combined graph."""

    name: str

    @abstractmethod
    def combine(self, layers: Sequence[DecisionLayer],
                training: TrainingSample) -> CombinationResult:
        """Combine ``layers`` (all over the same node universe).

        Raises:
            ValueError: when called with no layers.
        """


def _require_layers(layers: Sequence[DecisionLayer]) -> None:
    if not layers:
        raise ValueError("cannot combine zero decision layers")


class BestGraphSelector(Combiner):
    """Keep the layer with the highest estimated graph accuracy acc(G_Dj).

    Ties break toward the earlier layer (stable, deterministic).  This is
    dynamic classifier *selection* at the graph level; the paper found it
    the strongest combiner on both datasets.
    """

    name = "best_graph"

    def combine(self, layers: Sequence[DecisionLayer],
                training: TrainingSample) -> CombinationResult:
        _require_layers(layers)
        best = max(layers, key=lambda layer: layer.graph_accuracy)
        probabilities = WeightedPairGraph(
            nodes=list(best.graph.nodes), weights=dict(best.probabilities))
        return CombinationResult(
            graph=DecisionGraph(nodes=list(best.graph.nodes),
                                edges=set(best.graph.edges)),
            probabilities=probabilities,
            chosen_layer=best.label,
            diagnostics={"chosen_accuracy": best.graph_accuracy},
        )


class WeightedAverageCombiner(Combiner):
    """Accuracy-weighted average of per-layer link probabilities.

    Every pair's combined probability is
    ``Σ_l acc_l · p_l(pair) / Σ_l acc_l``; the link threshold on the
    combined value is then learned on the training sample (§IV-B).
    """

    name = "weighted_average"

    def combine(self, layers: Sequence[DecisionLayer],
                training: TrainingSample) -> CombinationResult:
        _require_layers(layers)
        nodes = list(layers[0].graph.nodes)
        weights = [max(layer.training_accuracy, 1e-9) for layer in layers]
        total_weight = sum(weights)

        combined: dict[PairKey, float] = {}
        all_pairs: set[PairKey] = set()
        for layer in layers:
            all_pairs.update(layer.probabilities)
        for pair in all_pairs:
            numerator = 0.0
            for layer, weight in zip(layers, weights):
                numerator += weight * layer.probabilities.get(pair, 0.0)
            combined[pair] = numerator / total_weight

        labeled = [(combined.get(pair, 0.0), label) for pair, label in training.pairs]
        threshold = learn_threshold(labeled)

        graph = DecisionGraph(nodes=nodes)
        for pair, probability in combined.items():
            if threshold.decide(probability):
                graph.edges.add(pair)
        return CombinationResult(
            graph=graph,
            probabilities=WeightedPairGraph(nodes=nodes, weights=combined),
            threshold=threshold.threshold,
            diagnostics={"training_accuracy": threshold.training_accuracy},
        )


class MajorityVoteCombiner(Combiner):
    """Edge iff a strict majority of layers assert it (classifier fusion)."""

    name = "majority"

    def combine(self, layers: Sequence[DecisionLayer],
                training: TrainingSample) -> CombinationResult:
        _require_layers(layers)
        nodes = list(layers[0].graph.nodes)
        n_layers = len(layers)
        votes: dict[PairKey, int] = {}
        all_pairs: set[PairKey] = set()
        for layer in layers:
            all_pairs.update(layer.probabilities)
            for pair in layer.graph.edges:
                votes[pair] = votes.get(pair, 0) + 1

        graph = DecisionGraph(nodes=nodes)
        probabilities: dict[PairKey, float] = {}
        for pair in all_pairs:
            fraction = votes.get(pair, 0) / n_layers
            probabilities[pair] = fraction
            if fraction > 0.5:
                graph.edges.add(pair)
        return CombinationResult(
            graph=graph,
            probabilities=WeightedPairGraph(nodes=nodes, weights=probabilities),
        )


def build_combiner(name: str) -> Combiner:
    """Combiner factory for config strings.

    Raises:
        ValueError: for unknown combiner names.
    """
    combiners: dict[str, type[Combiner]] = {
        BestGraphSelector.name: BestGraphSelector,
        WeightedAverageCombiner.name: WeightedAverageCombiner,
        MajorityVoteCombiner.name: MajorityVoteCombiner,
    }
    if name not in combiners:
        raise ValueError(f"unknown combiner: {name!r}")
    return combiners[name]()
