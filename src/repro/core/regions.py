"""Value-space regions (§IV-A).

The paper partitions the similarity value space [0, 1] into regions and
estimates accuracy per region.  Two constructions are studied:

1. equal-width sub-intervals [0, 0.1), [0.1, 0.2), …, [0.9, 1];
2. 1-D k-means clusters of the training similarity values, each cluster
   head defining a region.

``ThresholdRegions`` additionally models the plain threshold rule as a
two-region partition, which unifies the decision criteria: every criterion
is "regions + per-region accuracy" (see :mod:`repro.core.decisions`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

from repro.ml.kmeans import KMeans1D, kmeans_1d


class Regions(ABC):
    """A partition of the similarity value space [0, 1]."""

    @property
    @abstractmethod
    def n_regions(self) -> int:
        """Number of regions."""

    @abstractmethod
    def assign(self, value: float) -> int:
        """Region index of ``value`` (values outside [0, 1] are clamped)."""

    @abstractmethod
    def bounds(self, region: int) -> tuple[float, float]:
        """[low, high) interval of one region (for reports and plots)."""

    def describe(self) -> list[tuple[float, float]]:
        """Bounds of every region in index order."""
        return [self.bounds(region) for region in range(self.n_regions)]

    @abstractmethod
    def to_dict(self) -> dict[str, object]:
        """JSON-serializable snapshot, reloadable by :func:`regions_from_dict`."""


class EqualWidthRegions(Regions):
    """Fixed equal-width sub-intervals of [0, 1].

    Args:
        n_bins: number of intervals (the paper uses 10).

    Raises:
        ValueError: for non-positive ``n_bins``.
    """

    def __init__(self, n_bins: int = 10):
        if n_bins <= 0:
            raise ValueError(f"n_bins must be positive, got {n_bins}")
        self.n_bins = n_bins

    @property
    def n_regions(self) -> int:
        return self.n_bins

    def assign(self, value: float) -> int:
        value = min(1.0, max(0.0, value))
        index = int(value * self.n_bins)
        return min(index, self.n_bins - 1)  # value 1.0 joins the last bin

    def bounds(self, region: int) -> tuple[float, float]:
        width = 1.0 / self.n_bins
        return (region * width, 1.0 if region == self.n_bins - 1 else (region + 1) * width)

    def to_dict(self) -> dict[str, object]:
        return {"type": "equal_width", "n_bins": self.n_bins}


class KMeansRegions(Regions):
    """Regions from 1-D k-means over training similarity values.

    Args:
        values: training similarity values to cluster.
        k: requested region count (the paper's Fig. 1 uses ~10); reduced
            automatically when the sample has fewer distinct values.

    Raises:
        ValueError: for an empty training sample.
    """

    def __init__(self, values: Sequence[float], k: int = 10):
        self._model = kmeans_1d(values, k)

    @classmethod
    def from_model(cls, model: KMeans1D) -> "KMeansRegions":
        """Wrap an already-fitted model (model deserialization path)."""
        regions = cls.__new__(cls)
        regions._model = model
        return regions

    @property
    def n_regions(self) -> int:
        return self._model.k

    @property
    def centers(self) -> tuple[float, ...]:
        """The cluster heads representing each region."""
        return self._model.centers

    def assign(self, value: float) -> int:
        return self._model.assign(min(1.0, max(0.0, value)))

    def bounds(self, region: int) -> tuple[float, float]:
        boundaries = self._model.boundaries
        low = 0.0 if region == 0 else boundaries[region - 1]
        high = 1.0 if region == self.n_regions - 1 else boundaries[region]
        return (low, high)

    def to_dict(self) -> dict[str, object]:
        return {
            "type": "kmeans",
            "centers": list(self._model.centers),
            "boundaries": list(self._model.boundaries),
        }


class ThresholdRegions(Regions):
    """The two-region partition induced by a decision threshold.

    Region 0 is [0, threshold), region 1 is [threshold, 1].  Thresholds
    above 1.0 ("never link") degenerate to a single region.
    """

    def __init__(self, threshold: float):
        self.threshold = threshold

    @property
    def n_regions(self) -> int:
        return 1 if self.threshold > 1.0 or self.threshold <= 0.0 else 2

    def assign(self, value: float) -> int:
        if self.n_regions == 1:
            return 0
        return 1 if value >= self.threshold else 0

    def bounds(self, region: int) -> tuple[float, float]:
        if self.n_regions == 1:
            return (0.0, 1.0)
        return (0.0, self.threshold) if region == 0 else (self.threshold, 1.0)

    def to_dict(self) -> dict[str, object]:
        return {"type": "threshold", "threshold": self.threshold}


def fit_regions(method: str, values: Sequence[float], k: int = 10) -> Regions:
    """Region-scheme factory.

    Args:
        method: ``"equal_width"`` or ``"kmeans"``.
        values: training similarity values (used by k-means only).
        k: bin/cluster count.

    Raises:
        ValueError: for unknown methods.
    """
    if method == "equal_width":
        return EqualWidthRegions(n_bins=k)
    if method == "kmeans":
        return KMeansRegions(values, k=k)
    raise ValueError(f"unknown region method: {method!r}")


def regions_from_dict(payload: dict[str, object]) -> Regions:
    """Rebuild a region scheme saved by :meth:`Regions.to_dict`.

    Raises:
        ValueError: for unknown region types.
    """
    kind = payload.get("type")
    if kind == "equal_width":
        return EqualWidthRegions(n_bins=int(payload["n_bins"]))
    if kind == "kmeans":
        return KMeansRegions.from_model(KMeans1D(
            centers=tuple(float(c) for c in payload["centers"]),
            boundaries=tuple(float(b) for b in payload["boundaries"])))
    if kind == "threshold":
        return ThresholdRegions(float(payload["threshold"]))
    raise ValueError(f"unknown region type: {kind!r}")
