"""Per-region accuracy estimation (§IV-A).

For each region the paper estimates, from the training sample, the
fraction of pairs falling in that region that are true links ("accuracy of
link existence").  Values above 0.5 mean the region's majority is "link";
the profile doubles as a per-pair link-probability estimate, which §IV-B
re-uses as edge weights when combining functions.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.regions import Regions, regions_from_dict


@dataclass(frozen=True)
class RegionStats:
    """Training statistics of one region."""

    n_pairs: int
    n_links: int
    accuracy: float  # estimated P(link | value in region)


class RegionAccuracyProfile:
    """Per-region link-existence accuracy learned from a training sample.

    Args:
        regions: the fitted value-space partition.
        labeled_values: training (similarity value, is-link) pairs.
        smoothing: Laplace pseudo-counts added per class; stabilizes tiny
            regions (the training set is deliberately small).

    Empty regions fall back to the overall training link prior — the best
    available estimate when a region was never observed.
    """

    def __init__(self, regions: Regions,
                 labeled_values: Sequence[tuple[float, bool]],
                 smoothing: float = 1.0):
        self.regions = regions
        n_regions = regions.n_regions
        counts = [0] * n_regions
        links = [0] * n_regions
        for value, label in labeled_values:
            region = regions.assign(value)
            counts[region] += 1
            if label:
                links[region] += 1

        total = len(labeled_values)
        total_links = sum(links)
        self._prior = (total_links + smoothing) / (total + 2 * smoothing)

        self._stats: list[RegionStats] = []
        for region in range(n_regions):
            if counts[region] == 0:
                accuracy = self._prior
            else:
                accuracy = (links[region] + smoothing) / (counts[region] + 2 * smoothing)
            self._stats.append(RegionStats(
                n_pairs=counts[region], n_links=links[region], accuracy=accuracy))

    @classmethod
    def from_stats(cls, regions: Regions, stats: Sequence[RegionStats],
                   prior: float) -> "RegionAccuracyProfile":
        """Rebuild a profile from already-estimated statistics.

        This is the deserialization path: no training sample is consulted.

        Raises:
            ValueError: when ``stats`` does not cover every region.
        """
        if len(stats) != regions.n_regions:
            raise ValueError(
                f"expected {regions.n_regions} region stats, got {len(stats)}")
        profile = cls.__new__(cls)
        profile.regions = regions
        profile._prior = prior
        profile._stats = list(stats)
        return profile

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable snapshot of the fitted profile."""
        return {
            "regions": self.regions.to_dict(),
            "prior": self._prior,
            "stats": [
                {"n_pairs": s.n_pairs, "n_links": s.n_links,
                 "accuracy": s.accuracy}
                for s in self._stats
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "RegionAccuracyProfile":
        """Rebuild a profile saved by :meth:`to_dict`."""
        stats = [
            RegionStats(n_pairs=int(s["n_pairs"]), n_links=int(s["n_links"]),
                        accuracy=float(s["accuracy"]))
            for s in payload["stats"]
        ]
        return cls.from_stats(regions_from_dict(payload["regions"]), stats,
                              prior=float(payload["prior"]))

    @property
    def n_regions(self) -> int:
        return self.regions.n_regions

    @property
    def prior(self) -> float:
        """Smoothed overall link fraction of the training sample."""
        return self._prior

    def region_stats(self, region: int) -> RegionStats:
        return self._stats[region]

    def region_accuracy(self, region: int) -> float:
        """Estimated P(link | region)."""
        return self._stats[region].accuracy

    def link_probability(self, value: float) -> float:
        """Estimated P(link) for a pair with similarity ``value``."""
        return self._stats[self.regions.assign(value)].accuracy

    def decide(self, value: float) -> bool:
        """Majority decision of the value's region (accuracy > 0.5 → link)."""
        return self.link_probability(value) > 0.5

    def accuracy_series(self) -> list[tuple[float, float, float]]:
        """(low, high, accuracy) per region — the paper's Figure 1 data."""
        series = []
        for region in range(self.n_regions):
            low, high = self.regions.bounds(region)
            series.append((low, high, self._stats[region].accuracy))
        return series


def overall_accuracy(decisions: Sequence[bool], labels: Sequence[bool]) -> float:
    """Fraction of correct decisions — the paper's acc(G_Dj).

    Raises:
        ValueError: on length mismatch or empty input.
    """
    if len(decisions) != len(labels):
        raise ValueError("decisions and labels differ in length")
    if not decisions:
        raise ValueError("cannot score zero decisions")
    correct = sum(1 for decision, label in zip(decisions, labels)
                  if decision == label)
    return correct / len(decisions)
