"""Clustering backends for the combined decision graph (§IV-C).

Each clusterer turns one block's :class:`CombinationResult` into the final
entity partition.  The built-ins register themselves with the
:data:`~repro.core.registry.CLUSTERERS` registry; new algorithms plug in
with :func:`~repro.core.registry.register_clusterer` and become valid
``ResolverConfig.clusterer`` values without touching this module.

A clusterer is a callable ``(combination, seed) -> Iterable[set[str]]``;
``seed`` is the config's ``correlation_seed`` (deterministic algorithms
ignore it).
"""

from __future__ import annotations

from repro.core.combination import CombinationResult
from repro.core.registry import CLUSTERERS, register_clusterer
from repro.graph.correlation import correlation_cluster
from repro.graph.star import star_cluster
from repro.graph.transitive import transitive_closure_clusters
from repro.metrics.clusterings import Clustering


@register_clusterer("transitive")
def transitive_clusterer(combination: CombinationResult, seed: int = 0):
    """Transitive closure of the combined graph (the paper's default)."""
    return transitive_closure_clusters(combination.graph)


@register_clusterer("star")
def star_clusterer(combination: CombinationResult, seed: int = 0):
    """Star clustering seeded by combined link probabilities."""
    return star_cluster(combination.graph, weights=combination.probabilities)


@register_clusterer("correlation")
def correlation_clusterer(combination: CombinationResult, seed: int = 0):
    """Randomized-pivot correlation clustering over link probabilities."""
    return correlation_cluster(combination.probabilities, seed=seed)


def cluster_combination(name: str, combination: CombinationResult,
                        seed: int = 0) -> Clustering:
    """Apply the clusterer registered under ``name``.

    Raises:
        ValueError: for unknown clusterer names.
    """
    clusterer = CLUSTERERS.get(name)
    return Clustering(clusterer(combination, seed))
