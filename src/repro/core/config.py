"""Resolver configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.registry import (
    BLOCKERS,
    CLUSTERERS,
    COMBINERS,
    CRITERIA,
    EXECUTORS,
    SAMPLING_MODES,
    SIMILARITIES,
)
from repro.similarity.backends import BACKENDS, default_backend
from repro.similarity.functions import ALL_FUNCTION_NAMES


@dataclass(frozen=True)
class ResolverConfig:
    """All knobs of the paper's Algorithm 1.

    Attributes:
        function_names: which similarity functions to run (Table II's I4 /
            I7 / I10 subsets, default all ten).
        criteria: decision-criteria families to fit per function; any of
            ``"threshold"``, ``"equal_width"``, ``"kmeans"``.
        region_k: bin/cluster count for the region criteria.
        combiner: ``"best_graph"`` (paper's C columns), ``"weighted_average"``
            (W column) or ``"majority"``.
        clusterer: ``"transitive"`` (paper default), ``"correlation"``
            or ``"star"`` (extension; see :mod:`repro.graph.star`).
        training_fraction: labeled fraction used for fitting (paper: 0.1).
        sampling_mode: ``"pairs"`` or ``"documents"``
            (see :mod:`repro.ml.sampling`).
        correlation_seed: RNG seed of the correlation clusterer.
        blocker: candidate-pair generation scheme for collection passes —
            ``"query_name"`` (the paper's per-name blocking, the
            default), ``"token"`` or ``"sorted_neighborhood"``, or any
            :func:`~repro.core.registry.register_blocker` registration.
            ``"query_name"`` keeps the dense per-name fast path
            (bit-identical to the pre-registry pipeline); any other
            blocker re-blocks the corpus into candidate components and
            similarity is computed for candidate pairs only (see
            ``docs/blocking.md``).  Unlike ``backend``, the blocker
            changes which pairs exist downstream, so it *is* serialized
            with fitted models.
        executor: block-executor backend scheduling per-block work —
            ``"serial"`` (default) or ``"process"``
            (see :mod:`repro.runtime.executor`).  Serial and parallel
            backends produce bit-identical results at fixed seeds.
        workers: worker count for parallel executors (ignored by
            ``"serial"``); the CLI's ``--workers N`` maps onto these two
            fields.
        oversubscribe: let parallel executors schedule more workers than
            the host has cores (default off: block work is CPU-bound, so
            oversubscription normally just adds overhead — the knob
            exists for core-miscounting environments and tests; the
            CLI's ``--oversubscribe`` maps onto it).
        backend: pairwise-scoring backend for the similarity hot path —
            ``"python"`` (prepared scalar scorers) or ``"numpy"``
            (vectorized block kernels); see
            :mod:`repro.similarity.backends`.  All backends produce
            bit-identical scores, so this is purely a speed knob.
            Defaults to the ``REPRO_BACKEND`` environment variable when
            set; the CLI's ``--backend`` maps onto it.  A per-process
            runtime choice: never serialized into saved models (see
            :meth:`to_dict`).
    """

    function_names: tuple[str, ...] = ALL_FUNCTION_NAMES
    criteria: tuple[str, ...] = ("threshold", "equal_width", "kmeans")
    region_k: int = 10
    combiner: str = "best_graph"
    clusterer: str = "transitive"
    training_fraction: float = 0.1
    sampling_mode: str = "pairs"
    correlation_seed: int = 0
    blocker: str = "query_name"
    executor: str = "serial"
    workers: int = 1
    oversubscribe: bool = False
    backend: str = field(default_factory=default_backend)

    def __post_init__(self) -> None:
        if not self.function_names:
            raise ValueError("at least one similarity function is required")
        if not self.criteria:
            raise ValueError("at least one decision criterion is required")
        # Every pluggable backend is validated against its registry, so a
        # typo fails at construction with the known values listed instead
        # of blowing up mid-resolve.
        for function_name in self.function_names:
            SIMILARITIES.validate(function_name)
        COMBINERS.validate(self.combiner)
        for criterion in self.criteria:
            CRITERIA.validate(criterion)
        CLUSTERERS.validate(self.clusterer)
        SAMPLING_MODES.validate(self.sampling_mode)
        BLOCKERS.validate(self.blocker)
        EXECUTORS.validate(self.executor)
        BACKENDS.validate(self.backend)
        if not 0.0 < self.training_fraction <= 1.0:
            raise ValueError(
                f"training_fraction must be in (0, 1], got {self.training_fraction}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable snapshot (tuples become lists).

        ``backend`` is deliberately *not* serialized: like the CLI's
        ``--workers``, it is a runtime choice of the current process —
        backends are bit-identical, so baking the fitting host's choice
        into the artifact would only make saved models
        environment-dependent.  Loaders resolve it from their own
        ambient default (``REPRO_BACKEND`` / ``--backend``); a payload
        that does carry an explicit ``"backend"`` key is still honored
        by :meth:`from_dict`.
        """
        return {
            "function_names": list(self.function_names),
            "criteria": list(self.criteria),
            "region_k": self.region_k,
            "combiner": self.combiner,
            "clusterer": self.clusterer,
            "training_fraction": self.training_fraction,
            "sampling_mode": self.sampling_mode,
            "correlation_seed": self.correlation_seed,
            "blocker": self.blocker,
            "executor": self.executor,
            "workers": self.workers,
            "oversubscribe": self.oversubscribe,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "ResolverConfig":
        """Rebuild (and re-validate) a config saved by :meth:`to_dict`.

        Runtime fields default when absent, so models saved before the
        execution engine existed still load.
        """
        return cls(
            function_names=tuple(payload["function_names"]),
            criteria=tuple(payload["criteria"]),
            region_k=int(payload["region_k"]),
            combiner=str(payload["combiner"]),
            clusterer=str(payload["clusterer"]),
            training_fraction=float(payload["training_fraction"]),
            sampling_mode=str(payload["sampling_mode"]),
            correlation_seed=int(payload["correlation_seed"]),
            blocker=str(payload.get("blocker", "query_name")),
            executor=str(payload.get("executor", "serial")),
            workers=int(payload.get("workers", 1)),
            oversubscribe=bool(payload.get("oversubscribe", False)),
            backend=str(payload.get("backend") or default_backend()),
        )


#: Table II column presets: function subsets with threshold-only decisions
#: (I columns) or the full criteria battery under best-graph selection
#: (C columns), plus the weighted-average combination (W column).
I4 = ("F4", "F5", "F7", "F9")
I7 = ("F3", "F4", "F5", "F7", "F8", "F9", "F10")
I10 = ALL_FUNCTION_NAMES


def table2_config(column: str, region_k: int = 10) -> ResolverConfig:
    """The resolver configuration behind one Table II column.

    Args:
        column: one of ``"I4" "I7" "I10" "C4" "C7" "C10" "W"``.

    Raises:
        ValueError: for unknown column names.
    """
    subsets = {"4": I4, "7": I7, "10": I10}
    if column in ("I4", "I7", "I10"):
        return ResolverConfig(
            function_names=subsets[column[1:]],
            criteria=("threshold",),
            combiner="best_graph",
            region_k=region_k,
        )
    if column in ("C4", "C7", "C10"):
        return ResolverConfig(
            function_names=subsets[column[1:]],
            criteria=("threshold", "equal_width", "kmeans"),
            combiner="best_graph",
            region_k=region_k,
        )
    if column == "W":
        return ResolverConfig(
            function_names=I10,
            criteria=("threshold", "equal_width", "kmeans"),
            combiner="weighted_average",
            region_k=region_k,
        )
    raise ValueError(f"unknown Table II column: {column!r}")
