"""Entropy-based informativeness metrics (paper future work, §VII).

The paper's conclusion proposes addressing "the effect of incomplete
information available in the Web pages on the accuracy of the similarity
functions, by considering entropy based metrics" (citing PicShark).  This
module implements that direction:

* **feature availability** — how often each feature actually carries
  evidence in a block;
* **value entropy** — the Shannon entropy of a function's (discretized)
  similarity distribution: a function whose values are all alike cannot
  discriminate anything;
* **information gain** — the mutual information between a function's
  region and the link label on the training sample, a direct measure of
  how much a function's value tells us about co-reference;
* an **entropy-weighted combiner** that weights layers by information
  gain instead of raw accuracy.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.core.combination import (
    CombinationResult,
    Combiner,
    DecisionLayer,
    _require_layers,
)
from repro.core.labels import TrainingSample
from repro.core.regions import Regions
from repro.core.thresholds import learn_threshold
from repro.extraction.features import PageFeatures
from repro.graph.entity_graph import DecisionGraph, PairKey, WeightedPairGraph

#: PageFeatures attributes that can be "missing" on a page.
AVAILABILITY_FEATURES = (
    "most_frequent_name", "closest_name_to_query", "concept_vector",
    "organizations", "other_persons", "tfidf",
)


def shannon_entropy(probabilities: Sequence[float]) -> float:
    """Shannon entropy (bits) of a distribution; zero-mass atoms ignored.

    Raises:
        ValueError: if the distribution does not sum to ~1.
    """
    total = sum(probabilities)
    if abs(total - 1.0) > 1e-6:
        raise ValueError(f"probabilities sum to {total}, not 1")
    entropy = -sum(p * math.log2(p) for p in probabilities if p > 0.0)
    return max(0.0, entropy)  # avoid -0.0 for degenerate distributions


def feature_availability(features: dict[str, PageFeatures]) -> dict[str, float]:
    """Fraction of pages on which each feature carries evidence."""
    if not features:
        return {name: 0.0 for name in AVAILABILITY_FEATURES}
    counts = {name: 0 for name in AVAILABILITY_FEATURES}
    for bundle in features.values():
        for name in AVAILABILITY_FEATURES:
            if bundle.has_feature(name):
                counts[name] += 1
    n_pages = len(features)
    return {name: count / n_pages for name, count in counts.items()}


def value_entropy(graph: WeightedPairGraph, n_bins: int = 10) -> float:
    """Entropy (bits) of a function's discretized similarity distribution.

    0 bits means every pair gets the same value — the function carries no
    signal for this block regardless of its nominal accuracy.
    """
    values = graph.values()
    if not values:
        return 0.0
    counts = [0] * n_bins
    for value in values:
        index = min(int(min(1.0, max(0.0, value)) * n_bins), n_bins - 1)
        counts[index] += 1
    total = len(values)
    return shannon_entropy([count / total for count in counts if count])


def information_gain(regions: Regions,
                     labeled_values: Sequence[tuple[float, bool]]) -> float:
    """Mutual information I(region; link) in bits over a training sample.

    Measures how much knowing a value's region reduces uncertainty about
    the pair's label — the entropy-based informativeness of a function
    under a region scheme.  Returns 0.0 for empty samples.
    """
    if not labeled_values:
        return 0.0
    total = len(labeled_values)
    joint: dict[tuple[int, bool], int] = {}
    region_counts: dict[int, int] = {}
    n_links = 0
    for value, label in labeled_values:
        region = regions.assign(value)
        joint[(region, label)] = joint.get((region, label), 0) + 1
        region_counts[region] = region_counts.get(region, 0) + 1
        if label:
            n_links += 1

    p_link = n_links / total
    label_entropy = shannon_entropy(
        [p for p in (p_link, 1.0 - p_link) if p > 0.0])

    conditional = 0.0
    for region, count in region_counts.items():
        p_region = count / total
        link_in_region = joint.get((region, True), 0) / count
        region_entropy = shannon_entropy(
            [p for p in (link_in_region, 1.0 - link_in_region) if p > 0.0])
        conditional += p_region * region_entropy
    return max(0.0, label_entropy - conditional)


def layer_information_gain(layer: DecisionLayer,
                           graph: WeightedPairGraph,
                           training: TrainingSample) -> float:
    """Information gain of one fitted decision layer."""
    labeled_values = training.labeled_values(graph)
    return information_gain(layer.fitted.profile.regions, labeled_values)


class EntropyWeightedCombiner(Combiner):
    """Weighted-average combination with information-gain weights.

    Identical to :class:`~repro.core.combination.WeightedAverageCombiner`
    except layers are weighted by their information gain (plus a small
    floor so zero-gain layers do not poison the denominator) rather than
    by raw training accuracy.  Accuracy rewards agreeing with the majority
    class; information gain rewards *reducing uncertainty*, which is what
    an uninformative-but-lucky function lacks.
    """

    name = "entropy_weighted"

    def __init__(self, graphs: dict[str, WeightedPairGraph]):
        self._graphs = graphs

    def combine(self, layers: Sequence[DecisionLayer],
                training: TrainingSample) -> CombinationResult:
        _require_layers(layers)
        nodes = list(layers[0].graph.nodes)
        weights = []
        for layer in layers:
            gain = layer_information_gain(
                layer, self._graphs[layer.function_name], training)
            weights.append(gain + 1e-6)
        total_weight = sum(weights)

        combined: dict[PairKey, float] = {}
        all_pairs: set[PairKey] = set()
        for layer in layers:
            all_pairs.update(layer.probabilities)
        for pair in all_pairs:
            numerator = 0.0
            for layer, weight in zip(layers, weights):
                numerator += weight * layer.probabilities.get(pair, 0.0)
            combined[pair] = numerator / total_weight

        labeled = [(combined.get(pair, 0.0), label)
                   for pair, label in training.pairs]
        threshold = learn_threshold(labeled)
        graph = DecisionGraph(nodes=nodes)
        for pair, probability in combined.items():
            if threshold.decide(probability):
                graph.edges.add(pair)
        return CombinationResult(
            graph=graph,
            probabilities=WeightedPairGraph(nodes=nodes, weights=combined),
            threshold=threshold.threshold,
            diagnostics={"total_gain": total_weight},
        )
