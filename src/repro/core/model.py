"""Fitted resolver models — the serve side of the fit → predict split.

:meth:`repro.core.resolver.EntityResolver.fit` consumes ground-truth
labels once and produces a :class:`ResolverModel`: the fitted
per-(function, criterion) decisions, their accuracy estimates, and the
combiner/clusterer parameters of every block.  The model then serves
*unlabeled* pages — :meth:`ResolverModel.predict` never reads
``person_id`` — and round-trips through JSON with :meth:`ResolverModel.save`
/ :meth:`ResolverModel.load`, so the expensive learning step runs once and
the model is reused across processes.

Evaluation against ground truth is a separate, explicit path
(:meth:`ResolverModel.evaluate`), which the legacy
``EntityResolver.resolve_block`` / ``resolve_collection`` wrappers build
on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.clusterers import cluster_combination
from repro.core.combination import (
    CombinationResult,
    DecisionLayer,
    build_combiner,
)
from repro.core.config import ResolverConfig
from repro.core.decisions import FittedDecision
from repro.corpus.documents import (
    DocumentCollection,
    NameCollection,
    find_by_query_name,
)
from repro.corpus.vocabulary import build_vocabulary
from repro.extraction.features import PageFeatures
from repro.extraction.pipeline import ExtractionPipeline
from repro.graph.entity_graph import DecisionGraph, WeightedPairGraph, pair_key
from repro.metrics.clusterings import Clustering, clustering_from_assignments
from repro.metrics.report import MetricReport, evaluate_clustering, mean_report
from repro.similarity.base import SimilarityFunction
from repro.similarity.functions import functions_subset

#: On-disk model format version.
MODEL_FORMAT_VERSION = 1


def compute_similarity_graphs(
    block: NameCollection,
    features: dict[str, PageFeatures],
    functions: list[SimilarityFunction],
) -> dict[str, WeightedPairGraph]:
    """The complete weighted graph ``G_w^fi`` for every function.

    This is the quadratic step; experiments precompute and cache these
    graphs per dataset because similarity values do not depend on the
    training sample.
    """
    ids = block.page_ids()
    graphs = {
        function.name: WeightedPairGraph(nodes=list(ids))
        for function in functions
    }
    for i, left_id in enumerate(ids):
        left = features[left_id]
        for right_id in ids[i + 1:]:
            right = features[right_id]
            key = pair_key(left_id, right_id)
            for function in functions:
                graphs[function.name].weights[key] = function(left, right)
    return graphs


def resolve_extraction_pipeline(
    collection: DocumentCollection,
    pipeline: ExtractionPipeline | None = None,
) -> ExtractionPipeline:
    """The pipeline to extract ``collection`` with.

    Raises:
        ValueError: when no pipeline was supplied and the collection
            carries no vocabulary metadata to rebuild one from.
    """
    if pipeline is not None:
        return pipeline
    seed = collection.metadata.get("vocabulary_seed")
    if seed is None:
        raise ValueError(
            "collection has no vocabulary metadata; pass an ExtractionPipeline")
    vocabulary = build_vocabulary(int(seed))
    return ExtractionPipeline.from_vocabulary(
        vocabulary, query_names=collection.query_names())


@dataclass(frozen=True)
class FittedLayer:
    """One fitted (function, criterion) decision, detached from any graph.

    This is the persistent core of a :class:`DecisionLayer`: everything
    needed to re-decide arbitrary similarity values, but none of the
    block-specific edges — those are recomputed at predict time.
    """

    function_name: str
    criterion_name: str
    fitted: FittedDecision
    graph_accuracy: float

    @property
    def label(self) -> str:
        return f"{self.function_name}/{self.criterion_name}"

    @property
    def training_accuracy(self) -> float:
        return self.fitted.training_accuracy

    def to_dict(self) -> dict[str, object]:
        return {
            "function_name": self.function_name,
            "criterion_name": self.criterion_name,
            "graph_accuracy": self.graph_accuracy,
            "fitted": self.fitted.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "FittedLayer":
        return cls(
            function_name=str(payload["function_name"]),
            criterion_name=str(payload["criterion_name"]),
            graph_accuracy=float(payload["graph_accuracy"]),
            fitted=FittedDecision.from_dict(payload["fitted"]),
        )


@dataclass
class FittedBlock:
    """Everything fitting learned for one name's block.

    Attributes:
        query_name: the block the state was fitted on.
        layers: fitted decisions in (function-outer, criterion-inner)
            order — the same order :meth:`EntityResolver.build_layers`
            produces, which combiners rely on for determinism.
        combiner_params: the combiner's :meth:`~Combiner.fit_params`
            output (e.g. the chosen layer, the learned combination
            threshold).
        n_training: training-sample size, for diagnostics.
    """

    query_name: str
    layers: list[FittedLayer]
    combiner_params: dict[str, object] = field(default_factory=dict)
    n_training: int = 0

    def __post_init__(self) -> None:
        # Decision layers are a pure function of (fitted decisions,
        # similarity graphs); fitting seeds this one-shot hand-off so the
        # immediate fit → predict pass (the resolve_* wrappers, the
        # experiment runner) applies them once.  Identity-keyed with a
        # strong reference — a recycled id can never alias a different
        # graphs dict — and *consumed* on first use, so a model kept
        # alive for serving does not pin the training dataset's quadratic
        # similarity graphs in memory.
        self._layer_cache: tuple[dict, list[DecisionLayer]] | None = None

    def decision_layers(
        self, graphs: dict[str, WeightedPairGraph],
    ) -> list[DecisionLayer]:
        """Decision layers over ``graphs`` (consumes the fit-time cache)."""
        cache, self._layer_cache = self._layer_cache, None
        if cache is not None and cache[0] is graphs:
            return cache[1]
        return build_decision_layers(self.layers, graphs)

    def layer_accuracies(self) -> dict[str, float]:
        """Per-layer training accuracy, keyed by layer label."""
        return {layer.label: layer.training_accuracy for layer in self.layers}

    def to_dict(self) -> dict[str, object]:
        return {
            "query_name": self.query_name,
            "n_training": self.n_training,
            "combiner_params": self.combiner_params,
            "layers": [layer.to_dict() for layer in self.layers],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "FittedBlock":
        return cls(
            query_name=str(payload["query_name"]),
            layers=[FittedLayer.from_dict(entry)
                    for entry in payload["layers"]],
            combiner_params=dict(payload["combiner_params"]),
            n_training=int(payload["n_training"]),
        )


def apply_fitted_decision(
    decision: FittedDecision,
    graph: WeightedPairGraph,
) -> tuple[DecisionGraph, dict]:
    """One fitted decision over one similarity graph: edges + probabilities.

    The single definition of the edge rule shared by fit-time layer
    building (:meth:`EntityResolver.build_layers`) and predict-time
    re-application, which keeps fit/predict bit-identical by construction.
    """
    decision_graph = DecisionGraph(nodes=list(graph.nodes))
    probabilities = {}
    for pair, value in graph.pairs():
        probabilities[pair] = decision.link_probability(value)
        if decision.decide(value):
            decision_graph.edges.add(pair)
    return decision_graph, probabilities


def build_decision_layers(
    fitted_layers: list[FittedLayer],
    graphs: dict[str, WeightedPairGraph],
) -> list[DecisionLayer]:
    """Apply fitted decisions to similarity graphs, yielding decision layers.

    This is the label-free half of :meth:`EntityResolver.build_layers`:
    edges and probabilities come from the stored fitted decisions, and the
    accuracy estimates are the stored training-time values.
    """
    layers: list[DecisionLayer] = []
    for fitted_layer in fitted_layers:
        graph = graphs[fitted_layer.function_name]
        decision_graph, probabilities = apply_fitted_decision(
            fitted_layer.fitted, graph)
        layers.append(DecisionLayer(
            function_name=fitted_layer.function_name,
            criterion_name=fitted_layer.criterion_name,
            graph=decision_graph,
            probabilities=probabilities,
            fitted=fitted_layer.fitted,
            graph_accuracy=fitted_layer.graph_accuracy,
        ))
    return layers


@dataclass
class BlockPrediction:
    """Predictions-only resolution of one block (no ground truth read)."""

    query_name: str
    predicted: Clustering
    combination: CombinationResult
    layer_accuracies: dict[str, float] = field(default_factory=dict)

    @property
    def chosen_layer(self) -> str | None:
        """Winning layer under best-graph selection (else ``None``)."""
        return self.combination.chosen_layer

    def n_entities(self) -> int:
        return len(self.predicted)


@dataclass
class CollectionPrediction:
    """Predictions for a whole dataset (one entry per ambiguous name)."""

    dataset: str
    blocks: list[BlockPrediction]

    def __post_init__(self) -> None:
        self._index: tuple[int, dict[str, int]] | None = None

    def by_name(self, query_name: str) -> BlockPrediction:
        """Prediction for one name (lazy name→block index; amortized O(1)).

        Raises:
            KeyError: if the name is absent.
        """
        return find_by_query_name(self, self.blocks, query_name)

    def n_entities(self) -> int:
        """Total predicted entity count across all names."""
        return sum(block.n_entities() for block in self.blocks)


@dataclass
class BlockResolution:
    """Resolution output and diagnostics for one name's block."""

    query_name: str
    predicted: Clustering
    truth: Clustering
    report: MetricReport
    combination: CombinationResult
    layer_accuracies: dict[str, float] = field(default_factory=dict)

    @property
    def chosen_layer(self) -> str | None:
        """Winning layer under best-graph selection (else ``None``)."""
        return self.combination.chosen_layer


@dataclass
class CollectionResolution:
    """Resolution of a whole dataset (one entry per ambiguous name)."""

    dataset: str
    blocks: list[BlockResolution]

    def __post_init__(self) -> None:
        self._index: tuple[int, dict[str, int]] | None = None

    def mean_report(self) -> MetricReport:
        """Macro-average of the per-name metric reports."""
        return mean_report([block.report for block in self.blocks])

    def by_name(self, query_name: str) -> BlockResolution:
        """Result for one name (lazy name→block index; amortized O(1)).

        Raises:
            KeyError: if the name is absent.
        """
        return find_by_query_name(self, self.blocks, query_name)


class ResolverModel:
    """A fitted entity-resolution model, ready to serve unlabeled pages.

    Produced by :meth:`EntityResolver.fit`; holds one :class:`FittedBlock`
    per ambiguous name plus the configuration that fitting ran under.
    ``predict`` resolves blocks without ground truth; ``evaluate`` scores
    predictions against labels; ``save``/``load`` round-trip the fitted
    state through JSON.

    Args:
        config: the resolver configuration fitting ran under.
        blocks: fitted state per query name.
        pipeline: optional extraction pipeline for predicting from raw
            pages (not serialized — re-supply it after :meth:`load`, or
            rely on collection vocabulary metadata).
    """

    def __init__(self, config: ResolverConfig,
                 blocks: dict[str, FittedBlock],
                 pipeline: ExtractionPipeline | None = None):
        self.config = config
        self.blocks = dict(blocks)
        self.pipeline = pipeline
        self._functions = functions_subset(config.function_names)
        self._combiner = build_combiner(config.combiner)

    def block_names(self) -> list[str]:
        """Names the model holds fitted state for, in fit order."""
        return list(self.blocks)

    def release_fit_caches(self) -> None:
        """Drop every block's fit-time layer cache.

        Fitting seeds a one-shot cache per block so the immediate
        fit → predict pass reuses the fit-time layers; the collection
        predict/evaluate paths call this afterwards so blocks that were
        never visited do not pin their training graphs.  Call it yourself
        when keeping a directly-fitted model alive without predicting.
        """
        for fitted in self.blocks.values():
            fitted._layer_cache = None

    def __contains__(self, query_name: object) -> bool:
        return query_name in self.blocks

    def __repr__(self) -> str:
        return (f"ResolverModel({len(self.blocks)} blocks, "
                f"combiner={self.config.combiner!r}, "
                f"clusterer={self.config.clusterer!r})")

    # -- predict ---------------------------------------------------------

    def predict(self, data: DocumentCollection | NameCollection, **kwargs):
        """Resolve unlabeled data.

        Dispatches to :meth:`predict_block` for a :class:`NameCollection`
        and :meth:`predict_collection` for a :class:`DocumentCollection`.
        Ground-truth labels, if present, are never read.
        """
        if isinstance(data, NameCollection):
            return self.predict_block(data, **kwargs)
        return self.predict_collection(data, **kwargs)

    def predict_block(
        self,
        block: NameCollection,
        pipeline: ExtractionPipeline | None = None,
        features: dict[str, PageFeatures] | None = None,
        graphs: dict[str, WeightedPairGraph] | None = None,
        model_block: str | None = None,
    ) -> BlockPrediction:
        """Resolve one block with the fitted machinery — labels unused.

        Args:
            block: the pages to resolve (``person_id`` may be ``None``).
            pipeline: extraction pipeline (defaults to the model's).
            features: precomputed page features (skips extraction).
            graphs: precomputed weighted graphs (skips extraction and
                similarity computation).
            model_block: reuse the fitted state of a *different* name —
                how a model serves names it was never fitted on.

        Raises:
            KeyError: when no fitted state exists for the block's name.
            ValueError: when no pipeline/features/graphs are available.
        """
        fitted = self._fitted_for(model_block or block.query_name)
        if graphs is None:
            if features is None:
                pipeline = pipeline or self.pipeline
                if pipeline is None:
                    raise ValueError("need a pipeline, features, or graphs")
                features = pipeline.extract_block(block)
            graphs = compute_similarity_graphs(block, features, self._functions)

        layers = fitted.decision_layers(graphs)
        combination = self._combiner.apply(layers, fitted.combiner_params)
        predicted = cluster_combination(
            self.config.clusterer, combination,
            seed=self.config.correlation_seed)
        return BlockPrediction(
            query_name=block.query_name,
            predicted=predicted,
            combination=combination,
            layer_accuracies={layer.label: layer.training_accuracy
                              for layer in layers},
        )

    def predict_collection(
        self,
        collection: DocumentCollection,
        pipeline: ExtractionPipeline | None = None,
        graphs_by_name: dict[str, dict[str, WeightedPairGraph]] | None = None,
        model_block: str | None = None,
    ) -> CollectionPrediction:
        """Resolve every block of an unlabeled dataset.

        The extraction pipeline is resolved lazily: blocks covered by
        ``graphs_by_name`` never need one.  Names the model was never
        fitted on fall back to ``model_block``'s fitted state when given
        (fitted names always use their own state).
        """
        resolved_pipeline = pipeline or self.pipeline
        blocks = []
        for block in collection:
            graphs = (graphs_by_name or {}).get(block.query_name)
            if graphs is None and resolved_pipeline is None:
                resolved_pipeline = resolve_extraction_pipeline(collection)
            fallback = (model_block if block.query_name not in self.blocks
                        else None)
            blocks.append(self.predict_block(
                block, pipeline=resolved_pipeline, graphs=graphs,
                model_block=fallback))
        self.release_fit_caches()
        return CollectionPrediction(dataset=collection.name, blocks=blocks)

    # -- evaluate --------------------------------------------------------

    def evaluate(self, data: DocumentCollection | NameCollection, **kwargs):
        """Predict, then score against ground truth (labels required).

        Dispatches like :meth:`predict`; returns :class:`BlockResolution`
        or :class:`CollectionResolution`.
        """
        if isinstance(data, NameCollection):
            return self.evaluate_block(data, **kwargs)
        return self.evaluate_collection(data, **kwargs)

    def evaluate_block(self, block: NameCollection,
                       **kwargs) -> BlockResolution:
        """Predict one labeled block and score the prediction.

        Raises:
            ValueError: when any page lacks a ground-truth label.
        """
        prediction = self.predict_block(block, **kwargs)
        truth = clustering_from_assignments(block.ground_truth())
        report = evaluate_clustering(prediction.predicted, truth)
        return BlockResolution(
            query_name=block.query_name,
            predicted=prediction.predicted,
            truth=truth,
            report=report,
            combination=prediction.combination,
            layer_accuracies=prediction.layer_accuracies,
        )

    def evaluate_collection(
        self,
        collection: DocumentCollection,
        pipeline: ExtractionPipeline | None = None,
        graphs_by_name: dict[str, dict[str, WeightedPairGraph]] | None = None,
        model_block: str | None = None,
    ) -> CollectionResolution:
        """Predict a labeled dataset and score every block.

        ``model_block`` serves unfitted names as in
        :meth:`predict_collection`.
        """
        resolved_pipeline = pipeline or self.pipeline
        blocks = []
        for block in collection:
            graphs = (graphs_by_name or {}).get(block.query_name)
            if graphs is None and resolved_pipeline is None:
                resolved_pipeline = resolve_extraction_pipeline(collection)
            fallback = (model_block if block.query_name not in self.blocks
                        else None)
            blocks.append(self.evaluate_block(
                block, pipeline=resolved_pipeline, graphs=graphs,
                model_block=fallback))
        self.release_fit_caches()
        return CollectionResolution(dataset=collection.name, blocks=blocks)

    # -- persistence -----------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the fitted model to ``path`` as a single JSON document."""
        payload = {
            "format_version": MODEL_FORMAT_VERSION,
            "config": self.config.to_dict(),
            "blocks": {name: fitted.to_dict()
                       for name, fitted in self.blocks.items()},
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)

    @classmethod
    def load(cls, path: str | Path,
             pipeline: ExtractionPipeline | None = None) -> "ResolverModel":
        """Read a model previously written by :meth:`save`.

        Custom registry backends referenced by the stored config must be
        registered (their modules imported) before loading.

        Raises:
            ValueError: for incompatible format versions or backends the
                current process has not registered.
        """
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        version = payload.get("format_version")
        if version != MODEL_FORMAT_VERSION:
            raise ValueError(
                f"unsupported model format version: {version!r}")
        config = ResolverConfig.from_dict(payload["config"])
        blocks = {name: FittedBlock.from_dict(entry)
                  for name, entry in payload["blocks"].items()}
        return cls(config=config, blocks=blocks, pipeline=pipeline)

    # -- internals -------------------------------------------------------

    def _fitted_for(self, query_name: str) -> FittedBlock:
        try:
            return self.blocks[query_name]
        except KeyError:
            known = ", ".join(sorted(self.blocks)) or "<none>"
            raise KeyError(
                f"no fitted state for block {query_name!r}; fitted blocks "
                f"are: {known} (reuse one via model_block= / "
                f"--model-block)") from None
