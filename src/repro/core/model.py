"""Fitted resolver models — the serve side of the fit → predict split.

:meth:`repro.core.resolver.EntityResolver.fit` consumes ground-truth
labels once and produces a :class:`ResolverModel`: the fitted
per-(function, criterion) decisions, their accuracy estimates, and the
combiner/clusterer parameters of every block.  The model then serves
*unlabeled* pages — :meth:`ResolverModel.predict` never reads
``person_id`` — and round-trips through JSON with :meth:`ResolverModel.save`
/ :meth:`ResolverModel.load`, so the expensive learning step runs once and
the model is reused across processes.

Evaluation against ground truth is a separate, explicit path
(:meth:`ResolverModel.evaluate`), which the legacy
``EntityResolver.resolve_block`` / ``resolve_collection`` wrappers build
on.
"""

from __future__ import annotations

import json
import time
from collections.abc import Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.clusterers import cluster_combination
from repro.core.combination import (
    CombinationResult,
    DecisionLayer,
    build_combiner,
)
from repro.core.config import ResolverConfig
from repro.core.decisions import FittedDecision
from repro.corpus.documents import (
    DocumentCollection,
    NameCollection,
    find_by_query_name,
)
from repro.corpus.vocabulary import build_vocabulary
from repro.extraction.features import PageFeatures
from repro.extraction.pipeline import ExtractionPipeline
from repro.graph.entity_graph import DecisionGraph, WeightedPairGraph
from repro.metrics.clusterings import Clustering, clustering_from_assignments
from repro.metrics.report import MetricReport, evaluate_clustering, mean_report
from repro.runtime.batch import batched_similarity_graphs
from repro.runtime.cache import SimilarityCache
from repro.runtime.executor import BlockExecutor, executor_from_config
from repro.runtime.stats import RunStats
from repro.similarity.base import SimilarityFunction
from repro.similarity.functions import functions_subset

#: On-disk model format version.
MODEL_FORMAT_VERSION = 1


def compute_similarity_graphs(
    block: NameCollection,
    features: dict[str, PageFeatures],
    functions: list[SimilarityFunction],
    cache: SimilarityCache | None = None,
    backend: str | None = None,
    mask: frozenset | None = None,
) -> dict[str, WeightedPairGraph]:
    """The weighted graph ``G_w^fi`` for every function.

    This is the quadratic step; experiments precompute and cache these
    graphs per dataset because similarity values do not depend on the
    training sample.  Delegates to the runtime engine's batched builder
    (:func:`~repro.runtime.batch.batched_similarity_graphs`): one pass
    over the block's pairs fills every function's graph through the
    selected scoring backend, with identical values to scoring each pair
    naively.

    Args:
        cache: optional :class:`~repro.runtime.cache.SimilarityCache`;
            (block, mask, function) graphs already stored there are
            reused and fresh ones stored back.
        backend: scoring-backend name
            (:data:`~repro.similarity.backends.BACKENDS`); ``None`` uses
            the ambient default.  Bit-identical across backends.
        mask: optional candidate-pair mask from a blocker; only masked
            pairs are scored, so the graphs carry candidate edges only.
            ``None`` (default): the complete graph.
    """
    return batched_similarity_graphs(block, features, functions, cache=cache,
                                     backend=backend, mask=mask)


def resolve_extraction_pipeline(
    collection: DocumentCollection,
    pipeline: ExtractionPipeline | None = None,
) -> ExtractionPipeline:
    """The pipeline to extract ``collection`` with.

    Raises:
        ValueError: when no pipeline was supplied and the collection
            carries no vocabulary metadata to rebuild one from.
    """
    if pipeline is not None:
        return pipeline
    seed = collection.metadata.get("vocabulary_seed")
    if seed is None:
        raise ValueError(
            "collection has no vocabulary metadata; pass an ExtractionPipeline")
    # Scale corpora record non-default lexicon sizes (see
    # repro.corpus.vocabulary.vocabulary_sizes) so the exact vocabulary —
    # and therefore the NER gazetteers — is reconstructible from disk.
    sizes = collection.metadata.get("vocabulary_sizes") or {}
    vocabulary = build_vocabulary(
        int(seed), **{key: int(value) for key, value in sizes.items()})
    return ExtractionPipeline.from_vocabulary(
        vocabulary, query_names=collection.query_names())


@dataclass(frozen=True)
class FittedLayer:
    """One fitted (function, criterion) decision, detached from any graph.

    This is the persistent core of a :class:`DecisionLayer`: everything
    needed to re-decide arbitrary similarity values, but none of the
    block-specific edges — those are recomputed at predict time.
    """

    function_name: str
    criterion_name: str
    fitted: FittedDecision
    graph_accuracy: float

    @property
    def label(self) -> str:
        return f"{self.function_name}/{self.criterion_name}"

    @property
    def training_accuracy(self) -> float:
        return self.fitted.training_accuracy

    def to_dict(self) -> dict[str, object]:
        return {
            "function_name": self.function_name,
            "criterion_name": self.criterion_name,
            "graph_accuracy": self.graph_accuracy,
            "fitted": self.fitted.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "FittedLayer":
        return cls(
            function_name=str(payload["function_name"]),
            criterion_name=str(payload["criterion_name"]),
            graph_accuracy=float(payload["graph_accuracy"]),
            fitted=FittedDecision.from_dict(payload["fitted"]),
        )


@dataclass
class FittedBlock:
    """Everything fitting learned for one name's block.

    Attributes:
        query_name: the block the state was fitted on.
        layers: fitted decisions in (function-outer, criterion-inner)
            order — the same order :meth:`EntityResolver.build_layers`
            produces, which combiners rely on for determinism.
        combiner_params: the combiner's :meth:`~Combiner.fit_params`
            output (e.g. the chosen layer, the learned combination
            threshold).
        n_training: training-sample size, for diagnostics.
    """

    query_name: str
    layers: list[FittedLayer]
    combiner_params: dict[str, object] = field(default_factory=dict)
    n_training: int = 0

    def __post_init__(self) -> None:
        # Decision layers are a pure function of (fitted decisions,
        # similarity graphs); fitting seeds this one-shot hand-off so the
        # immediate fit → predict pass (the resolve_* wrappers, the
        # experiment runner) applies them once.  Identity-keyed with a
        # strong reference — a recycled id can never alias a different
        # graphs dict — and *consumed* on first use, so a model kept
        # alive for serving does not pin the training dataset's quadratic
        # similarity graphs in memory.
        self._layer_cache: tuple[dict, list[DecisionLayer]] | None = None

    def decision_layers(
        self, graphs: dict[str, WeightedPairGraph],
    ) -> list[DecisionLayer]:
        """Decision layers over ``graphs`` (consumes the fit-time cache)."""
        cache, self._layer_cache = self._layer_cache, None
        if cache is not None and cache[0] is graphs:
            return cache[1]
        return build_decision_layers(self.layers, graphs)

    def layer_accuracies(self) -> dict[str, float]:
        """Per-layer training accuracy, keyed by layer label."""
        return {layer.label: layer.training_accuracy for layer in self.layers}

    def to_dict(self) -> dict[str, object]:
        return {
            "query_name": self.query_name,
            "n_training": self.n_training,
            "combiner_params": self.combiner_params,
            "layers": [layer.to_dict() for layer in self.layers],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "FittedBlock":
        return cls(
            query_name=str(payload["query_name"]),
            layers=[FittedLayer.from_dict(entry)
                    for entry in payload["layers"]],
            combiner_params=dict(payload["combiner_params"]),
            n_training=int(payload["n_training"]),
        )


def detach_fitted(fitted: FittedBlock) -> FittedBlock:
    """A copy of ``fitted`` without the fit-time layer cache.

    Executor payloads pickle the fitted state into worker processes; the
    one-shot layer cache pins the training block's quadratic similarity
    graphs and must never ride along.  Layers are immutable and shared.
    """
    return FittedBlock(
        query_name=fitted.query_name,
        layers=list(fitted.layers),
        combiner_params=dict(fitted.combiner_params),
        n_training=fitted.n_training,
    )


def apply_fitted_decisions(
    decisions: Sequence[FittedDecision],
    graph: WeightedPairGraph,
) -> list[tuple[DecisionGraph, dict]]:
    """Several fitted decisions over one similarity graph, in one pass.

    The function × criterion grid applies every criterion of a function to
    the *same* weighted graph; materializing all of them in a single pair
    sweep avoids re-iterating the quadratic pair set per layer.  Decision
    outcomes are memoized per distinct similarity value (decisions are
    pure functions of the value, and blocks repeat values heavily — every
    no-evidence pair scores 0.0), which cuts the per-pair criterion cost
    without changing any outcome.

    Per decision, edges and probabilities are inserted in the graph's pair
    order — exactly the order a one-decision loop would produce, which
    keeps this path bit-identical to the seed implementation.
    """
    results = [(DecisionGraph(nodes=list(graph.nodes)), {})
               for _ in decisions]
    memo: list[dict[float, tuple[float, bool]]] = [{} for _ in decisions]
    for pair, value in graph.pairs():
        for index, decision in enumerate(decisions):
            outcome = memo[index].get(value)
            if outcome is None:
                outcome = (decision.link_probability(value),
                           decision.decide(value))
                memo[index][value] = outcome
            decision_graph, probabilities = results[index]
            probabilities[pair] = outcome[0]
            if outcome[1]:
                decision_graph.edges.add(pair)
    return results


def apply_fitted_decision(
    decision: FittedDecision,
    graph: WeightedPairGraph,
) -> tuple[DecisionGraph, dict]:
    """One fitted decision over one similarity graph: edges + probabilities.

    The single definition of the edge rule shared by fit-time layer
    building (:meth:`EntityResolver.build_layers`) and predict-time
    re-application, which keeps fit/predict bit-identical by construction.
    Grid callers batch several decisions per graph with
    :func:`apply_fitted_decisions`.
    """
    return apply_fitted_decisions([decision], graph)[0]


def build_decision_layers(
    fitted_layers: list[FittedLayer],
    graphs: dict[str, WeightedPairGraph],
) -> list[DecisionLayer]:
    """Apply fitted decisions to similarity graphs, yielding decision layers.

    This is the label-free half of :meth:`EntityResolver.build_layers`:
    edges and probabilities come from the stored fitted decisions, and the
    accuracy estimates are the stored training-time values.  Layers
    sharing a function are applied to that function's graph in one batched
    pair sweep; output order matches ``fitted_layers`` exactly.
    """
    grouped: dict[str, list[int]] = {}
    for index, fitted_layer in enumerate(fitted_layers):
        grouped.setdefault(fitted_layer.function_name, []).append(index)

    layers: list[DecisionLayer | None] = [None] * len(fitted_layers)
    for function_name, indices in grouped.items():
        graph = graphs[function_name]
        applied = apply_fitted_decisions(
            [fitted_layers[index].fitted for index in indices], graph)
        for index, (decision_graph, probabilities) in zip(indices, applied):
            fitted_layer = fitted_layers[index]
            layers[index] = DecisionLayer(
                function_name=fitted_layer.function_name,
                criterion_name=fitted_layer.criterion_name,
                graph=decision_graph,
                probabilities=probabilities,
                fitted=fitted_layer.fitted,
                graph_accuracy=fitted_layer.graph_accuracy,
            )
    return layers


@dataclass
class BlockPrediction:
    """Predictions-only resolution of one block (no ground truth read)."""

    query_name: str
    predicted: Clustering
    combination: CombinationResult
    layer_accuracies: dict[str, float] = field(default_factory=dict)

    @property
    def chosen_layer(self) -> str | None:
        """Winning layer under best-graph selection (else ``None``)."""
        return self.combination.chosen_layer

    def n_entities(self) -> int:
        return len(self.predicted)


@dataclass
class CollectionPrediction:
    """Predictions for a whole dataset (one entry per ambiguous name).

    Attributes:
        stats: the engine's :class:`~repro.runtime.stats.RunStats` for the
            pass that produced these predictions (``None`` for results
            assembled outside the collection paths).
        stage_stats: per-stage :class:`~repro.pipeline.stage.StageStats`
            of the plan run that produced these predictions (``None``
            outside the collection paths).
    """

    dataset: str
    blocks: list[BlockPrediction]
    stats: RunStats | None = None
    stage_stats: list | None = None

    def __post_init__(self) -> None:
        self._index: tuple[int, dict[str, int]] | None = None

    def by_name(self, query_name: str) -> BlockPrediction:
        """Prediction for one name (lazy, hit-verified first-match name→block index).

        Raises:
            KeyError: if the name is absent.
        """
        return find_by_query_name(self, self.blocks, query_name)

    def n_entities(self) -> int:
        """Total predicted entity count across all names."""
        return sum(block.n_entities() for block in self.blocks)


@dataclass
class BlockResolution:
    """Resolution output and diagnostics for one name's block."""

    query_name: str
    predicted: Clustering
    truth: Clustering
    report: MetricReport
    combination: CombinationResult
    layer_accuracies: dict[str, float] = field(default_factory=dict)

    @property
    def chosen_layer(self) -> str | None:
        """Winning layer under best-graph selection (else ``None``)."""
        return self.combination.chosen_layer


@dataclass
class CollectionResolution:
    """Resolution of a whole dataset (one entry per ambiguous name).

    Attributes:
        stats: the engine's :class:`~repro.runtime.stats.RunStats` for the
            pass that produced these resolutions (``None`` for results
            assembled outside the collection paths).
        stage_stats: per-stage :class:`~repro.pipeline.stage.StageStats`
            of the plan run that produced these resolutions (``None``
            outside the collection paths).
    """

    dataset: str
    blocks: list[BlockResolution]
    stats: RunStats | None = None
    stage_stats: list | None = None

    def __post_init__(self) -> None:
        self._index: tuple[int, dict[str, int]] | None = None

    def mean_report(self) -> MetricReport:
        """Macro-average of the per-name metric reports."""
        return mean_report([block.report for block in self.blocks])

    def by_name(self, query_name: str) -> BlockResolution:
        """Result for one name (lazy, hit-verified first-match name→block index).

        Raises:
            KeyError: if the name is absent.
        """
        return find_by_query_name(self, self.blocks, query_name)


class ResolverModel:
    """A fitted entity-resolution model, ready to serve unlabeled pages.

    The model is the serve-side artifact of a four-stage lifecycle:

    1. **fit** — :meth:`EntityResolver.fit` consumes ground-truth labels
       once and returns a model holding one :class:`FittedBlock` per
       ambiguous name plus the configuration fitting ran under.
    2. **save / load** — :meth:`save` writes the fitted state as a single
       JSON document; :meth:`load` rebuilds it in any process.  Custom
       registry backends named by the stored config (combiner, clusterer,
       similarity functions, executor) must have their modules imported
       before :meth:`load` — see :mod:`repro.core.registry` for the
       plugin walkthrough.  The extraction pipeline is deliberately *not*
       serialized: re-supply it at load time, or rely on collection
       vocabulary metadata.
    3. **predict** — :meth:`predict` (and :meth:`predict_block` /
       :meth:`predict_collection`) resolves pages *without reading
       labels*; ``person_id`` may be absent.  Collection passes are
       scheduled by the runtime engine: the config's executor (or an
       explicit ``executor=`` argument) fans blocks out, a shared
       :class:`~repro.runtime.cache.SimilarityCache` reuses features and
       pairwise similarity values across passes, and the resulting
       :class:`~repro.runtime.stats.RunStats` is attached to the returned
       collection result.  Serial and parallel execution produce
       bit-identical predictions at fixed seeds.
    4. **evaluate** — :meth:`evaluate` predicts and then scores against
       ground truth (which must be present); it shares every serving code
       path with predict, so reported metrics measure exactly what
       serving would produce.

    A long-lived serving process should call :meth:`release_fit_caches`
    after fit-and-predict bursts: it drops the fit-time layer hand-off
    and the similarity cache's quadratic per-block state (the collection
    paths do this automatically).

    Args:
        config: the resolver configuration fitting ran under.
        blocks: fitted state per query name.
        pipeline: optional extraction pipeline for predicting from raw
            pages (not serialized — re-supply it after :meth:`load`, or
            rely on collection vocabulary metadata).
    """

    def __init__(self, config: ResolverConfig,
                 blocks: dict[str, FittedBlock],
                 pipeline: ExtractionPipeline | None = None):
        self.config = config
        self.blocks = dict(blocks)
        self.pipeline = pipeline
        self._functions = functions_subset(config.function_names)
        self._combiner = build_combiner(config.combiner)
        self._similarity_cache = SimilarityCache()
        #: RunStats of the fit pass that produced this model (set by
        #: collection fitting; None for hand-assembled or loaded models).
        self.fit_stats: RunStats | None = None
        #: per-stage StageStats of the fit plan run (set by collection
        #: fitting; None for hand-assembled or loaded models).
        self.fit_stage_stats: list | None = None

    def block_names(self) -> list[str]:
        """Names the model holds fitted state for, in fit order."""
        return list(self.blocks)

    def release_fit_caches(self) -> None:
        """Drop every block's fit-time layer cache and the similarity cache.

        Fitting seeds a one-shot cache per block so the immediate
        fit → predict pass reuses the fit-time layers, and serving fills
        the model's :class:`~repro.runtime.cache.SimilarityCache` with
        per-block features and pairwise values; both are quadratic in
        block size.  The collection predict/evaluate paths call this
        afterwards so a long-lived process does not retain per-block
        state for blocks it already served.  Call it yourself when
        keeping a directly-fitted model alive without predicting, or
        between serving bursts.  Cache hit/miss counters survive, so
        :class:`~repro.runtime.stats.RunStats` stays meaningful.
        """
        for fitted in self.blocks.values():
            fitted._layer_cache = None
        self._similarity_cache.clear()

    def cache_stats(self):
        """Counter snapshot of the model's similarity cache.

        Returns a :class:`~repro.runtime.cache.CacheStats` — pair/feature
        hit and miss totals plus the number of currently cached blocks.
        Counters survive :meth:`release_fit_caches`, so the snapshot
        reflects the process lifetime, not just the current entries.
        """
        return self._similarity_cache.stats()

    def adopt_similarity_cache(self, cache: SimilarityCache) -> None:
        """Serve predictions from an externally prepared cache.

        Pass the retained cache of an
        :meth:`~repro.experiments.runner.ExperimentContext.prepare` pass
        (its ``cache=`` argument) and subsequent default-pipeline
        ``predict_block``/``predict_fitted`` calls reuse the prepared
        per-page features and pair weights instead of recomputing them —
        the prepare-once/serve-many handoff.  The cache is shared, not
        copied: hits and misses accumulate on the adopted instance, and
        :meth:`release_fit_caches` clears *its* entries.
        """
        self._similarity_cache = cache

    def __contains__(self, query_name: object) -> bool:
        return query_name in self.blocks

    def __repr__(self) -> str:
        return (f"ResolverModel({len(self.blocks)} blocks, "
                f"combiner={self.config.combiner!r}, "
                f"clusterer={self.config.clusterer!r})")

    # -- predict ---------------------------------------------------------

    def predict(self, data: DocumentCollection | NameCollection, **kwargs):
        """Resolve unlabeled data.

        Dispatches to :meth:`predict_block` for a :class:`NameCollection`
        and :meth:`predict_collection` for a :class:`DocumentCollection`.
        Ground-truth labels, if present, are never read.
        """
        if isinstance(data, NameCollection):
            return self.predict_block(data, **kwargs)
        return self.predict_collection(data, **kwargs)

    def predict_block(
        self,
        block: NameCollection,
        pipeline: ExtractionPipeline | None = None,
        features: dict[str, PageFeatures] | None = None,
        graphs: dict[str, WeightedPairGraph] | None = None,
        model_block: str | None = None,
        mask: frozenset | None = None,
    ) -> BlockPrediction:
        """Resolve one block with the fitted machinery — labels unused.

        Args:
            block: the pages to resolve (``person_id`` may be ``None``).
            pipeline: extraction pipeline (defaults to the model's).
            features: precomputed page features (skips extraction).
            graphs: precomputed weighted graphs (skips extraction and
                similarity computation).
            model_block: reuse the fitted state of a *different* name —
                how a model serves names it was never fitted on.
            mask: candidate-pair mask restricting similarity computation
                (``None``: dense); ignored when ``graphs`` are supplied.

        Raises:
            KeyError: when no fitted state exists for the block's name.
            ValueError: when no pipeline/features/graphs are available.
        """
        fitted = self._fitted_for(model_block or block.query_name)
        return self.predict_fitted(fitted, block, pipeline=pipeline,
                                   features=features, graphs=graphs,
                                   mask=mask)

    def predict_fitted(
        self,
        fitted: FittedBlock,
        block: NameCollection,
        pipeline: ExtractionPipeline | None = None,
        features: dict[str, PageFeatures] | None = None,
        graphs: dict[str, WeightedPairGraph] | None = None,
        mask: frozenset | None = None,
    ) -> BlockPrediction:
        """Resolve one block with explicitly supplied fitted state.

        The core of :meth:`predict_block`, exposed for pipeline stages
        and custom schedulers that resolve fitted state themselves (the
        cluster stage serves each block through this method).  The
        fitted state need not live in ``self.blocks``.  A candidate
        ``mask`` restricts the similarity computation when graphs are
        computed here (callers supplying ``graphs`` pre-masked pass
        none).
        """
        if graphs is None:
            # The similarity cache is keyed by block content (and mask)
            # only, so it must not serve a call that supplies its own
            # features or pipeline — those may score differently than
            # the model's defaults that populated the cache.
            cache = (self._similarity_cache
                     if features is None and pipeline is None else None)
            if features is None:
                pipeline = pipeline or self.pipeline
                if pipeline is None:
                    raise ValueError("need a pipeline, features, or graphs")
                if cache is not None:
                    features = cache.features_for(block,
                                                  pipeline.extract_block)
                else:
                    features = pipeline.extract_block(block)
            graphs = compute_similarity_graphs(
                block, features, self._functions, cache=cache,
                backend=self.config.backend, mask=mask)

        layers = fitted.decision_layers(graphs)
        combination = self._combiner.apply(layers, fitted.combiner_params)
        predicted = cluster_combination(
            self.config.clusterer, combination,
            seed=self.config.correlation_seed)
        return BlockPrediction(
            query_name=block.query_name,
            predicted=predicted,
            combination=combination,
            layer_accuracies={layer.label: layer.training_accuracy
                              for layer in layers},
        )

    def predict_collection(
        self,
        collection: DocumentCollection,
        pipeline: ExtractionPipeline | None = None,
        graphs_by_name: dict[str, dict[str, WeightedPairGraph]] | None = None,
        model_block: str | None = None,
        executor: BlockExecutor | None = None,
        plan=None,
    ) -> CollectionPrediction:
        """Resolve every block of an unlabeled dataset.

        The extraction pipeline is resolved lazily: blocks covered by
        ``graphs_by_name`` never need one.  Names the model was never
        fitted on fall back to ``model_block``'s fitted state when given
        (fitted names always use their own state).

        The pass is a thin driver over a stage plan (default:
        :func:`~repro.pipeline.plan.predict_plan`; override via
        ``plan=``).  Blocks are scheduled through ``executor`` (default:
        the backend the model's config selects); parallel backends
        produce the same predictions as serial execution, and the pass's
        :class:`~repro.runtime.stats.RunStats` and per-stage
        :class:`~repro.pipeline.stage.StageStats` are attached to the
        result.
        """
        blocks, stats, stage_stats = self._run_collection(
            collection, pipeline, graphs_by_name, model_block, executor,
            evaluate=False, plan=plan)
        return CollectionPrediction(dataset=collection.name, blocks=blocks,
                                    stats=stats, stage_stats=stage_stats)

    # -- evaluate --------------------------------------------------------

    def evaluate(self, data: DocumentCollection | NameCollection, **kwargs):
        """Predict, then score against ground truth (labels required).

        Dispatches like :meth:`predict`; returns :class:`BlockResolution`
        or :class:`CollectionResolution`.
        """
        if isinstance(data, NameCollection):
            return self.evaluate_block(data, **kwargs)
        return self.evaluate_collection(data, **kwargs)

    def evaluate_block(self, block: NameCollection,
                       **kwargs) -> BlockResolution:
        """Predict one labeled block and score the prediction.

        Raises:
            ValueError: when any page lacks a ground-truth label.
        """
        prediction = self.predict_block(block, **kwargs)
        return self._score_prediction(block, prediction)

    def evaluate_fitted(self, fitted: FittedBlock, block: NameCollection,
                        **kwargs) -> BlockResolution:
        """Predict with explicit fitted state, then score the prediction.

        The evaluate counterpart of :meth:`predict_fitted`.

        Raises:
            ValueError: when any page lacks a ground-truth label.
        """
        prediction = self.predict_fitted(fitted, block, **kwargs)
        return self._score_prediction(block, prediction)

    def _score_prediction(self, block: NameCollection,
                          prediction: BlockPrediction) -> BlockResolution:
        truth = clustering_from_assignments(block.ground_truth())
        report = evaluate_clustering(prediction.predicted, truth)
        return BlockResolution(
            query_name=block.query_name,
            predicted=prediction.predicted,
            truth=truth,
            report=report,
            combination=prediction.combination,
            layer_accuracies=prediction.layer_accuracies,
        )

    def evaluate_collection(
        self,
        collection: DocumentCollection,
        pipeline: ExtractionPipeline | None = None,
        graphs_by_name: dict[str, dict[str, WeightedPairGraph]] | None = None,
        model_block: str | None = None,
        executor: BlockExecutor | None = None,
        plan=None,
    ) -> CollectionResolution:
        """Predict a labeled dataset and score every block.

        ``model_block`` serves unfitted names, ``executor`` schedules
        blocks, and ``plan`` overrides the stage plan as in
        :meth:`predict_collection`.
        """
        blocks, stats, stage_stats = self._run_collection(
            collection, pipeline, graphs_by_name, model_block, executor,
            evaluate=True, plan=plan)
        return CollectionResolution(dataset=collection.name, blocks=blocks,
                                    stats=stats, stage_stats=stage_stats)

    # -- collection scheduling -------------------------------------------

    def _run_collection(
        self,
        collection: DocumentCollection,
        pipeline: ExtractionPipeline | None,
        graphs_by_name: dict[str, dict[str, WeightedPairGraph]] | None,
        model_block: str | None,
        executor: BlockExecutor | None,
        evaluate: bool,
        plan=None,
    ) -> tuple[list, RunStats, list]:
        """Serve every block through a stage plan; results in block order.

        The default :func:`~repro.pipeline.plan.predict_plan` runs
        ``block → extract → similarity → decide → cluster``; a custom
        ``plan`` producing a
        :class:`~repro.pipeline.artifacts.Resolution` swaps any stage.
        Returns the block results, the engine pass's
        :class:`~repro.runtime.stats.RunStats`, and the per-stage
        :class:`~repro.pipeline.stage.StageStats` records.
        """
        from repro.pipeline.artifacts import Corpus, Resolution
        from repro.pipeline.plan import predict_plan
        from repro.pipeline.stage import PipelineContext

        owns_executor = executor is None
        executor = executor or executor_from_config(self.config)
        plan = plan or predict_plan(self.config, evaluate=evaluate)
        started = time.perf_counter()
        ctx = PipelineContext(
            config=self.config,
            executor=executor,
            phase="evaluate" if evaluate else "predict",
            model=self,
            extraction=pipeline or self.pipeline,
            explicit_extraction=pipeline is not None,
            graphs_by_name=graphs_by_name,
            model_block=model_block,
            evaluate=evaluate,
        )
        try:
            resolution = plan.run(Corpus(collection=collection), ctx)
        finally:
            # Close only pools this call created from the config; a
            # caller-provided executor persists across its runs.
            if owns_executor:
                executor.close()
        if not isinstance(resolution, Resolution):
            raise TypeError(
                f"predict plan {plan.name!r} produced "
                f"{type(resolution).__name__}, expected Resolution")
        self.release_fit_caches()
        stats = ctx.engine_stats() or RunStats.for_executor(
            "evaluate" if evaluate else "predict", executor)
        # The pass's wall clock covers the whole plan, not just the
        # cluster stage (matching the pre-pipeline accounting).
        stats.wall_seconds = time.perf_counter() - started
        return resolution.results, stats, list(ctx.stage_stats)

    # -- persistence -----------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the fitted model to ``path`` as a single JSON document."""
        payload = {
            "format_version": MODEL_FORMAT_VERSION,
            "config": self.config.to_dict(),
            "blocks": {name: fitted.to_dict()
                       for name, fitted in self.blocks.items()},
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)

    @classmethod
    def load(cls, path: str | Path,
             pipeline: ExtractionPipeline | None = None) -> "ResolverModel":
        """Read a model previously written by :meth:`save`.

        Custom registry backends referenced by the stored config must be
        registered (their modules imported) before loading.

        Raises:
            ValueError: for incompatible format versions or backends the
                current process has not registered.
        """
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        version = payload.get("format_version")
        if version != MODEL_FORMAT_VERSION:
            raise ValueError(
                f"unsupported model format version: {version!r}")
        config = ResolverConfig.from_dict(payload["config"])
        blocks = {name: FittedBlock.from_dict(entry)
                  for name, entry in payload["blocks"].items()}
        return cls(config=config, blocks=blocks, pipeline=pipeline)

    # -- internals -------------------------------------------------------

    def _fitted_for(self, query_name: str) -> FittedBlock:
        try:
            return self.blocks[query_name]
        except KeyError:
            known = ", ".join(sorted(self.blocks)) or "<none>"
            raise KeyError(
                f"no fitted state for block {query_name!r}; fitted blocks "
                f"are: {known} (reuse one via model_block= / "
                f"--model-block)") from None
