"""Command-line interface.

Subcommands::

    python -m repro.cli generate --dataset www05 --out data.json
    python -m repro.cli generate --dataset scale --names 500 --pages 20 \
        --collision 0.3 --out corpus.jsonl
    python -m repro.cli fit      --model model.json [--in data.json]
    python -m repro.cli predict  --model model.json [--in data.json]
    python -m repro.cli serve    --model model.json [--requests 20] \
        [--threads 4 --batch-window 2 --swap-model model2.json]
    python -m repro.cli pipeline explain [--column C10]
    python -m repro.cli resolve  --dataset www05 [--in data.json]
    python -m repro.cli figure1  [--function F3] [--name Cohen]
    python -m repro.cli figure2 | figure3
    python -m repro.cli table2 | table3
    python -m repro.cli analyze  --dataset www05

``fit`` consumes ground-truth labels once and writes a reusable JSON
model; ``predict`` loads that model and resolves pages *without reading
labels* (add ``--evaluate`` to also score against labels when present).
``pipeline explain`` prints the stage plans a configuration resolves to
(artifact types included); ``serve`` demos the online request path — it
loads a model once and streams simulated single-page requests through a
:class:`~repro.pipeline.session.ResolutionSession`; with ``--threads N``
(N > 1) or ``--swap-model`` it serves the same stream through the
concurrent :class:`~repro.serving.engine.ServingEngine` from a
closed-loop thread pool and reports QPS with exact latency percentiles.

Common options: ``--pages`` (pages per name), ``--runs`` (protocol runs),
``--seed`` (corpus seed), ``--workers`` (block-executor fan-out: ``N > 1``
schedules per-block work on an ``N``-process pool with bit-identical
results — applies to fitting, prediction and context preparation; the
resolve/figure/table protocol loops stay serial), ``--backend``
(pairwise-scoring backend for the similarity hot path: ``python`` or
``numpy``, bit-identical — applies to fit, predict, serve, resolve and
context preparation; defaults to ``REPRO_BACKEND``; see
``docs/performance.md``), ``--blocker`` (candidate-pair generation for
fit/predict collection passes: ``query_name`` — the paper's per-name
blocking, the default — or a generic registered blocker such as
``token`` / ``sorted_neighborhood``, which re-blocks the corpus into
candidate components and scores only candidate pairs; see
``docs/blocking.md``).  All output is plain text on stdout.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.config import ResolverConfig, table2_config
from repro.core.model import ResolverModel
from repro.core.resolver import EntityResolver
from repro.corpus.datasets import surname, weps2_like, www05_like
from repro.corpus.loaders import (
    load_collection,
    save_blocks_jsonl,
    save_collection,
)
from repro.experiments.analysis import profile_collection
from repro.experiments.figures import (
    figure1_series,
    per_function_series,
)
from repro.experiments.reporting import (
    format_bar_chart,
    format_region_series,
    format_table,
)
from repro.experiments.runner import ExperimentContext
from repro.experiments.tables import TABLE2_COLUMNS, table2, table3
from repro.metrics.report import PAPER_METRICS
from repro.runtime.executor import executor_for_workers


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Entity resolution for web document collections "
                    "(ICDE 2010 reproduction)")
    parser.add_argument("--pages", type=int, default=60,
                        help="pages per ambiguous name (default 60)")
    parser.add_argument("--runs", type=int, default=3,
                        help="protocol runs to average (default 3; paper: 5)")
    parser.add_argument("--seed", type=int, default=1,
                        help="corpus seed (default 1)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for per-block work in fit, "
                             "predict, and context preparation (resolve/"
                             "figure/table protocol loops stay serial); "
                             "default 1 = serial; parallel runs are "
                             "bit-identical to serial")
    parser.add_argument("--oversubscribe", action="store_true",
                        help="let --workers exceed the host's core count "
                             "(normally the worker count is capped at "
                             "the cores the scheduling affinity grants; "
                             "useful when the environment mis-reports "
                             "cores)")
    parser.add_argument("--backend", default=None,
                        help="pairwise-scoring backend for the similarity "
                             "hot path ('python' or 'numpy'); default: the "
                             "REPRO_BACKEND environment variable, else "
                             "'python'.  Backends produce bit-identical "
                             "results — this is purely a speed knob")
    parser.add_argument("--blocker", default=None,
                        help="candidate-pair blocking for fit/predict "
                             "collection passes ('query_name', 'token', "
                             "'sorted_neighborhood', or any registered "
                             "blocker); default: the config's "
                             "('query_name', the paper's per-name "
                             "blocking).  Generic blockers re-block the "
                             "corpus into candidate components and score "
                             "only candidate pairs — unlike --backend this "
                             "changes which pairs exist, and the choice is "
                             "saved into fitted models")

    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate a dataset and write it to disk")
    generate.add_argument("--dataset", choices=("www05", "weps2", "scale"),
                          default="www05",
                          help="paper-shaped fixture or a 'scale' corpus "
                               "with synthesized names (see --names, "
                               "--collision)")
    generate.add_argument("--out", required=True,
                          help="output path; a .jsonl suffix (or --format "
                               "jsonl) selects the streaming block-per-"
                               "line format, which writes scale corpora "
                               "in O(one block) memory")
    generate.add_argument("--format", choices=("json", "jsonl"),
                          default=None,
                          help="on-disk format; default: inferred from "
                               "the --out suffix")
    generate.add_argument("--names", type=int, default=50,
                          help="scale only: total ambiguous-name count "
                               "(total pages = names x --pages; "
                               "default 50)")
    generate.add_argument("--collision", type=float, default=0.0,
                          help="scale only: probability a synthesized "
                               "name reuses an earlier name's surname "
                               "(default 0.0)")
    generate.add_argument("--cluster-skew", type=float, default=1.1,
                          help="scale only: entities-per-name Zipf skew; "
                               "0 = uniform (default 1.1)")
    generate.add_argument("--length-skew", type=float, default=0.0,
                          help="scale only: Pareto page-length tail "
                               "exponent; 0 = uniform lengths (default)")
    generate.add_argument("--vocab-zipf", type=float, default=1.05,
                          help="scale only: Zipf exponent of the lexicon "
                               "word frequencies; 0 = uniform "
                               "(default 1.05)")

    fit = commands.add_parser(
        "fit", help="fit a resolver model on labeled data and save it")
    fit.add_argument("--dataset", choices=("www05", "weps2"),
                     default="www05")
    fit.add_argument("--in", dest="input_path", default=None,
                     help="fit on a previously generated JSON dataset")
    fit.add_argument("--model", required=True,
                     help="output path for the fitted model (JSON)")
    fit.add_argument("--column", default="default",
                     help="Table II column preset, or 'default'")
    fit.add_argument("--train-seed", type=int, default=0,
                     help="training-sample seed (default 0)")

    predict = commands.add_parser(
        "predict", help="resolve pages with a saved model (labels unused)")
    predict.add_argument("--dataset", choices=("www05", "weps2"),
                         default="www05")
    predict.add_argument("--in", dest="input_path", default=None,
                         help="predict a previously generated JSON dataset")
    predict.add_argument("--model", required=True,
                         help="path of a fitted model written by 'fit'")
    predict.add_argument("--evaluate", action="store_true",
                         help="also score predictions against ground truth")
    predict.add_argument("--model-block", default=None,
                         help="fitted block whose state serves names the "
                              "model was never fitted on")

    serve = commands.add_parser(
        "serve", help="demo the online serving loop (ResolutionSession)")
    serve.add_argument("--dataset", choices=("www05", "weps2"),
                       default="www05")
    serve.add_argument("--in", dest="input_path", default=None,
                       help="serve pages of a previously generated JSON "
                            "dataset")
    serve.add_argument("--model", required=True,
                       help="path of a fitted model written by 'fit'")
    serve.add_argument("--requests", type=int, default=20,
                       help="simulated single-page requests (default 20)")
    serve.add_argument("--max-blocks", type=int, default=32,
                       help="LRU bound on prepared name blocks (default 32)")
    serve.add_argument("--model-block", default=None,
                       help="fitted block whose state serves names the "
                            "model was never fitted on")
    serve.add_argument("--threads", type=int, default=1,
                       help="closed-loop load-generator threads; > 1 "
                            "serves through the concurrent ServingEngine "
                            "(default 1: the serial demo loop)")
    serve.add_argument("--batch-window", type=float, default=2.0,
                       help="milliseconds a lane leader holds a "
                            "non-full batch open for coalescing "
                            "(engine mode only; default 2.0)")
    serve.add_argument("--swap-model", default=None,
                       help="second fitted model hot-swapped in halfway "
                            "through the request stream (engine mode)")

    pipeline_cmd = commands.add_parser(
        "pipeline", help="inspect the resolver's stage plans")
    pipeline_cmd.add_argument("action", choices=("explain",),
                              help="'explain' prints the resolved plans "
                                   "with artifact types")
    pipeline_cmd.add_argument("--column", default="default",
                              help="Table II column preset, or 'default'")

    resolve = commands.add_parser("resolve", help="run Algorithm 1")
    resolve.add_argument("--dataset", choices=("www05", "weps2"),
                         default="www05")
    resolve.add_argument("--in", dest="input_path", default=None,
                         help="resolve a previously generated JSON dataset")
    resolve.add_argument("--column", default="C10",
                         help="Table II column preset (default C10)")

    figure1 = commands.add_parser("figure1",
                                  help="per-region accuracy (paper Fig. 1)")
    figure1.add_argument("--function", default="F3")
    figure1.add_argument("--name", default=None,
                         help="query name (default: the Cohen block)")
    figure1.add_argument("--method", choices=("kmeans", "equal_width"),
                         default="kmeans")

    commands.add_parser("figure2", help="WWW'05 function comparison (Fig. 2)")
    commands.add_parser("figure3", help="WePS function comparison (Fig. 3)")
    commands.add_parser("table2", help="Table II on both datasets")
    commands.add_parser("table3", help="Table III per-name Fp")

    analyze = commands.add_parser("analyze", help="dataset difficulty profile")
    analyze.add_argument("--dataset", choices=("www05", "weps2"),
                         default="www05")
    return parser


def _dataset(args: argparse.Namespace, which: str | None = None):
    which = which or getattr(args, "dataset", "www05")
    if which == "weps2":
        return weps2_like(seed=args.seed + 1,
                          pages_per_name=int(args.pages * 1.5))
    return www05_like(seed=args.seed, pages_per_name=args.pages)


def _context(args: argparse.Namespace, which: str | None = None,
             input_path: str | None = None) -> ExperimentContext:
    if input_path:
        collection = load_collection(input_path)
    else:
        collection = _dataset(args, which)
    return ExperimentContext.prepare(
        collection,
        workers=getattr(args, "workers", 1),
        oversubscribe=getattr(args, "oversubscribe", False),
        backend=getattr(args, "backend", None))


def _apply_overrides(config: ResolverConfig,
                     args: argparse.Namespace) -> ResolverConfig:
    """The config with ``--backend``/``--blocker`` applied.

    Unchanged (same object) when neither flag was given, so saved-model
    configs pass through untouched by default.
    """
    updates = {}
    backend = getattr(args, "backend", None)
    if backend is not None and backend != config.backend:
        updates["backend"] = backend
    blocker = getattr(args, "blocker", None)
    if blocker is not None and blocker != config.blocker:
        updates["blocker"] = blocker
    if not updates:
        return config
    from dataclasses import replace
    return replace(config, **updates)


def _print_stats(stats) -> None:
    """Engine stats line (skipped when a path produced none)."""
    if stats is not None:
        print(stats.summary())


def _print_stage_stats(stage_stats) -> None:
    """Per-stage timing line (skipped when a path ran no plan)."""
    if stage_stats:
        from repro.pipeline.stage import format_stage_stats
        print(format_stage_stats(stage_stats))


def _seeds(args: argparse.Namespace, context: ExperimentContext) -> list[int]:
    return context.seeds(n_runs=args.runs, base_seed=0)


def cmd_generate(args: argparse.Namespace) -> int:
    out_format = args.format or (
        "jsonl" if str(args.out).endswith(".jsonl") else "json")
    if args.dataset == "scale":
        from repro.corpus.datasets import scale_config, scale_generator

        config = scale_config(pages_per_name=args.pages,
                              cluster_count_skew=args.cluster_skew,
                              page_length_skew=args.length_skew,
                              vocabulary_zipf=args.vocab_zipf)
        generator, names = scale_generator(
            args.names, seed=args.seed, collision_rate=args.collision,
            config=config)
        dataset_name = f"scale-{args.names}x{args.pages}"
        if out_format == "jsonl":
            # True streaming: blocks go straight to disk, one at a time —
            # this path never holds more than one block in memory.
            pages = save_blocks_jsonl(
                generator.iter_blocks(names, args.seed), args.out,
                name=dataset_name,
                metadata=generator.corpus_metadata(args.seed))
            print(f"wrote {pages} pages / {len(names)} names to {args.out} "
                  f"(streamed jsonl)")
            return 0
        collection = generator.generate(names, seed=args.seed,
                                        dataset_name=dataset_name)
    else:
        collection = _dataset(args)
    if out_format == "jsonl":
        save_blocks_jsonl(collection.collections, args.out,
                          name=collection.name,
                          metadata=collection.metadata)
    else:
        save_collection(collection, args.out)
    summary = collection.summary()
    print(f"wrote {summary['pages']} pages / {summary['names']} names "
          f"to {args.out}")
    return 0


def _load_or_generate(args: argparse.Namespace):
    if args.input_path:
        return load_collection(args.input_path)
    return _dataset(args)


def cmd_fit(args: argparse.Namespace) -> int:
    collection = _load_or_generate(args)
    config = _apply_overrides(ResolverConfig() if args.column == "default"
                            else table2_config(args.column), args)
    # --workers is a runtime choice of *this* process, passed as an
    # explicit executor so it is never baked into the saved artifact — a
    # model fitted with --workers 4 must not make later loaders fan out.
    with executor_for_workers(args.workers,
                              oversubscribe=args.oversubscribe) as executor:
        model = EntityResolver(config).fit(
            collection, training_seed=args.train_seed, executor=executor)
    model.save(args.model)
    _print_stats(model.fit_stats)
    _print_stage_stats(model.fit_stage_stats)
    rows = [[surname(name), len(fitted.layers), fitted.n_training,
             fitted.combiner_params.get("chosen_layer", "-")]
            for name, fitted in model.blocks.items()]
    print(format_table(["name", "layers", "train pairs", "chosen layer"],
                       rows, title=f"Fitted model ({config.combiner})"))
    print(f"wrote {len(model.blocks)} fitted blocks to {args.model}")
    return 0


def cmd_predict(args: argparse.Namespace) -> int:
    model = ResolverModel.load(args.model)
    # Bit-identical backends make this a pure speed override for the
    # serving pass; the saved artifact is untouched.
    model.config = _apply_overrides(model.config, args)
    collection = _load_or_generate(args)
    with executor_for_workers(args.workers,
                              oversubscribe=args.oversubscribe) as executor:
        if args.evaluate:
            unlabeled = [page.doc_id for page in collection.all_pages()
                         if page.person_id is None]
            if unlabeled:
                print(f"cannot evaluate: {len(unlabeled)} pages have no "
                      f"ground-truth label (e.g. {unlabeled[0]!r}); drop "
                      "--evaluate to predict without labels", file=sys.stderr)
                return 2
            try:
                resolution = model.evaluate(collection,
                                            model_block=args.model_block,
                                            executor=executor)
            except KeyError as error:
                print(f"cannot predict: {error.args[0]}", file=sys.stderr)
                return 2
            rows = [[surname(block.query_name), len(block.predicted),
                     block.report.fp, block.report.f1,
                     block.chosen_layer or "-"]
                    for block in resolution.blocks]
            print(format_table(["name", "entities", "Fp", "F", "layer"], rows,
                               title="Predictions (scored against labels)"))
            mean = resolution.mean_report()
            print(f"mean Fp = {mean.fp:.4f}, F = {mean.f1:.4f}")
            _print_stats(resolution.stats)
            _print_stage_stats(resolution.stage_stats)
        else:
            try:
                prediction = model.predict(collection,
                                           model_block=args.model_block,
                                           executor=executor)
            except KeyError as error:
                print(f"cannot predict: {error.args[0]}", file=sys.stderr)
                return 2
            rows = [[surname(block.query_name),
                     len(block.predicted.items), len(block.predicted),
                     block.chosen_layer or "-"]
                    for block in prediction.blocks]
            print(format_table(["name", "pages", "entities", "layer"], rows,
                               title="Predictions (ground truth unused)"))
            _print_stats(prediction.stats)
            _print_stage_stats(prediction.stage_stats)
    return 0


def cmd_pipeline(args: argparse.Namespace) -> int:
    from repro.pipeline.plan import fit_plan, predict_plan

    config = (ResolverConfig() if args.column == "default"
              else table2_config(args.column))
    print(f"stage plans for config: column={args.column}, "
          f"combiner={config.combiner!r}, clusterer={config.clusterer!r}, "
          f"functions={len(config.function_names)}")
    print()
    print(fit_plan(config).explain())
    print()
    print(predict_plan(config).explain())
    print()
    print(predict_plan(config, evaluate=True).explain())
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import time

    from repro.core.model import resolve_extraction_pipeline
    from repro.pipeline.session import ResolutionSession

    model = ResolverModel.load(args.model)
    model.config = _apply_overrides(model.config, args)
    collection = _load_or_generate(args)
    try:
        pipeline = resolve_extraction_pipeline(collection)
    except ValueError as error:
        print(f"cannot serve: {error}", file=sys.stderr)
        return 2
    if args.threads < 1:
        print(f"cannot serve: threads must be >= 1, got {args.threads}",
              file=sys.stderr)
        return 2
    if args.threads > 1 or args.swap_model:
        return _serve_concurrently(args, model, collection, pipeline)
    session = ResolutionSession(model, pipeline=pipeline,
                                max_blocks=args.max_blocks,
                                model_block=args.model_block)

    # Warm every block with the first half of its pages (the "initial
    # crawl"), then stream the rest as single-page requests round-robin
    # — the shape of live traffic over an existing index.
    streams: list[list] = []
    try:
        for block in collection:
            pages = list(block.pages)
            warm_count = max(1, len(pages) // 2)
            session.resolve(pages[:warm_count])
            streams.append(pages[warm_count:])
    except KeyError as error:
        print(f"cannot serve: {error.args[0]}", file=sys.stderr)
        return 2

    print(f"warmed {len(streams)} blocks "
          f"({session.stats.pages} pages); streaming up to "
          f"{args.requests} single-page requests")
    rows = []
    served = 0
    position = 0
    while served < args.requests and any(streams):
        stream = streams[position % len(streams)]
        position += 1
        if not stream:
            continue
        page = stream.pop(0)
        started = time.perf_counter()
        assignment = session.resolve(page)[0]
        latency_ms = (time.perf_counter() - started) * 1000
        rows.append([
            surname(page.query_name), page.doc_id,
            "new entity" if assignment.created_new_cluster
            else f"entity #{assignment.cluster_index}",
            f"{assignment.link_probability:.3f}", f"{latency_ms:.1f}",
        ])
        served += 1
    print(format_table(
        ["name", "page", "decision", "P(link)", "ms"], rows,
        title=f"Served {served} requests"))
    print(session.stats.summary())
    return 0


def _serve_concurrently(args: argparse.Namespace, model, collection,
                        pipeline) -> int:
    """``serve --threads N``: drive a ServingEngine with closed-loop load."""
    from repro.serving import LoadRequest, ServingEngine, run_load

    engine = ServingEngine(model, pipeline=pipeline,
                           max_blocks=args.max_blocks,
                           model_block=args.model_block,
                           batch_window=max(0.0, args.batch_window) / 1000.0)
    streams: list[list] = []
    try:
        for block in collection:
            pages = list(block.pages)
            warm_count = max(1, len(pages) // 2)
            engine.resolve(pages[:warm_count])
            streams.append(pages[warm_count:])
    except KeyError as error:
        print(f"cannot serve: {error.args[0]}", file=sys.stderr)
        return 2

    requests = []
    position = 0
    while len(requests) < args.requests and any(streams):
        stream = streams[position % len(streams)]
        position += 1
        if stream:
            requests.append(LoadRequest(pages=[stream.pop(0)]))

    swap_plan = None
    if args.swap_model:
        swap_plan = {max(1, len(requests) // 2):
                     ResolverModel.load(args.swap_model)}
    print(f"warmed {len(streams)} blocks ({engine.stats.pages} pages); "
          f"offering {len(requests)} single-page requests from "
          f"{args.threads} closed-loop threads "
          f"(batch window {args.batch_window:.1f}ms"
          + (", hot swap at halfway)" if swap_plan else ")"))
    report = run_load(engine, requests, threads=args.threads,
                      swap_plan=swap_plan)
    print(format_table(
        ["requests", "failed", "QPS", "p50 ms", "p95 ms", "p99 ms"],
        [[str(report.completed), str(report.failed), f"{report.qps:.1f}",
          f"{report.p50_seconds * 1000:.2f}",
          f"{report.p95_seconds * 1000:.2f}",
          f"{report.p99_seconds * 1000:.2f}"]],
        title=f"Load report ({args.threads} threads)"))
    print(engine.stats.summary())
    if report.failed:
        for error in report.errors[:3]:
            print(f"failed request: {error}", file=sys.stderr)
        return 1
    return 0


def cmd_resolve(args: argparse.Namespace) -> int:
    context = _context(args, input_path=args.input_path)
    resolver = EntityResolver(_apply_overrides(
        table2_config(args.column) if args.column != "default"
        else ResolverConfig(), args))
    rows = []
    seeds = _seeds(args, context)
    for block in context.collection:
        reports = []
        chosen = None
        block_graphs = context.graphs_by_name[block.query_name]
        for seed in seeds:
            block_model = resolver.fit(block, training_seed=seed,
                                       graphs=block_graphs)
            resolution = block_model.evaluate_block(block,
                                                    graphs=block_graphs)
            reports.append(resolution.report)
            chosen = resolution.chosen_layer
        from repro.metrics.report import mean_report
        mean = mean_report(reports)
        rows.append([surname(block.query_name), mean.fp, mean.f1, mean.rand,
                     chosen or "-"])
    print(format_table(["name", "Fp", "F", "Rand", "layer (last run)"], rows,
                       title=f"Resolution ({args.column}, {args.runs} runs)"))
    _print_stats(context.stats)
    return 0


def cmd_figure1(args: argparse.Namespace) -> int:
    context = _context(args, which="www05")
    query_name = None
    if args.name:
        matches = [name for name in context.collection.query_names()
                   if name.endswith(args.name)]
        if not matches:
            print(f"no block matching {args.name!r}", file=sys.stderr)
            return 2
        query_name = matches[0]
    points = figure1_series(context, function_name=args.function,
                            query_name=query_name, method=args.method)
    print(format_region_series(
        points, title=f"Figure 1 — {args.function}, {args.method} regions"))
    return 0


def _figure_comparison(args: argparse.Namespace, which: str,
                       title: str) -> int:
    context = _context(args, which=which)
    series = per_function_series(context, _seeds(args, context))
    for metric in PAPER_METRICS:
        chart = {label: report.get(metric)
                 for label, report in series.items()}
        print(format_bar_chart(chart, title=f"{title} — {metric}"))
        print()
    return 0


def cmd_figure2(args: argparse.Namespace) -> int:
    return _figure_comparison(args, "www05", "Figure 2 (WWW'05-like)")


def cmd_figure3(args: argparse.Namespace) -> int:
    return _figure_comparison(args, "weps2", "Figure 3 (WePS-like)")


def cmd_table2(args: argparse.Namespace) -> int:
    contexts = {
        "WWW'05": _context(args, which="www05"),
        "WePS": _context(args, which="weps2"),
    }
    seeds = _seeds(args, contexts["WWW'05"])
    table = table2(contexts, seeds)
    rows = []
    for dataset in table.datasets():
        for metric in ("fp", "f1", "rand"):
            rows.append([dataset, metric] + [
                table.get(dataset, metric, column)
                for column in TABLE2_COLUMNS])
    print(format_table(["dataset", "metric"] + list(TABLE2_COLUMNS), rows,
                       title="Table II — comparison of results"))
    return 0


def cmd_table3(args: argparse.Namespace) -> int:
    context = _context(args, which="www05")
    table = table3(context, _seeds(args, context))
    rows = [[name] + [table.get(name, column) for column in table.columns]
            for name in table.names()]
    print(format_table(["name"] + list(table.columns), rows,
                       title="Table III — Fp per name"))
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    context = _context(args)
    rows = []
    for profile in profile_collection(context):
        rows.append([
            profile.label, profile.n_pages, profile.n_persons,
            profile.dominance, profile.singleton_fraction,
            profile.feature_availability["organizations"],
            profile.function_entropy["F8"],
        ])
    print(format_table(
        ["name", "pages", "persons", "dominance", "singletons",
         "org-avail", "F8-entropy"],
        rows, title="Dataset profile"))
    return 0


_COMMANDS = {
    "generate": cmd_generate,
    "fit": cmd_fit,
    "predict": cmd_predict,
    "serve": cmd_serve,
    "pipeline": cmd_pipeline,
    "resolve": cmd_resolve,
    "figure1": cmd_figure1,
    "figure2": cmd_figure2,
    "figure3": cmd_figure3,
    "table2": cmd_table2,
    "table3": cmd_table3,
    "analyze": cmd_analyze,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
