"""Request coalescing — one masked scoring pass per micro-batch.

The incremental request path scores each new page against every indexed
page with one ``pair_scores`` call per similarity function
(:meth:`~repro.core.incremental.IncrementalResolver._pair_probabilities`).
Served page by page that re-derives every indexed page's prepared inputs
— vector norms, parsed URLs, key sets — once *per request*.  When
concurrent requests for the same block arrive together, the engine
instead scores the whole micro-batch in **one masked block sweep**
through the PR 5 mask machinery
(:meth:`~repro.similarity.backends.ScoringBackend.block_scores` with a
candidate-pair mask): every page is prepared once for the batch, and
only the (new page, predecessor) pairs the sequential path would score
are computed.

**Bit-identity.**  The sequential path calls ``function(new, other)``
with the new page as the *left* argument; the block sweep scores pair
``(i, j)`` with the earlier block position on the left.  Most of the
battery is argument-order symmetric to the last bit, but not all of it
(F9's fold can differ in the final ulp), so the coalesced block lays
pages out in **reverse add order** — each new page occupies an earlier
position than every page it is scored against, existing pages come
last.  Every masked score is then produced by ``scorer(new, other)``
with exactly the sequential argument order, and the prepared-scorer /
kernel contracts (PR 4) make those bytes equal to ``pair_scores``.
``tests/serving/test_coalescing.py`` enforces equality at tolerance
zero on both backends.
"""

from __future__ import annotations

from repro.core.incremental import IncrementalResolver
from repro.extraction.features import PageFeatures
from repro.graph.entity_graph import PairKey, pair_key

__all__ = ["coalesced_pair_scores"]


def coalesced_pair_scores(
    incremental: IncrementalResolver,
    new_features: list[PageFeatures],
) -> dict[str, dict[PairKey, float]] | None:
    """Pair scores for adding ``new_features`` in order, in one sweep.

    Computes, per similarity function the combiner consults, the scores
    of every ``(new page, predecessor)`` pair that the sequential
    ``add_page`` chain would request: new page *k* against all indexed
    pages plus new pages ``0..k-1``.  The result feeds
    ``add_page(features, scores=...)`` and is bit-identical to the
    scores the backend's ``pair_scores`` would return at each step.

    Returns ``None`` when coalescing cannot apply: a doc id duplicated
    within the batch or against the index (the sequential path owns the
    error), or an empty batch.  Callers fall back to sequential adds.
    """
    if not new_features:
        return None
    existing = incremental.indexed_features()
    features = {page.doc_id: page for page in existing}
    new_ids = []
    for page in new_features:
        if page.doc_id in features:
            return None  # duplicate — let add_page raise its ValueError
        features[page.doc_id] = page
        new_ids.append(page.doc_id)

    existing_ids = [page.doc_id for page in existing]
    # Reverse add order puts every new page at an earlier block position
    # than all of its scoring partners (see module docstring).
    ids = list(reversed(new_ids)) + existing_ids
    mask = frozenset(
        pair_key(new_id, other_id)
        for index, new_id in enumerate(new_ids)
        for other_id in existing_ids + new_ids[:index]
    )
    state = incremental._state
    functions = [state.functions[name]
                 for name in incremental.scoring_function_names()]
    return incremental._backend.block_scores(ids, features, functions,
                                             mask=mask)
