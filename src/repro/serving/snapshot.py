"""Copy-on-write model snapshots — hot-swappable serving state.

A :class:`ModelSnapshot` binds one immutable fitted model to its own
serving-state container (a fresh :class:`~repro.pipeline.session.
ResolutionSession` holding the per-name LRU, token-routing index and
session counters).  The engine publishes exactly one *live* snapshot at
a time; :meth:`~repro.serving.engine.ServingEngine.swap` builds the next
snapshot entirely off-line and then replaces the pointer under the
admission lock — the only thing concurrent traffic can ever observe is
"old snapshot" or "new snapshot", never a half-initialized one.

Requests pin the snapshot they were admitted under, so in-flight work
finishes on the model it started with while new admissions land on the
replacement; the old snapshot's prepared blocks die with its last
in-flight request (plain garbage collection — nothing is copied,
invalidated, or locked).  Prepared state for the new model is rebuilt
lazily on first contact per name, exactly like any cold name.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.model import ResolverModel
from repro.extraction.pipeline import ExtractionPipeline
from repro.pipeline.session import ResolutionSession

__all__ = ["ModelSnapshot"]


@dataclass
class ModelSnapshot:
    """One immutable (model, serving state) generation.

    Attributes:
        version: monotonically increasing generation number (the first
            engine snapshot is 1; every ``swap`` increments it).
        model: the fitted resolver model this generation serves from.
        session: the generation's private serving state — per-name
            prepared blocks, LRU bookkeeping, token-routing index and
            session counters.  Never shared between snapshots.
        requests_admitted: requests admitted under this snapshot
            (maintained by the engine; observability only).
    """

    version: int
    model: ResolverModel
    session: ResolutionSession
    requests_admitted: int = 0

    @property
    def pipeline(self) -> ExtractionPipeline | None:
        """The extraction pipeline serving this generation's requests."""
        return self.session.extraction

    @classmethod
    def create(cls, version: int, model: ResolverModel,
               pipeline: ExtractionPipeline | None = None,
               max_blocks: int = 32,
               model_block: str | None = None) -> "ModelSnapshot":
        """Build a generation with a fresh, empty serving state.

        Raises:
            ValueError: for model combiners the request path cannot
                serve, or a non-positive ``max_blocks`` (the session's
                own validation — a swap to an unservable model fails
                here, *before* the live pointer moves).
        """
        session = ResolutionSession(model, pipeline=pipeline,
                                    max_blocks=max_blocks,
                                    model_block=model_block)
        return cls(version=version, model=model, session=session)

    def __repr__(self) -> str:
        return (f"ModelSnapshot(v{self.version}, "
                f"{len(self.session.prepared_names())} blocks prepared, "
                f"{self.requests_admitted} requests admitted)")
