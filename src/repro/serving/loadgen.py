"""Closed-loop load generator for the serving engine.

Drives a :class:`~repro.serving.engine.ServingEngine` with N worker
threads, each issuing its share of a fixed request list back-to-back
(closed loop: a worker's next request starts when its previous one
completes, the standard model for latency benchmarking without
coordinated omission from an open arrival process).  Every request
latency is kept exactly — the report's percentiles are computed over the
full merged sample, not a reservoir — alongside sustained QPS and error
counts.

A swap plan (``{completed_request_count: model}``) injects model
hot-swaps at deterministic points in the run: the worker whose
completion crosses the threshold performs the swap inline, so "swap
under live traffic" is exercised with the remaining workers mid-flight.

Used by ``benchmarks/test_bench_serving.py`` and the ``serve --threads``
CLI path; import from :mod:`repro.serving`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.core.model import ResolverModel
from repro.corpus.documents import WebPage
from repro.extraction.features import PageFeatures
from repro.runtime.stats import percentile

__all__ = ["LoadReport", "LoadRequest", "run_load"]


@dataclass
class LoadRequest:
    """One unit of offered load: the pages of a single resolve call."""

    pages: list[WebPage]
    features: dict[str, PageFeatures] | None = None


@dataclass
class LoadReport:
    """Outcome of one closed-loop run.

    Attributes:
        threads: worker threads that offered the load.
        requests: requests attempted.
        completed: requests that returned assignments.
        failed: requests that raised (their errors, in ``errors``).
        pages: pages across completed requests.
        wall_seconds: run duration, first issue to last completion.
        qps: completed requests per wall-clock second.
        latencies: every completed request's latency in seconds —
            the exact sample behind the percentile properties.
    """

    threads: int
    requests: int
    completed: int
    failed: int
    pages: int
    wall_seconds: float
    latencies: list[float] = field(default_factory=list, repr=False)
    errors: list[Exception] = field(default_factory=list, repr=False)

    @property
    def qps(self) -> float:
        """Sustained completed-requests-per-second over the run."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.completed / self.wall_seconds

    @property
    def mean_seconds(self) -> float:
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    @property
    def p50_seconds(self) -> float:
        return percentile(self.latencies, 50)

    @property
    def p95_seconds(self) -> float:
        return percentile(self.latencies, 95)

    @property
    def p99_seconds(self) -> float:
        return percentile(self.latencies, 99)

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable summary (drops the raw samples)."""
        return {
            "threads": self.threads,
            "requests": self.requests,
            "completed": self.completed,
            "failed": self.failed,
            "pages": self.pages,
            "wall_seconds": self.wall_seconds,
            "qps": self.qps,
            "mean_request_seconds": self.mean_seconds,
            "p50_request_seconds": self.p50_seconds,
            "p95_request_seconds": self.p95_seconds,
            "p99_request_seconds": self.p99_seconds,
        }


class _Progress:
    """Run-global completion counter shared by the workers."""

    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def advance(self) -> int:
        with self._lock:
            self._count += 1
            return self._count


def _worker(engine, share: list[LoadRequest], progress: _Progress,
            swap_plan: dict[int, ResolverModel],
            latencies: list[float], errors: list[Exception],
            pages: list[int]) -> None:
    for request in share:
        started = time.perf_counter()
        try:
            engine.resolve(request.pages, features=request.features)
        except Exception as error:  # the report decides what failure means
            errors.append(error)
        else:
            latencies.append(time.perf_counter() - started)
            pages[0] += len(request.pages)
        crossed = progress.advance()
        model = swap_plan.pop(crossed, None)
        if model is not None:
            engine.swap(model)


def run_load(engine, requests: list[LoadRequest], threads: int = 1,
             swap_plan: dict[int, ResolverModel] | None = None) -> LoadReport:
    """Offer ``requests`` to ``engine`` from a closed loop of workers.

    Requests are dealt round-robin (worker ``i`` serves
    ``requests[i::threads]``), so the same workload splits the same way
    run to run and thread counts compare like for like.

    Args:
        engine: the serving engine under load.
        requests: the offered load, issued back-to-back per worker.
        threads: closed-loop workers (>= 1).
        swap_plan: optional ``{completed_count: model}`` — when the
            run's N-th request completes, the crossing worker swaps the
            engine to that model, under whatever traffic remains.

    Returns:
        A :class:`LoadReport` with exact latency percentiles.
    """
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    plan = dict(swap_plan or {})
    progress = _Progress()
    shares = [requests[index::threads] for index in range(threads)]
    latencies: list[list[float]] = [[] for _ in range(threads)]
    errors: list[list[Exception]] = [[] for _ in range(threads)]
    pages: list[list[int]] = [[0] for _ in range(threads)]
    workers = [
        threading.Thread(
            target=_worker,
            args=(engine, shares[index], progress, plan,
                  latencies[index], errors[index], pages[index]),
            name=f"loadgen-{index}")
        for index in range(threads)
    ]
    started = time.perf_counter()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    wall = time.perf_counter() - started
    merged = [sample for share in latencies for sample in share]
    failed = [error for share in errors for error in share]
    return LoadReport(
        threads=threads,
        requests=len(requests),
        completed=len(merged),
        failed=len(failed),
        pages=sum(share[0] for share in pages),
        wall_seconds=wall,
        latencies=merged,
        errors=failed,
    )
