"""Concurrent serving on top of the online request path.

The pieces, bottom-up:

- :mod:`repro.serving.coalescing` — one masked scoring sweep per
  micro-batch, bit-identical to sequential per-page serving.
- :mod:`repro.serving.snapshot` — copy-on-write model generations for
  hot swaps.
- :mod:`repro.serving.engine` — the thread-safe engine: admission-order
  bookkeeping under one lock, per-name FIFO lanes with leader/follower
  batching, deterministic by serial-replay equivalence.
- :mod:`repro.serving.replay` — the determinism oracle (journal replay
  through a serial session, bitwise diff).
- :mod:`repro.serving.loadgen` — closed-loop multi-threaded load
  generator with exact latency percentiles.
"""

from repro.serving.coalescing import coalesced_pair_scores
from repro.serving.engine import EngineStats, ServingEngine
from repro.serving.loadgen import LoadReport, LoadRequest, run_load
from repro.serving.replay import replay_journal, verify_serial_equivalence
from repro.serving.snapshot import ModelSnapshot

__all__ = [
    "EngineStats",
    "LoadReport",
    "LoadRequest",
    "ModelSnapshot",
    "ServingEngine",
    "coalesced_pair_scores",
    "replay_journal",
    "run_load",
    "verify_serial_equivalence",
]
