"""Serial replay of an engine journal — the determinism oracle.

The engine's correctness claim is *serial equivalence*: any interleaving
of concurrent callers produces exactly the clusters that a plain
:class:`~repro.pipeline.session.ResolutionSession` produces when the same
work is replayed one unit at a time in admission order.  This module is
the oracle for that claim: :func:`replay_journal` re-executes a journal
(recorded with ``ServingEngine(record_journal=True)``) through fresh
serial sessions — one per model snapshot version, mirroring the engine's
per-snapshot state — and :func:`verify_serial_equivalence` compares the
two executions **bit for bit**: per-unit assignments (doc ids, entity
ids, link probabilities as exact floats), the final partition of every
prepared name, LRU order and eviction counts, and the session counters.

Both the concurrency test-suite (``tests/serving/``) and the serving
benchmark (``benchmarks/test_bench_serving.py``) call the verifier after
hammering an engine from a thread pool; a failure report names every
divergent sequence number, so scheduler-dependent bugs surface with the
unit that exposed them rather than as a vague mismatch.
"""

from __future__ import annotations

from typing import Any

from repro.pipeline.session import ResolutionSession

__all__ = ["replay_journal", "verify_serial_equivalence"]


def replay_journal(engine) -> dict[int, dict[str, Any]]:
    """Re-execute an engine's journal through fresh serial sessions.

    Units are replayed strictly in admission (``seq``) order, each as
    one ``resolve`` call against a serial session for the unit's
    snapshot version, configured exactly like the engine's snapshots
    (same model, pipeline, ``max_blocks``, ``model_block``).

    Args:
        engine: a :class:`~repro.serving.engine.ServingEngine`
            constructed with ``record_journal=True``.

    Returns:
        ``{version: {"session": ResolutionSession,
        "outcomes": {seq: list[Assignment] | Exception}}}`` — one entry
        per snapshot version that admitted traffic.  Units that failed
        on the engine are expected to fail identically in replay; the
        raised exception is captured as the outcome.

    Raises:
        ValueError: if the engine recorded no journal.
    """
    if engine.journal is None:
        raise ValueError(
            "engine has no journal; construct it with record_journal=True")
    replayed: dict[int, dict[str, Any]] = {}
    for entry in sorted(engine.journal, key=lambda entry: entry["seq"]):
        version = entry["version"]
        if version not in replayed:
            snapshot = engine.snapshots[version]
            replayed[version] = {
                "session": ResolutionSession(
                    snapshot.model, pipeline=snapshot.pipeline,
                    max_blocks=engine.max_blocks,
                    model_block=engine.model_block),
                "outcomes": {},
            }
        session = replayed[version]["session"]
        try:
            outcome = session.resolve(entry["pages"],
                                      features=entry["features"])
        except (KeyError, ValueError) as error:
            outcome = error
        replayed[version]["outcomes"][entry["seq"]] = outcome
    return replayed


def _compare_version(engine, version: int,
                     replay: dict[str, Any]) -> list[str]:
    """All divergences between one snapshot and its serial replay."""
    diffs: list[str] = []
    engine_session = engine.snapshots[version].session
    serial = replay["session"]

    for entry in engine.journal:
        if entry["version"] != version:
            continue
        seq = entry["seq"]
        outcome = replay["outcomes"][seq]
        if isinstance(outcome, Exception):
            if entry["assignments"] is not None:
                diffs.append(
                    f"seq {seq}: replay raised {outcome!r} but the engine "
                    f"assigned {len(entry['assignments'])} pages")
            continue
        if entry["assignments"] is None:
            diffs.append(
                f"seq {seq}: engine failed this unit but replay assigned "
                f"{len(outcome)} pages")
            continue
        if entry["assignments"] != outcome:
            diffs.append(
                f"seq {seq} ({entry['query_name']}): assignments diverge "
                f"(engine {entry['assignments']} vs serial {outcome})")

    engine_names = engine_session.prepared_names()
    serial_names = serial.prepared_names()
    if engine_names != serial_names:
        diffs.append(f"prepared names (LRU order) diverge: engine "
                     f"{engine_names} vs serial {serial_names}")
    for name in engine_names:
        if name not in serial_names:
            continue
        engine_clusters = engine_session.clusters(name)
        serial_clusters = serial.clusters(name)
        if engine_clusters != serial_clusters:
            diffs.append(f"final partition of {name!r} diverges: engine "
                         f"{engine_clusters} vs serial {serial_clusters}")

    for counter in ("incremental_assignments", "routed_pages",
                    "new_entities", "prepared_blocks", "evicted_blocks"):
        engine_value = getattr(engine_session.stats, counter)
        serial_value = getattr(serial.stats, counter)
        if engine_value != serial_value:
            diffs.append(f"stats.{counter} diverges: engine {engine_value} "
                         f"vs serial {serial_value}")
    return diffs


def verify_serial_equivalence(engine) -> dict[str, Any]:
    """Replay the journal and diff it against the engine, bitwise.

    Returns:
        ``{"identical": bool, "units": int, "versions": [..],
        "diffs": [str, ...]}`` — ``diffs`` is empty exactly when the
        concurrent execution is bit-identical to its serial replay.
        ``stats.requests``/latency are deliberately *not* compared: the
        engine counts caller requests while the replay counts units, and
        wall-clock timings are scheduler noise, not state.
    """
    replayed = replay_journal(engine)
    diffs: list[str] = []
    for version, replay in sorted(replayed.items()):
        diffs.extend(_compare_version(engine, version, replay))
    return {
        "identical": not diffs,
        "units": len(engine.journal),
        "versions": sorted(replayed),
        "diffs": diffs,
    }
