"""Thread-safe serving engine — the concurrent online request path.

:class:`~repro.pipeline.session.ResolutionSession` serves one request at
a time; a deployment facing "millions of users" needs the same request
path under concurrent traffic.  :class:`ServingEngine` provides it with
three mechanisms:

**Two-phase execution with fine-grained locking.**  Every request passes
an *admission* phase under one engine-wide lock: pages are routed (query
name, or the token index for nameless pages), the per-name LRU is
consulted — a hit refreshes recency, a miss *reserves* an empty slot so
eviction accounting happens in admission order — the token index absorbs
the new pages, and the request is split into per-name **units** appended
to that name's FIFO *lane*.  All of this is pure bookkeeping (no
scoring), so the critical section is microseconds.  The expensive work —
extraction, bootstrap predicts, incremental scoring — runs outside the
admission lock, serialized **per name** by the lane (so two requests for
different names score in parallel, while a same-name stampede of cold
requests triggers exactly one bootstrap).

**Request coalescing.**  The first thread to reach an idle lane becomes
its *leader*: it drains up to ``max_batch`` queued units (optionally
waiting ``batch_window`` seconds for stragglers while other requests are
in flight) and scores the whole micro-batch in one masked block sweep
(:func:`~repro.serving.coalescing.coalesced_pair_scores`) — every page
prepared once per batch instead of once per request.  Follower threads
just wait on their futures.  Batches stay bit-identical to sequential
per-page serving by construction.

**Deterministic replay.**  Because every state decision (routing, LRU,
eviction, bootstrap-vs-incremental) is made at admission in a single
serialized order, and per-name processing follows lane FIFO order,
replaying the admission journal through a plain serial
``ResolutionSession`` reproduces the engine's clusters *bit for bit* —
any interleaving of concurrent callers is equivalent to the serial
execution of its admission order.  Enable ``record_journal=True`` and
check with :func:`~repro.serving.replay.verify_serial_equivalence`;
``tests/serving/`` and ``benchmarks/test_bench_serving.py`` assert it
under thread-pool hammering.

Model hot-swap is a pointer move: :meth:`ServingEngine.swap` builds the
next :class:`~repro.serving.snapshot.ModelSnapshot` off-line and
publishes it under the admission lock — in-flight requests finish on the
snapshot they were admitted under, new requests land on the replacement,
and prepared state rebuilds lazily per name.

Typical deployment::

    engine = ServingEngine(model, pipeline=pipeline, max_batch=16)
    # any number of threads:
    assignments = engine.resolve(request.pages)
    # control plane, any time, without draining traffic:
    engine.swap(refit_model)
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future
from dataclasses import dataclass, field

from repro.core.incremental import Assignment
from repro.core.model import ResolverModel
from repro.corpus.documents import NameCollection, WebPage
from repro.extraction.features import PageFeatures
from repro.extraction.pipeline import ExtractionPipeline
from repro.metrics.clusterings import Clustering
from repro.pipeline.session import (
    ResolutionSession,
    assignments_from_partition,
)
from repro.runtime.stats import LatencyReservoir
from repro.serving.coalescing import coalesced_pair_scores
from repro.serving.snapshot import ModelSnapshot

__all__ = ["EngineStats", "ServingEngine"]


@dataclass
class EngineStats:
    """Lifetime counters of one serving engine.

    Attributes:
        requests: requests admitted (a ``resolve``/``submit`` call).
        pages: pages admitted across all requests.
        units: per-name work units those requests split into.
        failed_requests: requests whose future completed with an error.
        scoring_batches: per-name batches executed (any size).
        coalesced_batches: batches that merged more than one page into
            one masked scoring pass.
        coalesced_pages: pages served through such merged batches.
        max_batch_pages: largest batch executed.
        bootstraps: cold per-name states built (batch or empty adopt).
        lru_hits: admissions that found live prepared state.
        lru_misses: admissions that had to reserve a cold slot.
        swaps: model snapshots published by :meth:`ServingEngine.swap`.
        swap_stall_seconds: total time swaps held the admission lock —
            the only moment a swap can stall traffic.
        max_inflight: high-watermark of concurrently in-flight units.
        seconds_total: summed request latencies (admission → future).
        latency: bounded reservoir feeding the percentile properties.
    """

    requests: int = 0
    pages: int = 0
    units: int = 0
    failed_requests: int = 0
    scoring_batches: int = 0
    coalesced_batches: int = 0
    coalesced_pages: int = 0
    max_batch_pages: int = 0
    bootstraps: int = 0
    lru_hits: int = 0
    lru_misses: int = 0
    swaps: int = 0
    swap_stall_seconds: float = 0.0
    max_inflight: int = 0
    seconds_total: float = 0.0
    latency: LatencyReservoir = field(default_factory=LatencyReservoir)

    @property
    def mean_request_seconds(self) -> float:
        """Mean request latency (0.0 before the first completion)."""
        completed = self.requests - self.failed_requests
        if completed <= 0:
            return 0.0
        return self.seconds_total / completed

    @property
    def p50_request_seconds(self) -> float:
        """Median request latency over the reservoir sample."""
        return self.latency.percentile(50)

    @property
    def p95_request_seconds(self) -> float:
        """95th-percentile request latency over the reservoir sample."""
        return self.latency.percentile(95)

    @property
    def p99_request_seconds(self) -> float:
        """99th-percentile request latency over the reservoir sample."""
        return self.latency.percentile(99)

    @property
    def lru_hit_rate(self) -> float:
        """Fraction of admissions served from live prepared state."""
        total = self.lru_hits + self.lru_misses
        if total == 0:
            return 0.0
        return self.lru_hits / total

    @property
    def mean_coalesced_pages(self) -> float:
        """Mean pages per multi-page batch (0.0 when none coalesced)."""
        if self.coalesced_batches == 0:
            return 0.0
        return self.coalesced_pages / self.coalesced_batches

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable snapshot (benchmarks and the CLI)."""
        return {
            "requests": self.requests,
            "pages": self.pages,
            "units": self.units,
            "failed_requests": self.failed_requests,
            "scoring_batches": self.scoring_batches,
            "coalesced_batches": self.coalesced_batches,
            "coalesced_pages": self.coalesced_pages,
            "mean_coalesced_pages": self.mean_coalesced_pages,
            "max_batch_pages": self.max_batch_pages,
            "bootstraps": self.bootstraps,
            "lru_hit_rate": self.lru_hit_rate,
            "swaps": self.swaps,
            "swap_stall_seconds": self.swap_stall_seconds,
            "max_inflight": self.max_inflight,
            "mean_request_seconds": self.mean_request_seconds,
            "p50_request_seconds": self.p50_request_seconds,
            "p95_request_seconds": self.p95_request_seconds,
            "p99_request_seconds": self.p99_request_seconds,
        }

    def summary(self) -> str:
        """One line for CLI output."""
        return (f"[engine] {self.requests} requests / {self.pages} pages; "
                f"{self.scoring_batches} batches "
                f"({self.coalesced_batches} coalesced, "
                f"max {self.max_batch_pages} pages); "
                f"LRU hit rate {self.lru_hit_rate:.0%}; "
                f"{self.swaps} swaps "
                f"(stall {self.swap_stall_seconds * 1000:.2f}ms); "
                f"latency p50 {self.p50_request_seconds * 1000:.2f}ms, "
                f"p95 {self.p95_request_seconds * 1000:.2f}ms, "
                f"p99 {self.p99_request_seconds * 1000:.2f}ms")


class _Lane:
    """One name's FIFO unit queue plus its processing mutex.

    ``busy`` is the per-name lock: the thread that flips it becomes the
    lane's *leader* and processes queued units in admission order;
    everyone else waits on ``cond``.  ``refs`` counts admitted units not
    yet completed, so idle lanes can be dropped (names are unbounded in
    a long-lived process; lanes must not leak).
    """

    __slots__ = ("cond", "pending", "busy", "refs", "last_batch")

    def __init__(self):
        self.cond = threading.Condition()
        self.pending: deque[_Unit] = deque()
        self.busy = False
        self.refs = 0
        #: size of the last drained batch — the window wait's target.
        #: A closed-loop stampede that just produced an N-unit batch is
        #: about to produce another; one caller (last_batch <= 1) never
        #: waits.  Adapts both ways: organic queueing grows it, a
        #: window expiry with fewer arrivals shrinks it.
        self.last_batch = 0


@dataclass
class _Unit:
    """One request's pages for one routed name — the scheduling grain."""

    seq: int
    query_name: str
    pages: list[WebPage]
    features: dict[str, PageFeatures] | None
    snapshot: ModelSnapshot
    prepared: object  # _PreparedBlock (session-private type)
    bootstrap: str | None  # "batch" | "empty" | None (incremental)
    request: "_Request"
    lane: _Lane
    journal_entry: dict | None = None
    done: bool = False


class _Request:
    """Aggregates a submit call's units back into one ordered future."""

    __slots__ = ("future", "order", "by_doc", "remaining", "failed",
                 "lock", "started", "snapshot", "units")

    def __init__(self, order: list[str], n_units: int,
                 snapshot: ModelSnapshot):
        self.future: Future = Future()
        self.order = order
        self.by_doc: dict[str, Assignment] = {}
        self.remaining = n_units
        self.failed = False
        self.lock = threading.Lock()
        self.started = time.perf_counter()
        self.snapshot = snapshot
        self.units: list[_Unit] = []


class ServingEngine:
    """Serve concurrent resolve traffic from hot-swappable snapshots.

    Args:
        model: the initial fitted model (snapshot version 1).
        pipeline: extraction pipeline for raw pages (as for
            :class:`ResolutionSession`).
        max_blocks: per-snapshot LRU bound on prepared name blocks.
        model_block: fitted block serving names the model was never
            fitted on (as for :class:`ResolutionSession`).
        max_batch: most units one leader merges into a scoring batch.
        batch_window: seconds a leader waits for stragglers before
            flushing a non-full batch.  The wait targets the lane's
            *recent* batch size — a lane that just served N concurrent
            requests expects the same closed-loop callers to return, so
            it holds the batch open (up to the window) until N queue
            again; a lane serving one caller never waits.  0.0
            (default) disables the wait entirely; queued units still
            coalesce naturally while a leader is busy.
        queue_depth: bound on concurrently admitted requests — further
            ``resolve``/``submit`` calls block (backpressure) until a
            slot frees.
        record_journal: keep an admission-ordered journal of every unit
            (pages, snapshot version, kind, assignments) for serial
            replay verification.  Off by default: the journal grows with
            traffic, so it is a test/bench tool, not a production mode.

    Raises:
        ValueError: for invalid knobs, or models the request path
            cannot serve (via :class:`ResolutionSession` validation).
    """

    def __init__(self, model: ResolverModel,
                 pipeline: ExtractionPipeline | None = None,
                 max_blocks: int = 32,
                 model_block: str | None = None,
                 max_batch: int = 16,
                 batch_window: float = 0.0,
                 queue_depth: int = 1024,
                 record_journal: bool = False):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if batch_window < 0:
            raise ValueError(
                f"batch_window must be >= 0, got {batch_window}")
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        self.max_blocks = max_blocks
        self.model_block = model_block
        self.max_batch = max_batch
        self.batch_window = batch_window
        self._admission = threading.Lock()
        self._swap_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._queue_slots = threading.BoundedSemaphore(queue_depth)
        self._lanes: dict[str, _Lane] = {}
        # Batch-size memory surviving lane garbage collection: lanes die
        # the moment a round of closed-loop callers completes, which is
        # exactly when the next round is about to stampede the same
        # name.  Bounded LRU so dead names cannot accumulate.
        self._batch_memory: "OrderedDict[str, int]" = OrderedDict()
        self._inflight = 0
        self._seq = 0
        self._snapshot = ModelSnapshot.create(
            1, model, pipeline=pipeline, max_blocks=max_blocks,
            model_block=model_block)
        self.snapshots: "OrderedDict[int, ModelSnapshot]" = OrderedDict(
            {1: self._snapshot})
        self.stats = EngineStats()
        self.journal: list[dict] | None = [] if record_journal else None

    # -- public API ------------------------------------------------------

    @property
    def snapshot(self) -> ModelSnapshot:
        """The live snapshot new requests are admitted under."""
        return self._snapshot

    def resolve(
        self,
        pages: WebPage | NameCollection | list[WebPage],
        features: dict[str, PageFeatures] | None = None,
    ) -> list[Assignment]:
        """Assign every incoming page to an entity; one request.

        Same contract as :meth:`ResolutionSession.resolve`, safe to call
        from any number of threads.  The calling thread participates in
        lane processing (leader/follower), so throughput scales with
        callers and no background threads exist to manage.

        Raises:
            KeyError: unknown query name / unroutable nameless page —
                rejected atomically at admission, before any page of the
                request is assigned.
            ValueError: duplicate doc id, or extraction needed without a
                pipeline (surfaced through the request future).
        """
        request = self._admit(pages, features)
        if request.units:
            self._drive(request)
        return request.future.result()

    def submit(
        self,
        pages: WebPage | NameCollection | list[WebPage],
        features: dict[str, PageFeatures] | None = None,
    ) -> Future:
        """Admit a request and return its future without processing it.

        The work executes when any thread next drives the name's lane —
        a concurrent :meth:`resolve` caller, or an explicit
        :meth:`flush`.  Admission errors (unknown name, backpressure)
        raise synchronously, exactly like :meth:`resolve`.
        """
        return self._admit(pages, features).future

    def flush(self) -> None:
        """Process every queued unit (completes outstanding futures)."""
        for name, lane in list(self._lanes.items()):
            while True:
                with lane.cond:
                    if not lane.pending and not lane.busy:
                        break
                    if lane.busy:
                        lane.cond.wait()
                        continue
                    lane.busy = True
                try:
                    self._lead(lane)
                finally:
                    with lane.cond:
                        lane.busy = False
                        lane.cond.notify_all()
                self._maybe_drop_lane(name, lane)

    def swap(self, model: ResolverModel,
             pipeline: ExtractionPipeline | None = None) -> ModelSnapshot:
        """Publish a new model snapshot under live traffic.

        The replacement session is built entirely before the admission
        lock is taken, so concurrent requests stall for no longer than a
        pointer assignment (measured into ``stats.swap_stall_seconds``).
        In-flight requests finish on the snapshot they were admitted
        under; prepared state for the new model rebuilds lazily.

        Args:
            model: the refit model to serve from now on.
            pipeline: extraction pipeline for the new snapshot (default:
                the current snapshot's).

        Raises:
            ValueError: for models the request path cannot serve — the
                live snapshot stays untouched.
        """
        with self._swap_lock:
            current = self._snapshot
            replacement = ModelSnapshot.create(
                current.version + 1, model,
                pipeline=pipeline or current.pipeline,
                max_blocks=self.max_blocks, model_block=self.model_block)
            started = time.perf_counter()
            with self._admission:
                self._snapshot = replacement
                self.snapshots[replacement.version] = replacement
            stall = time.perf_counter() - started
        with self._stats_lock:
            self.stats.swaps += 1
            self.stats.swap_stall_seconds += stall
        return replacement

    def clusters(self, query_name: str) -> Clustering:
        """The live snapshot's current partition of a prepared name."""
        with self._admission:
            return self._snapshot.session.clusters(query_name)

    def prepared_names(self) -> list[str]:
        """The live snapshot's prepared names, LRU order."""
        with self._admission:
            return self._snapshot.session.prepared_names()

    def __repr__(self) -> str:
        return (f"ServingEngine(v{self._snapshot.version}, "
                f"{self.stats.requests} requests, "
                f"{self.stats.swaps} swaps)")

    # -- admission (phase 1: bookkeeping under one lock) -----------------

    def _admit(self, pages, features) -> _Request:
        page_list = ResolutionSession._normalize(pages)
        if not page_list:
            request = _Request([], 0, self._snapshot)
            request.future.set_result([])
            return request
        self._queue_slots.acquire()
        try:
            with self._admission:
                return self._admit_locked(page_list, features)
        except BaseException:
            self._queue_slots.release()
            raise

    def _admit_locked(self, page_list, features) -> _Request:
        snapshot = self._snapshot
        session = snapshot.session
        grouped: "OrderedDict[str, list[WebPage]]" = OrderedDict()
        for page in page_list:
            grouped.setdefault(session._route(page), []).append(page)
        # Atomic rejection, exactly like the session: an unknown name
        # fails the whole request before any admission effect.
        for query_name in grouped:
            if query_name not in session._prepared:
                session._fallback_for(query_name)

        request = _Request([page.doc_id for page in page_list],
                           len(grouped), snapshot)
        for query_name, group in grouped.items():
            prepared = session._lookup(query_name)
            bootstrap = None
            if prepared is None:
                bootstrap = "batch" if len(group) > 1 else "empty"
                prepared = session._reserve(query_name)
                self.stats.lru_misses += 1
            else:
                self.stats.lru_hits += 1
            session._index_pages(query_name, group)
            self._seq += 1
            lane = self._lanes.get(query_name)
            if lane is None:
                lane = _Lane()
                lane.last_batch = self._batch_memory.get(query_name, 0)
                self._lanes[query_name] = lane
            unit = _Unit(seq=self._seq, query_name=query_name,
                         pages=list(group), features=features,
                         snapshot=snapshot, prepared=prepared,
                         bootstrap=bootstrap, request=request, lane=lane)
            if self.journal is not None:
                unit.journal_entry = {
                    "seq": unit.seq,
                    "version": snapshot.version,
                    "query_name": query_name,
                    "kind": {"batch": "cold-batch", "empty": "cold-empty",
                             None: "incremental"}[bootstrap],
                    "pages": list(group),
                    "doc_ids": [page.doc_id for page in group],
                    "features": features,
                    "assignments": None,
                }
                self.journal.append(unit.journal_entry)
            request.units.append(unit)
            with lane.cond:
                lane.pending.append(unit)
                lane.refs += 1
                lane.cond.notify_all()
        snapshot.requests_admitted += 1
        with self._stats_lock:
            self.stats.requests += 1
            self.stats.pages += len(page_list)
            self.stats.units += len(request.units)
            self._inflight += len(request.units)
            self.stats.max_inflight = max(self.stats.max_inflight,
                                          self._inflight)
        return request

    # -- processing (phase 2: scoring outside the admission lock) --------

    def _drive(self, request: _Request) -> None:
        """Run/await lane processing until every unit of ours is done."""
        for unit in request.units:
            lane = unit.lane
            while True:
                with lane.cond:
                    while lane.busy and not unit.done:
                        lane.cond.wait()
                    if unit.done:
                        break
                    lane.busy = True
                try:
                    self._lead(lane)
                finally:
                    with lane.cond:
                        lane.busy = False
                        lane.cond.notify_all()
                self._maybe_drop_lane(unit.query_name, lane)

    def _lead(self, lane: _Lane) -> None:
        """As lane leader: optionally wait the window, drain, process."""
        if self.batch_window > 0:
            deadline = time.perf_counter() + self.batch_window
            with lane.cond:
                # Hold the batch open for the callers the lane just
                # served: after an N-unit batch completes, its N
                # closed-loop callers are re-admitting *right now*, but
                # the instantaneous queue can look empty before their
                # threads get scheduled.  Waiting for the recent batch
                # size (never past the window) turns those would-be
                # singleton flushes into full coalesced batches; a lane
                # with one caller has last_batch <= 1 and never waits.
                # The floor of 2 whenever anything else is in flight
                # keeps a fresh lane from locking into singleton service
                # under lock-step scheduling before any batch has formed
                # to seed last_batch.
                floor = 2 if self._inflight > 1 else 1
                target = min(self.max_batch, max(lane.last_batch, floor))
                while len(lane.pending) < target:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        break
                    lane.cond.wait(remaining)
        with lane.cond:
            batch: list[_Unit] = []
            while lane.pending and len(batch) < self.max_batch:
                batch.append(lane.pending.popleft())
            if batch:
                lane.last_batch = len(batch)
        # Consecutive units sharing a prepared object form one scoring
        # group; the object changes only across evict→rebuild or swap
        # boundaries, so runs are contiguous in admission order.
        index = 0
        while index < len(batch):
            group = [batch[index]]
            index += 1
            while (index < len(batch)
                   and batch[index].prepared is group[0].prepared):
                group.append(batch[index])
                index += 1
            self._process_group(group)

    def _process_group(self, units: list[_Unit]) -> None:
        prepared = units[0].prepared
        session = units[0].snapshot.session
        try:
            rest = units
            if prepared.incremental is None:
                first = units[0]
                mode = first.bootstrap or (
                    "batch" if len(first.pages) > 1 else "empty")
                if mode == "batch":
                    block = NameCollection(query_name=prepared.query_name,
                                           pages=list(first.pages))
                    block_features = session._block_features(block,
                                                             first.features)
                    prepared.incremental = session._build_incremental(
                        block, block_features)
                    prepared.pages.extend(first.pages)
                    assignments, new_entities = assignments_from_partition(
                        prepared.incremental.clusters(), first.pages)
                    with self._stats_lock:
                        session.stats.new_entities += new_entities
                        self.stats.bootstraps += 1
                        self.stats.scoring_batches += 1
                    self._complete_unit(first, assignments)
                    rest = units[1:]
                else:
                    prepared.incremental = session._adopt_empty(
                        prepared.query_name)
                    with self._stats_lock:
                        self.stats.bootstraps += 1
            if rest:
                self._assign_incremental(prepared, session, rest)
        except BaseException as error:
            for unit in units:
                self._fail_unit(unit, error)

    def _assign_incremental(self, prepared, session,
                            units: list[_Unit]) -> None:
        incremental = prepared.incremental
        work: list[tuple[_Unit, WebPage]] = [
            (unit, page) for unit in units for page in unit.pages]
        provided = [(unit.features or {}).get(page.doc_id)
                    for unit, page in work]
        # Coalesce only when the whole batch arrives with features; a
        # page needing extraction must be extracted *after* its
        # predecessors joined the block (TF-IDF context), which forces
        # the sequential path.
        scores = None
        if work and all(page is not None for page in provided):
            scores = coalesced_pair_scores(incremental,
                                           list(provided))
        with self._stats_lock:
            self.stats.scoring_batches += 1
            self.stats.max_batch_pages = max(self.stats.max_batch_pages,
                                             len(work))
            if scores is not None and len(work) > 1:
                self.stats.coalesced_batches += 1
                self.stats.coalesced_pages += len(work)

        by_unit: dict[int, list[Assignment]] = {
            id(unit): [] for unit in units}
        for (unit, page), page_features in zip(work, provided):
            if page_features is None:
                page_features = session._extract_page(prepared, page)
            assignment = incremental.add_page(page_features, scores=scores)
            prepared.pages.append(page)
            by_unit[id(unit)].append(assignment)
            with self._stats_lock:
                session.stats.incremental_assignments += 1
                if assignment.created_new_cluster:
                    session.stats.new_entities += 1
        for unit in units:
            self._complete_unit(unit, by_unit[id(unit)])

    # -- completion ------------------------------------------------------

    def _complete_unit(self, unit: _Unit,
                       assignments: list[Assignment]) -> None:
        if unit.journal_entry is not None:
            unit.journal_entry["assignments"] = list(assignments)
        request = unit.request
        finished = False
        with request.lock:
            if unit.done:
                return
            unit.done = True
            for assignment in assignments:
                request.by_doc[assignment.doc_id] = assignment
            request.remaining -= 1
            finished = request.remaining == 0 and not request.failed
        self._finish_unit(unit)
        if finished:
            elapsed = time.perf_counter() - request.started
            with self._stats_lock:
                self.stats.seconds_total += elapsed
                self.stats.latency.record(elapsed)
                request.snapshot.session.stats.record_request(
                    elapsed, pages=len(request.order))
            self._queue_slots.release()
            request.future.set_result(
                [request.by_doc[doc_id] for doc_id in request.order])

    def _fail_unit(self, unit: _Unit, error: BaseException) -> None:
        request = unit.request
        first_failure = False
        last = False
        with request.lock:
            if unit.done:
                return
            unit.done = True
            request.remaining -= 1
            first_failure = not request.failed
            request.failed = True
            last = request.remaining == 0
        self._finish_unit(unit)
        if first_failure:
            with self._stats_lock:
                self.stats.failed_requests += 1
            request.future.set_exception(error)
        if last:
            self._queue_slots.release()

    def _finish_unit(self, unit: _Unit) -> None:
        with self._stats_lock:
            self._inflight -= 1
        lane = unit.lane
        with lane.cond:
            lane.refs -= 1
            lane.cond.notify_all()

    def _maybe_drop_lane(self, name: str, lane: _Lane) -> None:
        """Garbage-collect an idle lane (names are unbounded)."""
        with self._admission:
            with lane.cond:
                if (not lane.busy and not lane.pending and lane.refs == 0
                        and self._lanes.get(name) is lane):
                    del self._lanes[name]
                    if lane.last_batch > 1:
                        self._batch_memory[name] = lane.last_batch
                        self._batch_memory.move_to_end(name)
                        while len(self._batch_memory) > 4 * self.max_blocks:
                            self._batch_memory.popitem(last=False)
                    else:
                        self._batch_memory.pop(name, None)
