"""Token blocking: pages sharing any indexed token become candidates.

A classic schema-agnostic blocker for the general web setting the paper's
footnote points at.  To keep blocks selective, only capitalized tokens
(entity-ish words) above a minimum length are indexed by default, and very
frequent tokens are dropped as stop-blocks.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.blocking.base import Blocker, BlockingResult
from repro.core.registry import register_blocker
from repro.corpus.documents import WebPage
from repro.extraction.tokenizer import is_capitalized, tokenize
from repro.graph.entity_graph import pair_key


@register_blocker("token")
class TokenBlocker(Blocker):
    """Inverted-index blocking on (entity-like) page tokens.

    Args:
        min_token_length: tokens shorter than this are not indexed.
        max_block_fraction: tokens appearing in more than this fraction of
            pages are treated as stop-blocks and skipped.
        entity_tokens_only: index only capitalized tokens (default); set
            False to index every token.
    """

    name = "token"

    def __init__(self, min_token_length: int = 3,
                 max_block_fraction: float = 0.25,
                 entity_tokens_only: bool = True):
        self.min_token_length = min_token_length
        self.max_block_fraction = max_block_fraction
        self.entity_tokens_only = entity_tokens_only

    def block(self, pages: Iterable[WebPage]) -> BlockingResult:
        page_list = list(pages)
        index: dict[str, set[str]] = {}
        for page in page_list:
            for token in set(self._keys(page)):
                index.setdefault(token, set()).add(page.doc_id)

        result = BlockingResult(pages=page_list)
        max_block = max(2, int(self.max_block_fraction * len(page_list)))
        for members in index.values():
            if len(members) < 2 or len(members) > max_block:
                continue
            ordered = sorted(members)
            for i, left in enumerate(ordered):
                for right in ordered[i + 1:]:
                    result.candidate_pairs.add(pair_key(left, right))
        return result

    def _keys(self, page: WebPage) -> list[str]:
        tokens = tokenize(f"{page.title}. {page.text}")
        keys = []
        for token in tokens:
            if len(token) < self.min_token_length:
                continue
            if self.entity_tokens_only and not is_capitalized(token):
                continue
            keys.append(token.lower())
        return keys
