"""Blocking schemes.

The paper applies "a basic blocking technique": similarity is computed only
between documents retrieved for the same person name, which is natural for
datasets already organized around names (§IV-C footnote).  The footnote
notes that general settings need more careful blocking; this package
provides the paper's scheme plus two classic generic blockers (token
blocking and sorted neighborhood) for that general setting.
"""

from repro.blocking.base import (
    Blocker,
    BlockingResult,
    CandidateMask,
    blocks_from_candidates,
)
from repro.blocking.name_blocking import QueryNameBlocker
from repro.blocking.token_blocking import TokenBlocker
from repro.blocking.sorted_neighborhood import SortedNeighborhoodBlocker

__all__ = [
    "Blocker",
    "BlockingResult",
    "CandidateMask",
    "QueryNameBlocker",
    "TokenBlocker",
    "SortedNeighborhoodBlocker",
    "blocks_from_candidates",
]
