"""Sorted-neighborhood blocking (Hernández & Stolfo's merge/purge scheme).

Pages are sorted by a blocking key and a fixed-size window slides over the
sorted order; pages co-occurring in a window become candidates.  Multiple
passes with different keys can be unioned, the standard remedy for key
errors.  The default key is the page's most informative capitalized token
sequence (title), with the URL domain as a second pass.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.blocking.base import Blocker, BlockingResult
from repro.core.registry import register_blocker
from repro.corpus.documents import WebPage
from repro.graph.entity_graph import pair_key

KeyFunction = Callable[[WebPage], str]


def title_key(page: WebPage) -> str:
    """Lowercased title — groups pages about similarly-described persons."""
    return page.title.lower()


def domain_key(page: WebPage) -> str:
    """Reversed domain labels — groups pages hosted together."""
    return ".".join(reversed(page.domain.lower().split(".")))


@register_blocker("sorted_neighborhood")
class SortedNeighborhoodBlocker(Blocker):
    """Multi-pass sorted-neighborhood blocking.

    Args:
        window: window size ``w``; each page pairs with the ``w − 1``
            pages before it in sorted order.
        keys: one key function per pass (default: title, then domain).

    Raises:
        ValueError: for a window smaller than 2.
    """

    name = "sorted_neighborhood"

    def __init__(self, window: int = 10,
                 keys: Iterable[KeyFunction] | None = None):
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        self.window = window
        self.keys: list[KeyFunction] = list(keys) if keys is not None else [
            title_key, domain_key]

    def block(self, pages: Iterable[WebPage]) -> BlockingResult:
        page_list = list(pages)
        result = BlockingResult(pages=page_list)
        for key_function in self.keys:
            ordered = sorted(page_list, key=key_function)
            for i, page in enumerate(ordered):
                start = max(0, i - self.window + 1)
                for other in ordered[start:i]:
                    result.candidate_pairs.add(
                        pair_key(page.doc_id, other.doc_id))
        return result
