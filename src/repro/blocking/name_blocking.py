"""The paper's blocking scheme: group pages by query name.

Two pages are candidates iff they were retrieved for the same ambiguous
person name.  For name-organized collections this blocker is lossless
(pair completeness 1.0 by construction): pages about one real person are
always retrieved under that person's name.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.blocking.base import Blocker, BlockingResult, pairs_within
from repro.core.registry import register_blocker
from repro.corpus.documents import WebPage


@register_blocker("query_name")
class QueryNameBlocker(Blocker):
    """Candidate pairs = all pairs sharing a query name.

    As ``ResolverConfig(blocker="query_name")`` — the default — the
    pipeline short-circuits this blocker: the corpus's per-name blocks
    are used directly with no candidate mask (the dense fast path),
    which is bit-identical to the pre-registry behavior.
    """

    name = "query_name"

    def block(self, pages: Iterable[WebPage]) -> BlockingResult:
        page_list = list(pages)
        by_name: dict[str, list[str]] = {}
        for page in page_list:
            by_name.setdefault(page.query_name, []).append(page.doc_id)
        result = BlockingResult(pages=page_list)
        for ids in by_name.values():
            result.candidate_pairs.update(pairs_within(ids))
        return result
