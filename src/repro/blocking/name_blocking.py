"""The paper's blocking scheme: group pages by query name.

Two pages are candidates iff they were retrieved for the same ambiguous
person name.  For name-organized collections this blocker is lossless
(pair completeness 1.0 by construction): pages about one real person are
always retrieved under that person's name.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.blocking.base import Blocker, BlockingResult, pairs_within
from repro.corpus.documents import WebPage


class QueryNameBlocker(Blocker):
    """Candidate pairs = all pairs sharing a query name."""

    def block(self, pages: Iterable[WebPage]) -> BlockingResult:
        page_list = list(pages)
        by_name: dict[str, list[str]] = {}
        for page in page_list:
            by_name.setdefault(page.query_name, []).append(page.doc_id)
        result = BlockingResult(pages=page_list)
        for ids in by_name.values():
            result.candidate_pairs.update(pairs_within(ids))
        return result
