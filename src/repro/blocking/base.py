"""Blocking abstractions.

A blocker maps a page collection to the set of candidate pairs that the
(quadratic) similarity layer is allowed to compare.  ``BlockingResult``
also reports the standard blocking quality numbers — pair completeness
(recall of true pairs) and reduction ratio — given ground truth.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.corpus.documents import WebPage
from repro.graph.entity_graph import PairKey, pair_key


@dataclass
class BlockingResult:
    """Candidate pairs produced by a blocker over a page universe."""

    pages: list[WebPage]
    candidate_pairs: set[PairKey] = field(default_factory=set)

    def n_candidates(self) -> int:
        return len(self.candidate_pairs)

    def total_pairs(self) -> int:
        """Unordered pair count of the full (blocking-free) universe."""
        n_pages = len(self.pages)
        return n_pages * (n_pages - 1) // 2

    def reduction_ratio(self) -> float:
        """1 − candidates / all-pairs; higher means cheaper matching."""
        total = self.total_pairs()
        if total == 0:
            return 0.0
        return 1.0 - self.n_candidates() / total

    def pair_completeness(self) -> float:
        """Fraction of ground-truth co-referent pairs kept by the blocker.

        Raises:
            ValueError: if any page lacks a ground-truth label.
        """
        true_pairs = self._true_pairs()
        if not true_pairs:
            return 1.0
        kept = sum(1 for pair in true_pairs if pair in self.candidate_pairs)
        return kept / len(true_pairs)

    def _true_pairs(self) -> set[PairKey]:
        labels: dict[str, str] = {}
        for page in self.pages:
            if page.person_id is None:
                raise ValueError(f"page {page.doc_id!r} is unlabeled")
            labels[page.doc_id] = page.person_id
        ids = sorted(labels)
        pairs: set[PairKey] = set()
        for i, left in enumerate(ids):
            for right in ids[i + 1:]:
                if labels[left] == labels[right]:
                    pairs.add(pair_key(left, right))
        return pairs


class Blocker(ABC):
    """Interface for candidate-pair generation."""

    @abstractmethod
    def block(self, pages: Iterable[WebPage]) -> BlockingResult:
        """Produce the candidate pairs for ``pages``."""


def pairs_within(ids: list[str]) -> set[PairKey]:
    """All unordered pairs among ``ids`` (helper for block-based schemes)."""
    ordered = sorted(ids)
    pairs: set[PairKey] = set()
    for i, left in enumerate(ordered):
        for right in ordered[i + 1:]:
            pairs.add(pair_key(left, right))
    return pairs
