"""Blocking abstractions.

A blocker maps a page collection to the set of candidate pairs that the
(quadratic) similarity layer is allowed to compare.  ``BlockingResult``
also reports the standard blocking quality numbers — pair completeness
(recall of true pairs) and reduction ratio — given ground truth.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.corpus.documents import NameCollection, WebPage
from repro.graph.components import UnionFind
from repro.graph.entity_graph import PairKey, pair_key

#: Candidate-pair mask type threaded through the similarity layer:
#: ``None`` means dense (every in-block pair is a candidate).
CandidateMask = frozenset[PairKey]

#: Query-name prefix of synthetic blocks assembled from candidate
#: components (:func:`blocks_from_candidates`); picked so generic blocks
#: can never collide with a real person name.
SYNTHETIC_BLOCK_PREFIX = "~block:"


@dataclass
class BlockingResult:
    """Candidate pairs produced by a blocker over a page universe."""

    pages: list[WebPage]
    candidate_pairs: set[PairKey] = field(default_factory=set)

    def n_candidates(self) -> int:
        return len(self.candidate_pairs)

    def total_pairs(self) -> int:
        """Unordered pair count of the full (blocking-free) universe."""
        n_pages = len(self.pages)
        return n_pages * (n_pages - 1) // 2

    def reduction_ratio(self) -> float:
        """1 − candidates / all-pairs; higher means cheaper matching."""
        total = self.total_pairs()
        if total == 0:
            return 0.0
        return 1.0 - self.n_candidates() / total

    def pair_completeness(self) -> float:
        """Fraction of ground-truth co-referent pairs kept by the blocker.

        Raises:
            ValueError: if any page lacks a ground-truth label.
        """
        true_pairs = self._true_pairs()
        if not true_pairs:
            return 1.0
        kept = sum(1 for pair in true_pairs if pair in self.candidate_pairs)
        return kept / len(true_pairs)

    def _true_pairs(self) -> set[PairKey]:
        # Group ids by person and enumerate pairs within each group:
        # O(n + Σ gᵢ²) instead of the all-ids double loop's O(n²) — true
        # pairs only ever form inside a person's group.
        labels: dict[str, str] = {}
        for page in self.pages:
            if page.person_id is None:
                raise ValueError(f"page {page.doc_id!r} is unlabeled")
            labels[page.doc_id] = page.person_id
        groups: dict[str, list[str]] = {}
        for doc_id, person_id in labels.items():
            groups.setdefault(person_id, []).append(doc_id)
        pairs: set[PairKey] = set()
        for ids in groups.values():
            pairs.update(pairs_within(ids))
        return pairs


class Blocker(ABC):
    """Interface for candidate-pair generation.

    Implementations register in :data:`repro.core.registry.BLOCKERS`
    (via :func:`~repro.core.registry.register_blocker`) to become valid
    ``ResolverConfig(blocker=...)`` values; registered blockers must be
    no-arg constructible.
    """

    #: registry/config name.
    name: str = "?"

    @abstractmethod
    def block(self, pages: Iterable[WebPage]) -> BlockingResult:
        """Produce the candidate pairs for ``pages``."""


def pairs_within(ids: list[str]) -> set[PairKey]:
    """All unordered pairs among ``ids`` (helper for block-based schemes)."""
    ordered = sorted(ids)
    pairs: set[PairKey] = set()
    for i, left in enumerate(ordered):
        for right in ordered[i + 1:]:
            pairs.add(pair_key(left, right))
    return pairs


def blocks_from_candidates(
    pages: Sequence[WebPage],
    candidate_pairs: Iterable[PairKey],
) -> tuple[list[NameCollection], dict[str, CandidateMask]]:
    """Partition a page universe into candidate-connected comparison units.

    Each connected component of the candidate-pair graph becomes one
    synthetic :class:`~repro.corpus.documents.NameCollection` (pages in
    universe order, named ``~block:<first doc id>`` so generic blocks
    never collide with real query names), paired with the component's
    candidate mask.  Pages with no candidates become singleton blocks
    with an empty mask.  Deterministic: block order follows the first
    appearance of each component in ``pages``.

    This is how the pipeline's ``block`` stage turns an arbitrary
    registered blocker's pair set into the per-block units every later
    stage schedules; the masks then restrict similarity scoring to
    candidate pairs (see :mod:`repro.similarity.backends`).
    """
    page_list = list(pages)
    candidate_pairs = list(candidate_pairs)
    forest = UnionFind(page.doc_id for page in page_list)
    for left, right in candidate_pairs:
        forest.union(left, right)

    component_pages: dict[object, list[WebPage]] = {}
    order: list[object] = []
    for page in page_list:
        root = forest.find(page.doc_id)
        members = component_pages.get(root)
        if members is None:
            component_pages[root] = members = []
            order.append(root)
        members.append(page)
    component_masks: dict[object, set[PairKey]] = {}
    for pair in candidate_pairs:
        component_masks.setdefault(forest.find(pair[0]), set()).add(pair)

    blocks: list[NameCollection] = []
    masks: dict[str, CandidateMask] = {}
    for root in order:
        members = component_pages[root]
        query_name = f"{SYNTHETIC_BLOCK_PREFIX}{members[0].doc_id}"
        blocks.append(NameCollection(query_name=query_name, pages=members))
        masks[query_name] = frozenset(component_masks.get(root, ()))
    return blocks, masks
