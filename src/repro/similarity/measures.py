"""Vector and set similarity measures of the paper's Table I.

All measures return values in [0, 1].  Pairs where either side carries no
evidence (empty vector / empty set) score 0.0: the paper treats "missing or
incomplete information" as one cause of low similarity, and the
region-based accuracy estimation then learns how trustworthy such low
values are.
"""

from __future__ import annotations

from collections.abc import Collection, Set

from repro.similarity.vectors import SparseVector, dot, norm, norm_squared


def cosine(left: SparseVector, right: SparseVector) -> float:
    """Cosine similarity; 0.0 when either vector is empty.

    For non-negative vectors (our TF-IDF and concept weights) the value is
    in [0, 1]; negative components are clamped at 0.
    """
    if not left or not right:
        return 0.0
    denominator = norm(left) * norm(right)
    if denominator == 0.0:
        return 0.0
    value = dot(left, right) / denominator
    return min(1.0, max(0.0, value))


def pearson_similarity(left: SparseVector, right: SparseVector) -> float:
    """Pearson correlation over the union support, rescaled to [0, 1].

    The correlation ``r`` in [-1, 1] is mapped to ``(r + 1) / 2``.  Pairs
    with no evidence or zero variance on either side score 0.0.
    """
    if not left or not right:
        return 0.0
    keys = set(left) | set(right)
    dimension = len(keys)
    if dimension < 2:
        return 0.0
    mean_left = sum(left.values()) / dimension
    mean_right = sum(right.values()) / dimension
    covariance = 0.0
    variance_left = 0.0
    variance_right = 0.0
    for key in keys:
        deviation_left = left.get(key, 0.0) - mean_left
        deviation_right = right.get(key, 0.0) - mean_right
        covariance += deviation_left * deviation_right
        variance_left += deviation_left * deviation_left
        variance_right += deviation_right * deviation_right
    if variance_left == 0.0 or variance_right == 0.0:
        return 0.0
    correlation = covariance / (variance_left ** 0.5 * variance_right ** 0.5)
    correlation = min(1.0, max(-1.0, correlation))
    return (correlation + 1.0) / 2.0


def extended_jaccard(left: SparseVector, right: SparseVector) -> float:
    """Extended (Tanimoto) Jaccard: ``x·y / (|x|² + |y|² − x·y)``.

    Coincides with set Jaccard for binary vectors; 0.0 on empty input.
    """
    if not left or not right:
        return 0.0
    product = dot(left, right)
    denominator = norm_squared(left) + norm_squared(right) - product
    if denominator <= 0.0:
        return 0.0
    return min(1.0, max(0.0, product / denominator))


def overlap_coefficient(left: Set | Collection, right: Set | Collection) -> float:
    """Normalized overlap count: ``|A ∩ B| / min(|A|, |B|)``.

    The paper's F4–F6 use "number of overlapping" items as the measure;
    the overlap coefficient is that count normalized into [0, 1] by the
    smaller set, so a page mentioning few entities is not penalized for
    brevity.  Scores 0.0 when either side is empty.
    """
    left_set = set(left)
    right_set = set(right)
    if not left_set or not right_set:
        return 0.0
    intersection = len(left_set & right_set)
    return intersection / min(len(left_set), len(right_set))


def jaccard(left: Set | Collection, right: Set | Collection) -> float:
    """Plain set Jaccard ``|A ∩ B| / |A ∪ B|`` (0.0 on empty input)."""
    left_set = set(left)
    right_set = set(right)
    if not left_set or not right_set:
        return 0.0
    return len(left_set & right_set) / len(left_set | right_set)


def dice(left: Set | Collection, right: Set | Collection) -> float:
    """Dice coefficient ``2|A ∩ B| / (|A| + |B|)`` (0.0 on empty input)."""
    left_set = set(left)
    right_set = set(right)
    if not left_set or not right_set:
        return 0.0
    return 2.0 * len(left_set & right_set) / (len(left_set) + len(right_set))
