"""Vector and set similarity measures of the paper's Table I.

All measures return values in [0, 1].  Pairs where either side carries no
evidence (empty vector / empty set) score 0.0: the paper treats "missing or
incomplete information" as one cause of low similarity, and the
region-based accuracy estimation then learns how trustworthy such low
values are.
"""

from __future__ import annotations

import math
from collections.abc import Collection, Set

from repro.similarity.vectors import SparseVector, dot, norm, norm_squared


def cosine(left: SparseVector, right: SparseVector) -> float:
    """Cosine similarity; 0.0 when either vector is empty.

    For non-negative vectors (our TF-IDF and concept weights) the value is
    in [0, 1]; negative components are clamped at 0.
    """
    if not left or not right:
        return 0.0
    denominator = norm(left) * norm(right)
    if denominator == 0.0:
        return 0.0
    value = dot(left, right) / denominator
    return min(1.0, max(0.0, value))


def pearson_similarity(left: SparseVector, right: SparseVector) -> float:
    """Pearson correlation over the union support, rescaled to [0, 1].

    The correlation ``r`` in [-1, 1] is mapped to ``(r + 1) / 2``.  Pairs
    with no evidence or non-positive computed variance on either side
    score 0.0.

    Computed with the expansion over the union support

    .. math::

        \\mathrm{cov} = \\Sigma lr - \\bar r S_l - \\bar l S_r
                        + d\\,\\bar l\\bar r

    (and the matching variance expansions), whose only elementwise fold
    is the sparse dot product — a canonical operation sequence the
    vectorized scoring backend replays exactly, keeping both backends
    bit-identical.
    """
    if not left or not right:
        return 0.0
    dimension = len(set(left) | set(right))
    if dimension < 2:
        return 0.0
    product = dot(left, right)
    sum_left = sum(left.values())
    sum_right = sum(right.values())
    squared_left = norm_squared(left)
    squared_right = norm_squared(right)
    return pearson_from_moments(product, sum_left, sum_right, squared_left,
                                squared_right, dimension)


def pearson_from_moments(product: float, sum_left: float, sum_right: float,
                         squared_left: float, squared_right: float,
                         dimension: int) -> float:
    """Rescaled Pearson correlation from per-pair moments.

    The reference definition of the arithmetic shared by the plain
    scorer, the prepared block scorer
    (:func:`repro.similarity.functions._prepare_f9`), and — operation
    for operation, applied elementwise — the vectorized backend kernels
    (``_pearson_matrix`` / ``_ovm_pearson`` in
    :mod:`repro.similarity.batch`).  Bit-identity across all of them
    rests on evaluating exactly this expression sequence: **any change
    here must be mirrored in those two kernels in the same commit** (the
    cross-backend parity suite and the golden fixtures fail loudly on
    any divergence, so an unsynchronized edit cannot land green).
    ``product`` is the pair's sparse dot product; the sums and squared
    norms are per-vector moments; ``dimension`` is the union support
    size.

    Numerical note: this is the one-pass "computational" expansion of
    the two-pass deviation form.  For this pipeline's inputs —
    L1/L2-normalized non-negative weights — the relative cancellation
    error is negligible, but for adversarial inputs (near-constant
    vectors of large magnitude) the computed variance can cancel to
    ``<= 0`` where the deviation form would return a tiny accurate
    value; such pairs score 0.0 via the guard below.  Center such data
    before scoring if that matters to you.
    """
    mean_left = sum_left / dimension
    mean_right = sum_right / dimension
    covariance = ((product - mean_right * sum_left)
                  - mean_left * sum_right) \
        + dimension * (mean_left * mean_right)
    variance_left = ((squared_left - (2.0 * mean_left) * sum_left)
                     + dimension * (mean_left * mean_left))
    variance_right = ((squared_right - (2.0 * mean_right) * sum_right)
                      + dimension * (mean_right * mean_right))
    if variance_left <= 0.0 or variance_right <= 0.0:
        return 0.0
    correlation = covariance / (math.sqrt(variance_left)
                                * math.sqrt(variance_right))
    correlation = min(1.0, max(-1.0, correlation))
    return (correlation + 1.0) / 2.0


def extended_jaccard(left: SparseVector, right: SparseVector) -> float:
    """Extended (Tanimoto) Jaccard: ``x·y / (|x|² + |y|² − x·y)``.

    Coincides with set Jaccard for binary vectors; 0.0 on empty input.
    """
    if not left or not right:
        return 0.0
    product = dot(left, right)
    denominator = norm_squared(left) + norm_squared(right) - product
    if denominator <= 0.0:
        return 0.0
    return min(1.0, max(0.0, product / denominator))


def overlap_coefficient(left: Set | Collection, right: Set | Collection) -> float:
    """Normalized overlap count: ``|A ∩ B| / min(|A|, |B|)``.

    The paper's F4–F6 use "number of overlapping" items as the measure;
    the overlap coefficient is that count normalized into [0, 1] by the
    smaller set, so a page mentioning few entities is not penalized for
    brevity.  Scores 0.0 when either side is empty.
    """
    left_set = set(left)
    right_set = set(right)
    if not left_set or not right_set:
        return 0.0
    intersection = len(left_set & right_set)
    return intersection / min(len(left_set), len(right_set))


def jaccard(left: Set | Collection, right: Set | Collection) -> float:
    """Plain set Jaccard ``|A ∩ B| / |A ∪ B|`` (0.0 on empty input)."""
    left_set = set(left)
    right_set = set(right)
    if not left_set or not right_set:
        return 0.0
    return len(left_set & right_set) / len(left_set | right_set)


def dice(left: Set | Collection, right: Set | Collection) -> float:
    """Dice coefficient ``2|A ∩ B| / (|A| + |B|)`` (0.0 on empty input)."""
    left_set = set(left)
    right_set = set(right)
    if not left_set or not right_set:
        return 0.0
    return 2.0 * len(left_set & right_set) / (len(left_set) + len(right_set))
