"""Similarity measures and the paper's functions F1–F10.

The building blocks (vector measures, string similarities, URL similarity)
live in their own modules; :mod:`repro.similarity.functions` assembles them
into the ten similarity functions of the paper's Table I, each mapping a
pair of :class:`~repro.extraction.features.PageFeatures` to [0, 1].
:mod:`repro.similarity.backends` scores whole blocks of pairs at once
through pluggable, bit-identical scoring backends (scalar ``python``,
vectorized ``numpy``).
"""

from repro.similarity.backends import (
    BACKENDS,
    ScoringBackend,
    default_backend,
    register_backend,
    resolve_backend,
)
from repro.similarity.base import SimilarityFunction
from repro.similarity.measures import (
    cosine,
    extended_jaccard,
    overlap_coefficient,
    pearson_similarity,
)
from repro.similarity.strings import (
    jaro,
    jaro_winkler,
    levenshtein,
    normalized_edit_similarity,
)
from repro.similarity.urls import parse_url, url_similarity
from repro.similarity.extended import (
    EXTENDED_FUNCTION_NAMES,
    SUBSET_I14,
    extended_functions,
    full_battery,
)
from repro.similarity.functions import (
    ALL_FUNCTION_NAMES,
    default_functions,
    function_by_name,
    functions_subset,
)

__all__ = [
    "BACKENDS",
    "ScoringBackend",
    "default_backend",
    "register_backend",
    "resolve_backend",
    "SimilarityFunction",
    "cosine",
    "pearson_similarity",
    "extended_jaccard",
    "overlap_coefficient",
    "levenshtein",
    "normalized_edit_similarity",
    "jaro",
    "jaro_winkler",
    "parse_url",
    "url_similarity",
    "ALL_FUNCTION_NAMES",
    "default_functions",
    "function_by_name",
    "functions_subset",
    "EXTENDED_FUNCTION_NAMES",
    "SUBSET_I14",
    "extended_functions",
    "full_battery",
]
