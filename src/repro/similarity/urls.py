"""URL similarity (feature of F2).

The paper compares page URLs by string similarity, motivated by the
observation that two pages on the same web domain are often about the same
person.  We parse URLs into (domain, path) and weight domain agreement
heavily: identical domains are strong evidence, while path similarity only
fine-tunes the score.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.similarity.strings import normalized_edit_similarity


@dataclass(frozen=True)
class ParsedUrl:
    """Scheme-stripped URL components."""

    domain: str
    path: str


def parse_url(url: str) -> ParsedUrl:
    """Split a URL into domain and path, dropping the scheme.

    >>> parse_url("http://example.org/a/b.html")
    ParsedUrl(domain='example.org', path='/a/b.html')
    """
    stripped = url.split("://", 1)[-1]
    if "/" in stripped:
        domain, _, path = stripped.partition("/")
        return ParsedUrl(domain=domain.lower(), path="/" + path)
    return ParsedUrl(domain=stripped.lower(), path="")


def domain_similarity(left: str, right: str) -> float:
    """Similarity of two domains: exact match, shared registrable suffix,
    or string similarity as a weak fallback."""
    if not left or not right:
        return 0.0
    if left == right:
        return 1.0
    left_parts = left.split(".")
    right_parts = right.split(".")
    # Same registrable domain, different subdomain (www vs people, etc.).
    if left_parts[-2:] == right_parts[-2:] and len(left_parts) >= 2:
        return 0.8
    return 0.5 * normalized_edit_similarity(left, right)


def url_similarity(left: str, right: str, domain_weight: float = 0.8) -> float:
    """String similarity of two URLs with domain-dominant weighting.

    Args:
        domain_weight: fraction of the score carried by the domain
            component; the remainder comes from path edit similarity.
    """
    if not left or not right:
        return 0.0
    parsed_left = parse_url(left)
    parsed_right = parse_url(right)
    domain_score = domain_similarity(parsed_left.domain, parsed_right.domain)
    path_score = normalized_edit_similarity(parsed_left.path, parsed_right.path)
    return domain_weight * domain_score + (1.0 - domain_weight) * path_score
