"""The paper's ten similarity functions (Table I).

====  ==================================  ============================
Fn    Feature                             Measure
====  ==================================  ============================
F1    Weighted concept vector             Cosine similarity
F2    URL of the page                     String similarity
F3    Most frequent name on the page      String similarity
F4    Concepts vector                     Number of overlapping concepts
F5    Organization entities on the page   Number of overlapping orgs
F6    Other person names on the page      Number of overlapping persons
F7    Name closest to the search keyword  String similarity
F8    TF-IDF words vector                 Cosine similarity
F9    TF-IDF words vector                 Pearson correlation
F10   TF-IDF words vector                 Extended Jaccard
====  ==================================  ============================

Overlap counts (F4–F6) are normalized into [0, 1] with the overlap
coefficient so all functions share the value space the region estimation
partitions.
"""

from __future__ import annotations

from repro.extraction.features import PageFeatures
from repro.similarity.base import SimilarityFunction
from repro.similarity.measures import (
    cosine,
    extended_jaccard,
    overlap_coefficient,
    pearson_similarity,
)
from repro.similarity.strings import name_similarity
from repro.similarity.urls import url_similarity


def _f1(left: PageFeatures, right: PageFeatures) -> float:
    return cosine(left.concept_vector, right.concept_vector)


def _f2(left: PageFeatures, right: PageFeatures) -> float:
    return url_similarity(left.url, right.url)


def _f3(left: PageFeatures, right: PageFeatures) -> float:
    return name_similarity(left.most_frequent_name, right.most_frequent_name)


def _f4(left: PageFeatures, right: PageFeatures) -> float:
    return overlap_coefficient(left.concept_set, right.concept_set)


def _f5(left: PageFeatures, right: PageFeatures) -> float:
    return overlap_coefficient(left.organizations, right.organizations)


def _f6(left: PageFeatures, right: PageFeatures) -> float:
    return overlap_coefficient(left.other_persons, right.other_persons)


def _f7(left: PageFeatures, right: PageFeatures) -> float:
    return name_similarity(left.closest_name_to_query, right.closest_name_to_query)


def _f8(left: PageFeatures, right: PageFeatures) -> float:
    return cosine(left.tfidf, right.tfidf)


def _f9(left: PageFeatures, right: PageFeatures) -> float:
    return pearson_similarity(left.tfidf, right.tfidf)


def _f10(left: PageFeatures, right: PageFeatures) -> float:
    return extended_jaccard(left.tfidf, right.tfidf)


_REGISTRY: dict[str, SimilarityFunction] = {
    "F1": SimilarityFunction("F1", "weighted concept vector", "cosine", _f1),
    "F2": SimilarityFunction("F2", "page URL", "string similarity", _f2),
    "F3": SimilarityFunction("F3", "most frequent name", "string similarity", _f3),
    "F4": SimilarityFunction("F4", "concept set", "overlap", _f4),
    "F5": SimilarityFunction("F5", "organizations", "overlap", _f5),
    "F6": SimilarityFunction("F6", "other person names", "overlap", _f6),
    "F7": SimilarityFunction("F7", "name closest to query", "string similarity", _f7),
    "F8": SimilarityFunction("F8", "TF-IDF vector", "cosine", _f8),
    "F9": SimilarityFunction("F9", "TF-IDF vector", "Pearson correlation", _f9),
    "F10": SimilarityFunction("F10", "TF-IDF vector", "extended Jaccard", _f10),
}

#: All function names in Table I order.
ALL_FUNCTION_NAMES: tuple[str, ...] = tuple(_REGISTRY)

#: The paper's Table II function subsets.
SUBSET_I4: tuple[str, ...] = ("F4", "F5", "F7", "F9")
SUBSET_I7: tuple[str, ...] = ("F3", "F4", "F5", "F7", "F8", "F9", "F10")
SUBSET_I10: tuple[str, ...] = ALL_FUNCTION_NAMES


def default_functions() -> list[SimilarityFunction]:
    """The full F1–F10 battery, in Table I order."""
    return [_REGISTRY[name] for name in ALL_FUNCTION_NAMES]


def function_by_name(name: str) -> SimilarityFunction:
    """Look up one function by its name.

    Resolves through :data:`repro.core.registry.SIMILARITIES`, which
    bridges the Table I built-ins and the extended battery (F11–F14) on
    first read and also holds anything added with
    :func:`repro.core.registry.register_similarity` — including
    ``replace=True`` overrides of built-ins.  The registry is imported
    lazily because ``repro.core`` imports this module back.

    Raises:
        KeyError: for unknown names.
    """
    from repro.core.registry import SIMILARITIES
    if name in SIMILARITIES:
        return SIMILARITIES.get(name)
    raise KeyError(name)


def functions_subset(names: tuple[str, ...] | list[str]) -> list[SimilarityFunction]:
    """Resolve a list of function names, preserving order."""
    return [function_by_name(name) for name in names]
