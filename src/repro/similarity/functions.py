"""The paper's ten similarity functions (Table I).

====  ==================================  ============================
Fn    Feature                             Measure
====  ==================================  ============================
F1    Weighted concept vector             Cosine similarity
F2    URL of the page                     String similarity
F3    Most frequent name on the page      String similarity
F4    Concepts vector                     Number of overlapping concepts
F5    Organization entities on the page   Number of overlapping orgs
F6    Other person names on the page      Number of overlapping persons
F7    Name closest to the search keyword  String similarity
F8    TF-IDF words vector                 Cosine similarity
F9    TF-IDF words vector                 Pearson correlation
F10   TF-IDF words vector                 Extended Jaccard
====  ==================================  ============================

Overlap counts (F4–F6) are normalized into [0, 1] with the overlap
coefficient so all functions share the value space the region estimation
partitions.
"""

from __future__ import annotations

from repro.extraction.features import PageFeatures
from repro.similarity.base import PairScorer, SimilarityFunction
from repro.similarity.measures import (
    cosine,
    extended_jaccard,
    overlap_coefficient,
    pearson_from_moments,
    pearson_similarity,
)
from repro.similarity.strings import name_similarity, normalized_edit_similarity
from repro.similarity.urls import domain_similarity, parse_url, url_similarity
from repro.similarity.vectors import dot, norm, norm_squared


def _f1(left: PageFeatures, right: PageFeatures) -> float:
    return cosine(left.concept_vector, right.concept_vector)


def _f2(left: PageFeatures, right: PageFeatures) -> float:
    return url_similarity(left.url, right.url)


def _f3(left: PageFeatures, right: PageFeatures) -> float:
    return name_similarity(left.most_frequent_name, right.most_frequent_name)


def _f4(left: PageFeatures, right: PageFeatures) -> float:
    return overlap_coefficient(left.concept_set, right.concept_set)


def _f5(left: PageFeatures, right: PageFeatures) -> float:
    return overlap_coefficient(left.organizations, right.organizations)


def _f6(left: PageFeatures, right: PageFeatures) -> float:
    return overlap_coefficient(left.other_persons, right.other_persons)


def _f7(left: PageFeatures, right: PageFeatures) -> float:
    return name_similarity(left.closest_name_to_query, right.closest_name_to_query)


def _f8(left: PageFeatures, right: PageFeatures) -> float:
    return cosine(left.tfidf, right.tfidf)


def _f9(left: PageFeatures, right: PageFeatures) -> float:
    return pearson_similarity(left.tfidf, right.tfidf)


def _f10(left: PageFeatures, right: PageFeatures) -> float:
    return extended_jaccard(left.tfidf, right.tfidf)


# -- prepared scorers ------------------------------------------------------
#
# A preparer (see repro.similarity.base.Preparer) specializes a function to
# one block: per-page inputs that the naive per-pair scorers re-derive on
# every call (vector norms, parsed URLs, key sets) are computed once per
# page, and string comparisons whose operands repeat across pairs are
# memoized by operand value.  Every preparer is bit-identical to its plain
# scorer — same arithmetic on identically computed inputs — which the
# runtime engine's determinism tests enforce.


def _prepared_cosine(vectors: dict[str, dict[str, float]]) -> PairScorer:
    """Cosine with per-page norms (identical floats: same norm per page)."""
    norms = {doc_id: norm(vector) for doc_id, vector in vectors.items()}

    def scorer(left: PageFeatures, right: PageFeatures) -> float:
        left_vector = vectors[left.doc_id]
        right_vector = vectors[right.doc_id]
        if not left_vector or not right_vector:
            return 0.0
        denominator = norms[left.doc_id] * norms[right.doc_id]
        if denominator == 0.0:
            return 0.0
        value = dot(left_vector, right_vector) / denominator
        return min(1.0, max(0.0, value))

    return scorer


def _prepare_f1(features: dict[str, PageFeatures]) -> PairScorer:
    return _prepared_cosine(
        {doc_id: page.concept_vector for doc_id, page in features.items()})


def _prepare_f2(features: dict[str, PageFeatures]) -> PairScorer:
    """URL similarity with per-page parsing and a domain-pair memo.

    Pages cluster on a few dozen domains, so the edit-distance fallback of
    :func:`~repro.similarity.urls.domain_similarity` repeats the same
    operand pairs hundreds of times per block; paths are page-unique and
    stay per-pair.
    """
    parsed = {doc_id: parse_url(page.url) if page.url else None
              for doc_id, page in features.items()}
    domain_scores: dict[tuple[str, str], float] = {}

    def scorer(left: PageFeatures, right: PageFeatures) -> float:
        left_parsed = parsed[left.doc_id]
        right_parsed = parsed[right.doc_id]
        if left_parsed is None or right_parsed is None:
            return 0.0
        key = (left_parsed.domain, right_parsed.domain)
        domain_score = domain_scores.get(key)
        if domain_score is None:
            domain_score = domain_similarity(*key)
            domain_scores[key] = domain_score
        path_score = normalized_edit_similarity(left_parsed.path,
                                                right_parsed.path)
        return 0.8 * domain_score + (1.0 - 0.8) * path_score

    return scorer


def _prepared_name_memo(names: dict[str, str]) -> PairScorer:
    """Name similarity memoized by operand pair (names repeat per block)."""
    scores: dict[tuple[str, str], float] = {}

    def scorer(left: PageFeatures, right: PageFeatures) -> float:
        key = (names[left.doc_id], names[right.doc_id])
        value = scores.get(key)
        if value is None:
            value = name_similarity(*key)
            scores[key] = value
        return value

    return scorer


def _prepare_f3(features: dict[str, PageFeatures]) -> PairScorer:
    return _prepared_name_memo(
        {doc_id: page.most_frequent_name for doc_id, page in features.items()})


def _prepared_overlap(sets: dict[str, set]) -> PairScorer:
    """Overlap coefficient over per-page precomputed sets."""

    def scorer(left: PageFeatures, right: PageFeatures) -> float:
        left_set = sets[left.doc_id]
        right_set = sets[right.doc_id]
        if not left_set or not right_set:
            return 0.0
        intersection = len(left_set & right_set)
        return intersection / min(len(left_set), len(right_set))

    return scorer


def _prepare_f4(features: dict[str, PageFeatures]) -> PairScorer:
    return _prepared_overlap(
        {doc_id: set(page.concept_set) for doc_id, page in features.items()})


def _prepare_f5(features: dict[str, PageFeatures]) -> PairScorer:
    return _prepared_overlap(
        {doc_id: set(page.organizations) for doc_id, page in features.items()})


def _prepare_f6(features: dict[str, PageFeatures]) -> PairScorer:
    return _prepared_overlap(
        {doc_id: set(page.other_persons) for doc_id, page in features.items()})


def _prepare_f7(features: dict[str, PageFeatures]) -> PairScorer:
    return _prepared_name_memo(
        {doc_id: page.closest_name_to_query
         for doc_id, page in features.items()})


def _prepare_f8(features: dict[str, PageFeatures]) -> PairScorer:
    return _prepared_cosine(
        {doc_id: page.tfidf for doc_id, page in features.items()})


def _prepare_f9(features: dict[str, PageFeatures]) -> PairScorer:
    """Pearson with per-page key sets, value sums and squared norms.

    Per pair, only the sparse dot product and the union dimension remain
    to compute; all other moments are per-page quantities derived once
    with the same scalar helpers the plain scorer uses.  The arithmetic
    itself is :func:`~repro.similarity.measures.pearson_from_moments` —
    the shared expression sequence that keeps plain, prepared and
    vectorized scoring bit-identical.
    """
    vectors = {doc_id: page.tfidf for doc_id, page in features.items()}
    key_sets = {doc_id: set(vector) for doc_id, vector in vectors.items()}
    sums = {doc_id: sum(vector.values()) for doc_id, vector in vectors.items()}
    squares = {doc_id: norm_squared(vector)
               for doc_id, vector in vectors.items()}

    def scorer(left: PageFeatures, right: PageFeatures) -> float:
        left_vector = vectors[left.doc_id]
        right_vector = vectors[right.doc_id]
        if not left_vector or not right_vector:
            return 0.0
        left_keys = key_sets[left.doc_id]
        right_keys = key_sets[right.doc_id]
        dimension = (len(left_keys) + len(right_keys)
                     - len(left_keys & right_keys))
        if dimension < 2:
            return 0.0
        return pearson_from_moments(
            dot(left_vector, right_vector),
            sums[left.doc_id], sums[right.doc_id],
            squares[left.doc_id], squares[right.doc_id],
            dimension)

    return scorer


def _prepare_f10(features: dict[str, PageFeatures]) -> PairScorer:
    vectors = {doc_id: page.tfidf for doc_id, page in features.items()}
    squared_norms = {doc_id: norm_squared(vector)
                     for doc_id, vector in vectors.items()}

    def scorer(left: PageFeatures, right: PageFeatures) -> float:
        left_vector = vectors[left.doc_id]
        right_vector = vectors[right.doc_id]
        if not left_vector or not right_vector:
            return 0.0
        product = dot(left_vector, right_vector)
        denominator = (squared_norms[left.doc_id]
                       + squared_norms[right.doc_id] - product)
        if denominator <= 0.0:
            return 0.0
        return min(1.0, max(0.0, product / denominator))

    return scorer


_REGISTRY: dict[str, SimilarityFunction] = {
    "F1": SimilarityFunction("F1", "weighted concept vector", "cosine", _f1,
                             _prepare_f1),
    "F2": SimilarityFunction("F2", "page URL", "string similarity", _f2,
                             _prepare_f2),
    "F3": SimilarityFunction("F3", "most frequent name", "string similarity",
                             _f3, _prepare_f3),
    "F4": SimilarityFunction("F4", "concept set", "overlap", _f4, _prepare_f4),
    "F5": SimilarityFunction("F5", "organizations", "overlap", _f5,
                             _prepare_f5),
    "F6": SimilarityFunction("F6", "other person names", "overlap", _f6,
                             _prepare_f6),
    "F7": SimilarityFunction("F7", "name closest to query", "string similarity",
                             _f7, _prepare_f7),
    "F8": SimilarityFunction("F8", "TF-IDF vector", "cosine", _f8, _prepare_f8),
    "F9": SimilarityFunction("F9", "TF-IDF vector", "Pearson correlation", _f9,
                             _prepare_f9),
    "F10": SimilarityFunction("F10", "TF-IDF vector", "extended Jaccard", _f10,
                              _prepare_f10),
}

#: All function names in Table I order.
ALL_FUNCTION_NAMES: tuple[str, ...] = tuple(_REGISTRY)

#: The paper's Table II function subsets.
SUBSET_I4: tuple[str, ...] = ("F4", "F5", "F7", "F9")
SUBSET_I7: tuple[str, ...] = ("F3", "F4", "F5", "F7", "F8", "F9", "F10")
SUBSET_I10: tuple[str, ...] = ALL_FUNCTION_NAMES


def default_functions() -> list[SimilarityFunction]:
    """The full F1–F10 battery, in Table I order."""
    return [_REGISTRY[name] for name in ALL_FUNCTION_NAMES]


def function_by_name(name: str) -> SimilarityFunction:
    """Look up one function by its name.

    Resolves through :data:`repro.core.registry.SIMILARITIES`, which
    bridges the Table I built-ins and the extended battery (F11–F14) on
    first read and also holds anything added with
    :func:`repro.core.registry.register_similarity` — including
    ``replace=True`` overrides of built-ins.  The registry is imported
    lazily because ``repro.core`` imports this module back.

    Raises:
        KeyError: for unknown names.
    """
    from repro.core.registry import SIMILARITIES
    if name in SIMILARITIES:
        return SIMILARITIES.get(name)
    raise KeyError(name)


def functions_subset(names: tuple[str, ...] | list[str]) -> list[SimilarityFunction]:
    """Resolve a list of function names, preserving order."""
    return [function_by_name(name) for name in names]
