"""Extended similarity functions beyond the paper's Table I.

§III argues no single function suffices and §VII asks for better ways to
combine *more* evidence.  This module contributes four additional
functions over features the paper extracts but never compares directly:

====  ====================================  ==========================
Fn    Feature                               Measure
====  ====================================  ==========================
F11   Location entities on the page         Number of overlapping locations
F12   Page title words                      Cosine similarity
F13   Combined entity context (orgs ∪       Weighted Jaccard
      persons ∪ locations)
F14   Concept vector                        Extended Jaccard
====  ====================================  ==========================

The extended-battery benchmark checks whether Table II's "more functions
help" trend continues past ten functions.
"""

from __future__ import annotations

from collections import Counter

from repro.extraction.features import PageFeatures
from repro.similarity.base import SimilarityFunction
from repro.similarity.functions import ALL_FUNCTION_NAMES, default_functions
from repro.similarity.measures import (
    cosine,
    extended_jaccard,
    overlap_coefficient,
)


def _f11(left: PageFeatures, right: PageFeatures) -> float:
    return overlap_coefficient(left.locations, right.locations)


def _f12(left: PageFeatures, right: PageFeatures) -> float:
    # PageFeatures does not retain the raw title, but the title tokens are
    # part of the TF-IDF support; approximate title similarity by cosine
    # over the top-weighted terms, which on short web pages are dominated
    # by title/heading vocabulary.
    return cosine(_top_terms(left.tfidf), _top_terms(right.tfidf))


def _top_terms(vector: dict[str, float], k: int = 12) -> dict[str, float]:
    # Key-sorted output: selection is by weight, but the emitted dict
    # iterates in canonical (ascending-key) order so the scalar dot fold
    # matches the vectorized backend bit-for-bit.
    if len(vector) <= k:
        return vector
    top = sorted(vector.items(), key=lambda item: -item[1])[:k]
    return dict(sorted(top))


def _entity_context(features: PageFeatures) -> Counter:
    context: Counter = Counter()
    context.update(features.organizations)
    context.update(features.other_persons)
    context.update(features.locations)
    return context


def _f13(left: PageFeatures, right: PageFeatures) -> float:
    """Weighted Jaccard over the union of all entity mentions."""
    left_context = _entity_context(left)
    right_context = _entity_context(right)
    if not left_context or not right_context:
        return 0.0
    keys = set(left_context) | set(right_context)
    minimum = sum(min(left_context[key], right_context[key]) for key in keys)
    maximum = sum(max(left_context[key], right_context[key]) for key in keys)
    return minimum / maximum if maximum else 0.0


def _f14(left: PageFeatures, right: PageFeatures) -> float:
    return extended_jaccard(left.concept_vector, right.concept_vector)


EXTENDED_REGISTRY: dict[str, SimilarityFunction] = {
    "F11": SimilarityFunction("F11", "locations", "overlap", _f11),
    "F12": SimilarityFunction("F12", "top TF-IDF terms", "cosine", _f12),
    "F13": SimilarityFunction("F13", "entity context", "weighted Jaccard", _f13),
    "F14": SimilarityFunction("F14", "weighted concept vector",
                              "extended Jaccard", _f14),
}

#: Names of the extended functions, in order.
EXTENDED_FUNCTION_NAMES: tuple[str, ...] = tuple(EXTENDED_REGISTRY)

#: Table II style label for the full extended battery.
SUBSET_I14: tuple[str, ...] = ALL_FUNCTION_NAMES + EXTENDED_FUNCTION_NAMES


def extended_functions() -> list[SimilarityFunction]:
    """The four extension functions F11–F14."""
    return list(EXTENDED_REGISTRY.values())


def full_battery() -> list[SimilarityFunction]:
    """F1–F10 plus F11–F14."""
    return default_functions() + extended_functions()


def extended_function_by_name(name: str) -> SimilarityFunction:
    """Look up a function across both registries.

    Raises:
        KeyError: for unknown names.
    """
    if name in EXTENDED_REGISTRY:
        return EXTENDED_REGISTRY[name]
    from repro.similarity.functions import function_by_name
    return function_by_name(name)
