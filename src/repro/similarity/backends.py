"""Pluggable pairwise-scoring backends — the similarity hot path.

Scoring every in-block page pair under the similarity battery is the
pipeline's dominant cost (the ``BENCH_runtime.json`` graphs stage).  A
:class:`ScoringBackend` owns exactly that step: given one block's
extracted features and a function battery, produce every function's full
pair-score matrix.  Three built-ins are registered in :data:`BACKENDS`:

* ``"python"`` — today's prepared scalar scorers
  (:meth:`~repro.similarity.base.SimilarityFunction.prepared`), swept
  once over the pair grid.  Always available; the default.
* ``"numpy"`` — materializes per-block feature matrices and computes
  whole score matrices in batched vectorized kernels
  (:mod:`repro.similarity.batch`).  Functions without a kernel — the
  Jaro-based string measures F3/F7, plus any custom registration — fall
  back per-function to the scalar sweep (F2's integer edit distances
  batch exactly, so it has a kernel).
* ``"numpy32"`` — opt-in float32 variant of ``numpy`` for throughput:
  float32 value planes and float32 BLAS pair dots, float64 everywhere
  else.  Deliberately *approximate* (≈1e-4 absolute tolerance on the
  float-vector measures; integer kernels stay exact) — see
  :class:`Numpy32Backend` for the accuracy contract.

**Bit-identity contract.**  Every backend except ``numpy32`` must
produce *bit-identical* scores to the ``python`` backend: the
vectorized kernels replay the scalar fold's exact floating-point
operation sequence (canonical ascending-key order — see
:mod:`repro.similarity.batch` for the argument), so serial, parallel
and session serving give the same bytes regardless of the configured
backend.  ``tests/properties/test_backend_parity.py`` and the golden
fixtures under ``tests/data/golden/`` enforce this at tolerance zero;
``numpy32`` is the explicit exception, is never a default, and is
never written into a serialized model.

Select a backend with ``ResolverConfig(backend="numpy")``, the CLI's
``--backend`` flag, or the ``REPRO_BACKEND`` environment variable (the
config default).  Custom backends register with :func:`register_backend`
and become valid config values immediately::

    @register_backend("mine")
    class MyBackend(ScoringBackend):
        name = "mine"
        ...
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from collections.abc import Sequence

from repro.core.registry import Registry
from repro.extraction.features import PageFeatures
from repro.graph.entity_graph import PairKey, pair_key
from repro.similarity.base import SimilarityFunction

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "Numpy32Backend",
    "NumpyBackend",
    "PythonBackend",
    "ScoringBackend",
    "default_backend",
    "register_backend",
    "resolve_backend",
]

#: The backend used when neither config nor environment select one.
DEFAULT_BACKEND = "python"


def default_backend() -> str:
    """The ambient backend name: ``REPRO_BACKEND`` or ``"python"``.

    Read at every call (not import) so test harnesses and the CI matrix
    can flip the whole process with one environment variable;
    ``ResolverConfig``'s ``backend`` field defaults through this.
    """
    return os.environ.get("REPRO_BACKEND", DEFAULT_BACKEND)


class ScoringBackend(ABC):
    """One strategy for scoring page pairs under a similarity battery.

    Implementations must be stateless across calls (one instance serves
    every block of every pass, including from concurrent pipelines) and
    must honor the bit-identity contract described in the module
    docstring.
    """

    #: registry/config name.
    name: str = "?"

    @abstractmethod
    def block_scores(
        self,
        ids: Sequence[str],
        features: dict[str, PageFeatures],
        functions: Sequence[SimilarityFunction],
        mask: "frozenset[PairKey] | None" = None,
    ) -> dict[str, dict[PairKey, float]]:
        """Every function's scores over one block's unordered pairs.

        Args:
            ids: page ids in block order; pairs are formed ``(i, j)``
                with ``i < j`` in this order.
            features: extracted features covering ``ids``.
            functions: the battery to score; one weights dict per entry.
            mask: optional candidate-pair mask (a blocker's output);
                only pairs in the mask are scored — and only they appear
                in the returned weights dicts.  ``None`` (the dense
                default) scores every pair.  Masked scores must be
                bit-identical to the dense scores of the same pairs.

        Returns:
            ``function name -> {pair_key: score}`` with each weights
            dict inserted in canonical pair order (the nested-loop order
            the seed implementation produced, restricted to the mask).
        """

    @abstractmethod
    def pair_scores(
        self,
        function: SimilarityFunction,
        new: PageFeatures,
        others: Sequence[PageFeatures],
    ) -> list[float]:
        """One page against many — the incremental request path.

        Scores ``(new, other)`` for every entry of ``others`` under
        ``function``, clamped to [0, 1] exactly like
        ``function(new, other)``.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class PythonBackend(ScoringBackend):
    """The scalar reference backend: prepared scorers, one pair sweep.

    This is the seed algorithm with per-page input reuse — the behavior
    every other backend is defined against.
    """

    name = "python"

    def block_scores(self, ids, features, functions, mask=None):
        scores: dict[str, dict[PairKey, float]] = {
            function.name: {} for function in functions}
        scorers = [(scores[function.name], function.prepared(features))
                   for function in functions]
        ids = list(ids)
        if mask is not None:
            # Iterate the candidates directly — O(candidates), not
            # O(n²) — in the dense sweep's pair order (ascending block
            # positions), with the sweep's argument order (earlier
            # position on the left) so even an asymmetric scorer gets
            # identical calls.
            position = {doc_id: index for index, doc_id in enumerate(ids)}
            ordered = sorted(
                (sorted((position[left], position[right]))
                 for left, right in mask
                 if left in position and right in position))
            for i, j in ordered:
                left, right = features[ids[i]], features[ids[j]]
                key = pair_key(ids[i], ids[j])
                for weights, scorer in scorers:
                    weights[key] = scorer(left, right)
            return scores
        for i, left_id in enumerate(ids):
            left = features[left_id]
            for right_id in ids[i + 1:]:
                right = features[right_id]
                key = pair_key(left_id, right_id)
                for weights, scorer in scorers:
                    weights[key] = scorer(left, right)
        return scores

    def pair_scores(self, function, new, others):
        return [function(new, other) for other in others]


class NumpyBackend(ScoringBackend):
    """Vectorized backend: per-block feature matrices, batched kernels.

    Block scoring materializes dense per-block matrices (TF-IDF and
    concept vectors over the block vocabulary, set-indicator matrices,
    entity-count matrices) once and fills each function's whole score
    matrix with the exact-fold kernels of :mod:`repro.similarity.batch`.
    Functions without a kernel — or whose scorer was replaced in the
    registry — fall back per-function to the scalar sweep, so arbitrary
    batteries keep working.

    Under a candidate-pair ``mask`` the block state gathers the
    candidate rows (pages appearing in at least one candidate pair),
    fills the kernels' matrices over that reduced page set, and reads
    only the masked entries — so isolated pages cost nothing and a
    dense-ish mask degrades gracefully to "fill and mask".  Reducing
    the page set only removes exact no-op fold steps (columns zero on
    both sides), so masked scores stay bit-identical to the dense
    scores of the same pairs.

    The request path (:meth:`pair_scores`) vectorizes the sparse
    one-vs-many folds where that is exact and cheap (the vector, set and
    count measures, Pearson included) and delegates the rest — F2, F3,
    F7 and custom functions — to the scalar scorer; see
    ``docs/performance.md`` for when each backend wins.

    The backend registers unconditionally so config validation (and
    loading a model fitted elsewhere with ``backend="numpy"``) works on
    hosts without numpy; on such hosts scoring degrades to the scalar
    path with a one-time :class:`RuntimeWarning` — legal because
    backends are bit-identical, so only speed is lost.
    """

    name = "numpy"

    _warned_missing = False

    def _kernels(self):
        try:
            from repro.similarity import batch
        except ImportError:
            if not NumpyBackend._warned_missing:
                NumpyBackend._warned_missing = True
                import warnings
                warnings.warn(
                    "the 'numpy' scoring backend needs numpy, which is "
                    "not installed; falling back to the bit-identical "
                    "'python' backend (install numpy to restore the "
                    "vectorized hot path)", RuntimeWarning, stacklevel=3)
            return None
        return batch

    def _block_state(self, batch, ids, features, mask):
        """The per-block kernel state; ``numpy32`` overrides this."""
        return batch.BlockState(ids, features, mask=mask)

    def block_scores(self, ids, features, functions, mask=None):
        batch = self._kernels()
        if batch is None:
            return _PYTHON.block_scores(ids, features, functions, mask=mask)
        ids = list(ids)
        state = self._block_state(batch, ids, features, mask)
        scores: dict[str, dict[PairKey, float]] = {}
        fallback: list[SimilarityFunction] = []
        for function in functions:
            kernel = batch.kernel_for(function)
            if kernel is None:
                fallback.append(function)
                continue
            scores[function.name] = state.pair_weights(kernel)
        if fallback:
            scores.update(_PYTHON.block_scores(ids, features, fallback,
                                               mask=mask))
        return scores

    def pair_scores(self, function, new, others):
        batch = self._kernels()
        others = list(others)
        if batch is None:
            return _PYTHON.pair_scores(function, new, others)
        kernel = batch.kernel_for(function)
        if kernel is None or kernel.one_vs_many is None or not others:
            return _PYTHON.pair_scores(function, new, others)
        return kernel.one_vs_many(new, others)


class Numpy32Backend(NumpyBackend):
    """Opt-in float32 variant of the numpy backend — fast, *approximate*.

    The only backend that deliberately breaks the bit-identity contract:
    dense vector families are stored as float32 planes bump-allocated
    from a per-thread :class:`~repro.similarity.batch.PlaneArena`, and
    the pairwise dot matrices — the O(n²·d) cost the exact sequential
    fold pays for bit-identity — go through float32 BLAS instead.  All
    moment arithmetic (means, variances, the Pearson expression) stays
    in float64 over those slightly rounded inputs.

    Accuracy: integer and string kernels (F2, F4, F5, F6, F11, F13) are
    bit-identical to ``numpy`` — their arithmetic never leaves int64.
    The float-vector measures (F1, F8, F9, F10, F12, F14) carry float32
    rounding: absolute error is typically ≲1e-6 on [0, 1] scores and
    bounded near 1e-4 in the parity suite; near-degenerate inputs
    (variance ≈ 0 under F9's Pearson) can flip a validity threshold and
    should not rely on this backend.  Use it where throughput beats the
    last digits — bulk candidate generation, interactive exploration —
    and keep ``numpy`` for anything that feeds golden comparisons.

    Opt-in only: never a default, and a model's config never serializes
    a backend name (``ResolverConfig.to_dict`` skips host-local fields),
    so fitted models saved under ``numpy32`` load everywhere and score
    exactly under the default backend.  The one-vs-many request path
    inherits the exact ``numpy`` implementation — single requests are
    never approximated.
    """

    name = "numpy32"

    def __init__(self) -> None:
        import threading
        self._scratch = threading.local()

    def _block_state(self, batch, ids, features, mask):
        arena = getattr(self._scratch, "arena", None)
        if arena is None:
            arena = batch.PlaneArena()
            self._scratch.arena = arena
        return batch.BlockState(ids, features, mask=mask, approx32=True,
                                arena=arena)


#: name -> :class:`ScoringBackend` instance.  Built-ins are seeded
#: directly (not via :meth:`Registry.add`) so importing this module never
#: triggers the shared registry's built-in loading mid-import.
BACKENDS = Registry("scoring backend")
_PYTHON = PythonBackend()
BACKENDS._entries.setdefault("python", _PYTHON)
BACKENDS._entries.setdefault("numpy", NumpyBackend())
BACKENDS._entries.setdefault("numpy32", Numpy32Backend())


def register_backend(name: str | None = None, replace: bool = False):
    """Decorator registering a :class:`ScoringBackend` class or instance.

    Classes are instantiated once at registration (backends are
    stateless singletons).
    """
    def decorate(entry):
        instance = entry() if isinstance(entry, type) else entry
        key = name or getattr(instance, "name", None)
        if not key or key == ScoringBackend.name:
            raise ValueError(
                f"cannot infer a scoring backend name for {entry!r}; set a "
                f"class-level `name` or pass register_backend(name=...)")
        BACKENDS.add(key, instance, replace=replace)
        return entry
    return decorate


def resolve_backend(backend: "str | ScoringBackend | None") -> ScoringBackend:
    """The backend instance for a config value.

    Accepts a registered name, an instance (passed through), or ``None``
    (the ambient :func:`default_backend`).

    Raises:
        ValueError: for unknown backend names.
    """
    if backend is None:
        backend = default_backend()
    if isinstance(backend, ScoringBackend):
        return backend
    return BACKENDS.get(backend)
