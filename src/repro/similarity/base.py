"""The similarity-function abstraction.

A similarity function (paper §III) maps a pair of pages — via their
extracted :class:`~repro.extraction.features.PageFeatures` — to a value in
[0, 1].  Functions are *not* transitive, which is exactly why the paper
layers accuracy estimation and graph clustering on top.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.extraction.features import PageFeatures

PairScorer = Callable[[PageFeatures, PageFeatures], float]

#: A preparer turns one block's extracted features into a specialized pair
#: scorer.  It may precompute per-page inputs (vector norms, parsed URLs,
#: name forms) once instead of once per pair, and memoize value-level
#: repeats — but it MUST return bit-identical scores to the plain scorer;
#: the runtime engine's serial/parallel determinism guarantee rests on it.
Preparer = Callable[[dict[str, PageFeatures]], PairScorer]


@dataclass(frozen=True)
class SimilarityFunction:
    """A named pairwise similarity function.

    Attributes:
        name: short identifier, e.g. ``"F3"``.
        feature: the page feature compared (paper Table I wording).
        measure: the similarity measure applied (paper Table I wording).
        scorer: the actual pair function.
        preparer: optional block-level fast path (see :data:`Preparer`);
            batched graph construction uses it when present, per-pair
            callers are unaffected.
    """

    name: str
    feature: str
    measure: str
    scorer: PairScorer
    preparer: Preparer | None = None

    def __call__(self, left: PageFeatures, right: PageFeatures) -> float:
        """Score a pair; result is clamped to [0, 1]."""
        value = self.scorer(left, right)
        if value < 0.0:
            return 0.0
        if value > 1.0:
            return 1.0
        return value

    def prepared(self, features: dict[str, PageFeatures]) -> PairScorer:
        """A scorer specialized to one block's features, clamped to [0, 1].

        Falls back to the plain per-pair scorer when the function has no
        preparer, so arbitrary registered functions keep working in the
        batched engine path.  Pages scored through the returned callable
        must come from ``features`` (preparers index per-page state by
        ``doc_id``).
        """
        scorer = self.preparer(features) if self.preparer else self.scorer

        def clamped(left: PageFeatures, right: PageFeatures) -> float:
            value = scorer(left, right)
            if value < 0.0:
                return 0.0
            if value > 1.0:
                return 1.0
            return value

        return clamped

    def __repr__(self) -> str:  # concise in experiment logs
        return f"SimilarityFunction({self.name}: {self.feature} / {self.measure})"
