"""The similarity-function abstraction.

A similarity function (paper §III) maps a pair of pages — via their
extracted :class:`~repro.extraction.features.PageFeatures` — to a value in
[0, 1].  Functions are *not* transitive, which is exactly why the paper
layers accuracy estimation and graph clustering on top.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.extraction.features import PageFeatures

PairScorer = Callable[[PageFeatures, PageFeatures], float]


@dataclass(frozen=True)
class SimilarityFunction:
    """A named pairwise similarity function.

    Attributes:
        name: short identifier, e.g. ``"F3"``.
        feature: the page feature compared (paper Table I wording).
        measure: the similarity measure applied (paper Table I wording).
        scorer: the actual pair function.
    """

    name: str
    feature: str
    measure: str
    scorer: PairScorer

    def __call__(self, left: PageFeatures, right: PageFeatures) -> float:
        """Score a pair; result is clamped to [0, 1]."""
        value = self.scorer(left, right)
        if value < 0.0:
            return 0.0
        if value > 1.0:
            return 1.0
        return value

    def __repr__(self) -> str:  # concise in experiment logs
        return f"SimilarityFunction({self.name}: {self.feature} / {self.measure})"
