"""Sparse-vector primitives.

Feature vectors (TF-IDF, weighted concepts) are sparse ``dict[str, float]``
maps.  These helpers implement the handful of linear-algebra operations the
similarity measures need, always iterating over the smaller operand.
"""

from __future__ import annotations

import math

SparseVector = dict[str, float]


def dot(left: SparseVector, right: SparseVector) -> float:
    """Inner product of two sparse vectors."""
    if len(left) > len(right):
        left, right = right, left
    return sum(value * right.get(key, 0.0) for key, value in left.items())


def norm(vector: SparseVector) -> float:
    """Euclidean norm."""
    return math.sqrt(sum(value * value for value in vector.values()))


def norm_squared(vector: SparseVector) -> float:
    """Squared Euclidean norm (avoids the sqrt when only ratios matter)."""
    return sum(value * value for value in vector.values())


def mean(vector: SparseVector, dimension: int) -> float:
    """Mean over an explicit ``dimension``-sized space (implicit zeros count)."""
    if dimension <= 0:
        raise ValueError("dimension must be positive")
    return sum(vector.values()) / dimension


def l2_normalize(vector: SparseVector) -> SparseVector:
    """Return the unit-length copy of ``vector`` (empty stays empty)."""
    length = norm(vector)
    if length == 0.0:
        return {}
    return {key: value / length for key, value in vector.items()}
