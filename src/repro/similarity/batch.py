"""Vectorized batch-scoring kernels for the ``numpy`` backend.

Each kernel fills one similarity function's *whole* block score matrix
from dense per-block feature matrices, instead of calling a scalar
scorer per pair.  The point is speed on the quadratic hot path; the
constraint is the backend bit-identity contract
(:mod:`repro.similarity.backends`): every kernel must reproduce the
scalar scorers' floats exactly, not approximately.

How exactness is achieved
-------------------------

Floating-point addition is not associative, so a kernel may not simply
hand reductions to BLAS (``np.dot`` and friends reassociate partial
sums).  Instead:

* **Canonical order.**  The scalar path folds every sparse reduction in
  ascending-key order: extraction emits key-sorted feature dicts, and
  the Pearson scorers merge their unions sorted.  Block vocabularies
  here are sorted the same way, so "ascending key" equals "ascending
  column".
* **Sequential column folds.**  Pairwise dot products and Pearson
  accumulators are folded column by column (``acc += column term``),
  which performs, per pair, the exact float-operation sequence of the
  scalar loop.  Implicit-zero columns contribute exact no-ops
  (``x + ±0.0 == x``), so folding the full vocabulary equals folding
  each pair's sparse intersection/union.
* **Scalar per-page inputs.**  Per-page quantities the scalar scorers
  derive themselves (norms, value sums) are computed with the *same
  scalar functions* and broadcast, so their bits match by construction.
* **Integer arithmetic.**  Set overlaps and entity-count folds are
  exact in int64 regardless of order and only meet floats in the final
  division, with identical operands.

The Jaro-based string measures (F3, F7) have no kernel and fall back to
the scalar sweep, memoization intact.  F2 *does* have a block kernel —
its expensive part is an integer edit distance, exact under any
implementation, batched here as a pair-vectorized Myers bit-parallel DP
(see the URL-similarity section below); its one-vs-many request path
stays scalar.

Kernels are dispatched per :class:`~repro.similarity.base.
SimilarityFunction` by :func:`kernel_for`, which also checks the
function still carries its built-in scorer: a registry override under a
built-in name (``register_similarity(..., replace=True)``) falls back
to its own scalar code rather than the stale kernel.

This module imports numpy at module level and is itself imported
lazily, only by :class:`~repro.similarity.backends.NumpyBackend` — the
default ``python`` backend never touches numpy.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.extraction.features import PageFeatures
from repro.graph.entity_graph import PairKey, pair_key
from repro.similarity import extended as _extended
from repro.similarity import functions as _base
from repro.similarity.strings import levenshtein
from repro.similarity.urls import domain_similarity, parse_url
from repro.similarity.vectors import norm, norm_squared

__all__ = ["BlockState", "Kernel", "PlaneArena", "kernel_for"]

#: Columns folded per vectorized step.  Folding stays sequential per
#: column (exactness); chunking only amortizes Python-loop overhead and
#: keeps the per-step tensors cache-resident.
_CHUNK = 32


# -- materialized per-block families ---------------------------------------


class _VectorFamily:
    """Dense matrices for one sparse-vector page attribute.

    Columns are the block vocabulary in ascending key order — the same
    order the scalar folds iterate.  ``presence`` records dict
    membership (not value truthiness), matching ``key in vector``
    semantics; per-page norms and sums come from the scalar helpers so
    their bits match the scalar scorers'.

    Two construction paths produce identical matrices: the dict path
    below, and :meth:`from_plane`, which fills the same (row, column,
    entry) triples straight from a shard's CSR views — the stored entry
    order is the dicts' iteration order and the stored vocabulary is
    already ascending, so the fancy assignment and the per-page scalar
    folds replay the exact same float operations.

    ``approx`` switches the family to the opt-in float32 mode of the
    ``numpy32`` backend: values are downcast to a float32 matrix (from
    an optional :class:`PlaneArena` scratch) and the per-page moments
    are recomputed as float64 numpy reductions over it — deterministic,
    but *not* bit-identical to the scalar path.
    """

    def __init__(self, vectors: list[dict[str, float]],
                 approx: bool = False, arena: "PlaneArena | None" = None):
        self.vectors = vectors
        n = len(vectors)
        vocab: set[str] = set()
        for vector in vectors:
            vocab.update(vector)
        self.index = {key: column for column, key in enumerate(sorted(vocab))}
        # Explicit C-contiguous float64 buffers, filled with one fancy
        # assignment over the flattened (row, column) coordinates: one
        # numpy dispatch for the whole family instead of two per page.
        # Values are assigned, never accumulated, so the bits match the
        # per-row fill exactly.
        self.values = np.zeros((n, len(self.index)), dtype=np.float64,
                               order="C")
        self.presence = np.zeros((n, len(self.index)), dtype=bool, order="C")
        total = sum(len(vector) for vector in vectors)
        if total:
            rows = np.empty(total, dtype=np.intp)
            columns = np.empty(total, dtype=np.intp)
            entries = np.empty(total, dtype=np.float64)
            cursor = 0
            for row, vector in enumerate(vectors):
                for key, value in vector.items():
                    rows[cursor] = row
                    columns[cursor] = self.index[key]
                    entries[cursor] = value
                    cursor += 1
            self.values[rows, columns] = entries
            self.presence[rows, columns] = True
        self.nnz = np.asarray([len(vector) for vector in vectors],
                              dtype=np.int64)
        self.sums = np.asarray([sum(vector.values()) for vector in vectors],
                               dtype=float)
        self.norms = np.asarray([norm(vector) for vector in vectors],
                                dtype=float)
        self.squared_norms = np.asarray(
            [norm_squared(vector) for vector in vectors], dtype=float)
        if approx:
            self._to_approx(arena)

    @classmethod
    def from_plane(cls, counts: np.ndarray, cols: np.ndarray,
                   entries: np.ndarray, n_columns: int,
                   approx: bool = False,
                   arena: "PlaneArena | None" = None) -> "_VectorFamily":
        """Build the family from a shard's CSR views, no dicts touched.

        ``n_columns`` is the plane's full-block vocabulary width.  Under
        a mask this can be wider than the dict path's selected-page
        vocabulary, but only by columns that are zero on every selected
        row — exact no-op fold steps for every kernel (the hapax filter
        in :func:`_pair_dot_fold` even drops them before folding), so
        scores stay bit-identical.
        """
        family = cls.__new__(cls)
        family.vectors = None
        family.index = None
        n = len(counts)
        family.values = np.zeros((n, n_columns), dtype=np.float64, order="C")
        family.presence = np.zeros((n, n_columns), dtype=bool, order="C")
        if cols.size:
            rows = np.repeat(np.arange(n, dtype=np.intp), counts)
            family.values[rows, cols] = entries
            family.presence[rows, cols] = True
        family.nnz = counts.astype(np.int64)
        if approx:
            family._to_approx(arena)
            return family
        bounds = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=bounds[1:])
        scalars = entries.tolist()
        sums: list[float] = []
        norms: list[float] = []
        squares: list[float] = []
        for row in range(n):
            chunk = scalars[bounds[row]:bounds[row + 1]]
            # The scalar helpers' folds (sum / norm / norm_squared),
            # replayed over the stored order — the dicts' iteration
            # order — so the broadcast moments keep their exact bits.
            sums.append(sum(chunk))
            square = sum(value * value for value in chunk)
            squares.append(square)
            norms.append(math.sqrt(square))
        family.sums = np.asarray(sums, dtype=float)
        family.norms = np.asarray(norms, dtype=float)
        family.squared_norms = np.asarray(squares, dtype=float)
        return family

    def _to_approx(self, arena: "PlaneArena | None") -> None:
        shape = self.values.shape
        if arena is not None:
            values32 = arena.take(shape, np.float32)
        else:
            values32 = np.zeros(shape, dtype=np.float32)
        np.copyto(values32, self.values, casting="unsafe")
        self.values = values32
        # Moments in float64 over the rounded float32 values: cheap
        # O(n·d) reductions whose error stays ~1e-7 relative, keeping
        # the expensive approximation confined to the O(n²·d) dots.
        self.sums = self.values.sum(axis=1, dtype=np.float64)
        self.squared_norms = (self.values * self.values).sum(
            axis=1, dtype=np.float64)
        self.norms = np.sqrt(self.squared_norms)

    def nonempty_pairs(self) -> np.ndarray:
        """Mask of pairs where both pages carry evidence."""
        nonempty = self.nnz > 0
        return nonempty[:, None] & nonempty[None, :]


class _SetFamily:
    """Indicator matrix for one set-valued page attribute."""

    def __init__(self, sets: list[set]):
        n = len(sets)
        vocab: set = set()
        for members in sets:
            vocab.update(members)
        index = {key: column for column, key in enumerate(sorted(vocab))}
        self.indicator = np.zeros((n, len(index)), dtype=np.int64)
        for row, members in enumerate(sets):
            if members:
                self.indicator[row, [index[key] for key in members]] = 1
        self.sizes = np.asarray([len(members) for members in sets],
                                dtype=np.int64)

    @classmethod
    def from_plane(cls, counts: np.ndarray, cols: np.ndarray,
                   n_columns: int) -> "_SetFamily":
        """Build the indicator from CSR views (set or counter planes —
        a counter's columns are exactly its key set)."""
        family = cls.__new__(cls)
        n = len(counts)
        family.indicator = np.zeros((n, n_columns), dtype=np.int64)
        if cols.size:
            rows = np.repeat(np.arange(n, dtype=np.intp), counts)
            family.indicator[rows, cols] = 1
        family.sizes = counts.astype(np.int64)
        return family


class _CounterFamily:
    """Count matrix for one multiset (Counter) page attribute."""

    def __init__(self, counters: list):
        n = len(counters)
        vocab: set = set()
        for counter in counters:
            vocab.update(counter)
        index = {key: column for column, key in enumerate(sorted(vocab))}
        self.counts = np.zeros((n, len(index)), dtype=np.int64)
        for row, counter in enumerate(counters):
            for key, count in counter.items():
                self.counts[row, index[key]] = count
        self.sizes = np.asarray([len(counter) for counter in counters],
                                dtype=np.int64)
        self.totals = self.counts.sum(axis=1)

    @classmethod
    def from_plane(cls, counts_per_row: np.ndarray, cols: np.ndarray,
                   entries: np.ndarray, n_columns: int) -> "_CounterFamily":
        """Build the count matrix from CSR views (all-integer, exact)."""
        family = cls.__new__(cls)
        n = len(counts_per_row)
        family.counts = np.zeros((n, n_columns), dtype=np.int64)
        if cols.size:
            rows = np.repeat(np.arange(n, dtype=np.intp), counts_per_row)
            family.counts[rows, cols] = entries
        family.sizes = counts_per_row.astype(np.int64)
        family.totals = family.counts.sum(axis=1)
        return family


class PlaneArena:
    """Grow-only scratch buffers for the ``numpy32`` backend's planes.

    The float32 backend trades exactness for speed; re-zeroing a
    preallocated buffer is much cheaper than faulting fresh pages per
    block, so each backend thread keeps one arena and bump-allocates
    every block's dense family planes from it.  ``reset`` (called per
    :class:`BlockState`) recycles the space; growth allocates a bigger
    buffer and strands the old one with whatever views still hold it.
    Not thread-safe by design — the backend keeps one arena per thread.
    """

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}
        self._used: dict[str, int] = {}

    def reset(self) -> None:
        """Recycle all space (outstanding views keep their buffers)."""
        for key in self._used:
            self._used[key] = 0

    def take(self, shape: tuple, dtype) -> np.ndarray:
        """A zeroed C-contiguous view of ``shape`` from the scratch."""
        dtype = np.dtype(dtype)
        key = dtype.str
        need = int(math.prod(shape))
        used = self._used.get(key, 0)
        buffer = self._buffers.get(key)
        if buffer is None or buffer.size < used + need:
            size = max(used + need, 2 * (buffer.size if buffer is not None
                                         else 0))
            buffer = np.empty(size, dtype=dtype)
            self._buffers[key] = buffer
        view = buffer[used:used + need].reshape(shape)
        self._used[key] = used + need
        view[...] = 0
        return view


class BlockState:
    """Lazily materialized matrices shared by every kernel of one block.

    One instance per ``block_scores`` call: the TF-IDF family (and its
    pairwise dot fold) is built once and reused by F8, F9 and F10; the
    concept family by F1 and F14; and so on.

    A candidate-pair ``mask`` gathers the candidate rows — matrices are
    built only over pages that appear in at least one candidate pair —
    and restricts ``pair_weights`` to the masked entries.  Dropping
    non-candidate pages only removes columns that are zero on both
    sides of every surviving pair (exact no-op fold steps), so each
    masked entry's float-operation sequence — and hence its bits — is
    unchanged.  Pair order stays the scalar sweep's row-major order
    restricted to the mask.

    When ``features`` is a :class:`~repro.runtime.planes.
    PlaneFeatureMap` (detected via its ``planes`` attribute), families
    are built straight from the shard's CSR views — no ``PageFeatures``
    is ever materialized on the kernel path, and ``pages`` stays
    untouched unless a scalar fallback asks for it.  Plane-backed and
    dict-backed construction are bit-identical (see
    :meth:`_VectorFamily.from_plane`).

    ``approx32=True`` selects the ``numpy32`` backend's float32 mode:
    vector families downcast to float32 (allocated from ``arena`` when
    given) and pairwise dots go through BLAS instead of the exact fold.
    Integer kernels (F4–F6, F11, F13) and string kernels (F2) remain
    exact; only the float-vector measures are approximate.
    """

    def __init__(self, ids: Sequence[str],
                 features: "dict[str, PageFeatures]",
                 mask: "frozenset[PairKey] | None" = None,
                 approx32: bool = False,
                 arena: PlaneArena | None = None):
        ids = list(ids)
        if mask is not None:
            candidates = {doc_id for pair in mask for doc_id in pair}
            ids = [doc_id for doc_id in ids if doc_id in candidates]
        self.ids = ids
        self.n = len(self.ids)
        self._features = features
        self._pages: list[PageFeatures] | None = None
        self._approx = approx32
        self._arena = arena if approx32 else None
        if self._arena is not None:
            self._arena.reset()
        planes = getattr(features, "planes", None)
        self._rows: list[int] | None = None
        if planes is not None:
            row_of = planes.row_index()
            try:
                self._rows = [row_of[doc_id] for doc_id in self.ids]
            except KeyError:  # pragma: no cover - planes missing a page
                planes = None
        self._planes = planes
        self._vector_families: dict[str, _VectorFamily] = {}
        self._set_families: dict[str, _SetFamily] = {}
        self._counter_families: dict[str, _CounterFamily] = {}
        self._dots: dict[str, np.ndarray] = {}
        if self.n >= 2:
            rows, cols = np.triu_indices(self.n, k=1)
            # Row-major upper triangle == the scalar sweep's pair order
            # (a mask keeps the relative order: candidate rows preserve
            # block order, so the restricted triangles coincide).
            pair_keys: list[PairKey] = [
                pair_key(self.ids[i], self.ids[j])
                for i, j in zip(rows.tolist(), cols.tolist())
            ]
            if mask is not None:
                keep = [index for index, key in enumerate(pair_keys)
                        if key in mask]
                rows, cols = rows[keep], cols[keep]
                pair_keys = [pair_keys[index] for index in keep]
            self._triu = (rows, cols)
            self._pair_keys = pair_keys

    def pair_weights(self, kernel: "Kernel") -> dict[PairKey, float]:
        """One kernel's scores as a canonical pair-ordered weights dict."""
        if self.n < 2:
            return {}
        matrix = kernel.matrix(self)
        return dict(zip(self._pair_keys, matrix[self._triu].tolist()))

    @property
    def pages(self) -> list[PageFeatures]:
        """Materialized pages, built lazily (scalar fallbacks only —
        the plane path never touches this)."""
        if self._pages is None:
            self._pages = [self._features[doc_id] for doc_id in self.ids]
        return self._pages

    def urls(self) -> list[str]:
        """Page URLs in row order, straight from planes when available."""
        if self._planes is not None:
            decoded = self._planes.urls()
            return [decoded[row] for row in self._rows]
        return [page.url for page in self.pages]

    # -- family accessors (built once, shared across kernels) ------------
    #
    # Kernel family names coincide with the plane family names
    # encode_features stores ("concept", "tfidf", "top_tfidf",
    # "concept_set", "organizations", "other_persons", "locations",
    # "entity_context"), so a plane-backed block resolves every built-in
    # family from CSR views and only unknown (custom) families fall back
    # to extracting from materialized pages.

    def _plane_family(self, name: str, kinds: tuple):
        if self._planes is None:
            return None
        family = self._planes.family(name)
        if family is None or family.kind not in kinds:
            return None
        return family

    def vector_family(self, name: str, extract: Callable) -> _VectorFamily:
        family = self._vector_families.get(name)
        if family is None:
            plane = self._plane_family(name, ("vector",))
            if plane is not None:
                counts, cols, entries = plane.select(self._rows)
                family = _VectorFamily.from_plane(
                    counts, cols, entries, plane.n_columns,
                    approx=self._approx, arena=self._arena)
            else:
                family = _VectorFamily(
                    [extract(page) for page in self.pages],
                    approx=self._approx, arena=self._arena)
            self._vector_families[name] = family
        return family

    def set_family(self, name: str, extract: Callable) -> _SetFamily:
        family = self._set_families.get(name)
        if family is None:
            plane = self._plane_family(name, ("set", "counter"))
            if plane is not None:
                counts, cols, _ = plane.select(self._rows)
                family = _SetFamily.from_plane(counts, cols, plane.n_columns)
            else:
                family = _SetFamily([extract(page) for page in self.pages])
            self._set_families[name] = family
        return family

    def counter_family(self, name: str, extract: Callable) -> _CounterFamily:
        family = self._counter_families.get(name)
        if family is None:
            plane = self._plane_family(name, ("counter",))
            if plane is not None:
                counts, cols, entries = plane.select(self._rows)
                family = _CounterFamily.from_plane(counts, cols, entries,
                                                   plane.n_columns)
            else:
                family = _CounterFamily(
                    [extract(page) for page in self.pages])
            self._counter_families[name] = family
        return family

    def pair_dot(self, name: str, extract: Callable) -> np.ndarray:
        """Pairwise dot matrix of one vector family (cached).

        Exact sequential fold by default; the ``numpy32`` mode hands the
        float32 plane to BLAS and widens the result to float64 — the one
        deliberate approximation that backend makes.
        """
        dots = self._dots.get(name)
        if dots is None:
            values = self.vector_family(name, extract).values
            if self._approx:
                dots = (values @ values.T).astype(np.float64)
            else:
                dots = _pair_dot_fold(values)
            self._dots[name] = dots
        return dots


# -- exact folds -----------------------------------------------------------


def _pair_dot_fold(values: np.ndarray) -> np.ndarray:
    """All-pairs dot products via a sequential ascending-column fold.

    Per pair this performs ``acc += v[i, d] * v[j, d]`` for ``d``
    ascending — exactly the scalar ``dot``'s fold over the sorted
    intersection, with implicit zeros as exact no-ops.

    Columns nonzero on at most one page produce a zero product for
    *every* pair — exact no-ops — and are dropped before folding
    (roughly half a real block's TF-IDF vocabulary is hapax terms).
    Dropping them, like folding them, leaves every pair's operation
    sequence unchanged.
    """
    n, dims = values.shape
    acc = np.zeros((n, n))
    if n < 2 or dims == 0:
        return acc
    shared = values[:, (values != 0.0).sum(axis=0) >= 2]
    for start in range(0, shared.shape[1], _CHUNK):
        chunk = np.ascontiguousarray(shared[:, start:start + _CHUNK].T)
        terms = chunk[:, :, None] * chunk[:, None, :]
        for k in range(terms.shape[0]):
            acc += terms[k]
    return acc


def _clamp_unit(matrix: np.ndarray) -> np.ndarray:
    """``min(1.0, max(0.0, x))`` elementwise (NaN passes through to be
    masked by the caller)."""
    return np.minimum(1.0, np.maximum(0.0, matrix))


def _cosine_matrix(state: BlockState, name: str,
                   extract: Callable) -> np.ndarray:
    family = state.vector_family(name, extract)
    dots = state.pair_dot(name, extract)
    denominator = family.norms[:, None] * family.norms[None, :]
    valid = family.nonempty_pairs() & (denominator != 0.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        value = dots / denominator
    return np.where(valid, _clamp_unit(value), 0.0)


def _extended_jaccard_matrix(state: BlockState, name: str,
                             extract: Callable) -> np.ndarray:
    family = state.vector_family(name, extract)
    product = state.pair_dot(name, extract)
    squared = family.squared_norms
    denominator = (squared[:, None] + squared[None, :]) - product
    valid = family.nonempty_pairs() & (denominator > 0.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        value = product / denominator
    return np.where(valid, _clamp_unit(value), 0.0)


def _pearson_matrix(state: BlockState, name: str,
                    extract: Callable) -> np.ndarray:
    """Elementwise mirror of
    :func:`~repro.similarity.measures.pearson_from_moments` over all
    pairs.

    The only fold is the shared pairwise dot; every other moment is a
    per-page scalar broadcast, so each pair evaluates exactly the
    operation sequence of the scalar expression.  The arithmetic below
    must stay operation-for-operation in sync with
    ``pearson_from_moments`` and ``_ovm_pearson`` — edit all three
    together (the parity and golden suites catch any divergence).
    """
    family = state.vector_family(name, extract)
    product = state.pair_dot(name, extract)
    # Float BLAS matmul of the 0/1 indicator is exact: every partial sum
    # is an integer far below 2**53, so no rounding can occur regardless
    # of accumulation order.
    indicator = family.presence.astype(float)
    intersection = indicator @ indicator.T
    nnz = family.nnz.astype(float)
    dimension = (nnz[:, None] + nnz[None, :]) - intersection
    valid = family.nonempty_pairs() & (dimension >= 2)
    # Masked-out pairs flow through with a harmless dimension of 1; their
    # garbage values are discarded by the final mask.
    dimension = np.where(dimension > 0, dimension, 1.0)
    sum_left = family.sums[:, None]
    sum_right = family.sums[None, :]
    squared_left = family.squared_norms[:, None]
    squared_right = family.squared_norms[None, :]
    mean_left = sum_left / dimension
    mean_right = sum_right / dimension
    covariance = ((product - mean_right * sum_left)
                  - mean_left * sum_right) \
        + dimension * (mean_left * mean_right)
    variance_left = ((squared_left - (2.0 * mean_left) * sum_left)
                     + dimension * (mean_left * mean_left))
    variance_right = ((squared_right - (2.0 * mean_right) * sum_right)
                      + dimension * (mean_right * mean_right))
    valid = valid & (variance_left > 0.0) & (variance_right > 0.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        correlation = covariance / (np.sqrt(variance_left)
                                    * np.sqrt(variance_right))
    correlation = np.minimum(1.0, np.maximum(-1.0, correlation))
    return np.where(valid, (correlation + 1.0) / 2.0, 0.0)


def _overlap_matrix(state: BlockState, name: str,
                    extract: Callable) -> np.ndarray:
    family = state.set_family(name, extract)
    intersection = family.indicator @ family.indicator.T
    smaller = np.minimum(family.sizes[:, None], family.sizes[None, :])
    valid = (family.sizes[:, None] > 0) & (family.sizes[None, :] > 0)
    value = intersection / np.where(smaller > 0, smaller, 1)
    return np.where(valid, value, 0.0)


def _weighted_jaccard_matrix(state: BlockState, name: str,
                             extract: Callable) -> np.ndarray:
    family = state.counter_family(name, extract)
    n, vocab = family.counts.shape
    # Chunked over the vocabulary axis to bound the broadcast tensor at
    # O(n² · _CHUNK); integer sums are exact under any grouping, so this
    # is bit-identical to the single-tensor form.
    minima = np.zeros((n, n), dtype=np.int64)
    for start in range(0, vocab, _CHUNK):
        chunk = family.counts[:, start:start + _CHUNK]
        minima += np.minimum(chunk[:, None, :],
                             chunk[None, :, :]).sum(axis=2)
    maxima = (family.totals[:, None] + family.totals[None, :]) - minima
    valid = ((family.sizes[:, None] > 0) & (family.sizes[None, :] > 0)
             & (maxima > 0))
    value = minima / np.where(maxima > 0, maxima, 1)
    return np.where(valid, value, 0.0)


# -- URL similarity (integer edit distances vectorize exactly) -------------
#
# F2 is a string measure, but its expensive part — the path edit
# distance — is an *integer*, so any correct Levenshtein implementation
# is automatically bit-exact; only the final ``0.8·domain + 0.2·path``
# combination touches floats, with identical operands.  Domain scores
# repeat across the block's few distinct domains and are computed once
# with the scalar :func:`~repro.similarity.urls.domain_similarity`
# (exactly the prepared scorer's memo).  The other string measures (F3,
# F7: Jaro–Winkler plus name-form logic) do not vectorize and stay on
# the scalar path.

#: Myers' algorithm below packs one DP column per uint64; longer
#: patterns (never seen for generated URL paths) fall back to the scalar
#: implementation pair by pair.
_MAX_BITPARALLEL_LENGTH = 63


def _pairwise_path_distances(paths: list[str]) -> np.ndarray:
    """Levenshtein distance for every unordered path pair (int64 matrix).

    Batched Myers/Hyyrö bit-parallel: one DP column per pair packed in a
    uint64, all pairs advanced together one text character per step.
    """
    n = len(paths)
    lengths = np.asarray([len(path) for path in paths], dtype=np.int64)
    distances = np.zeros((n, n), dtype=np.int64)
    if n < 2:
        return distances

    rows, cols = np.triu_indices(n, k=1)
    # Pattern = the shorter side (fewer bits), text = the longer.
    swap = lengths[rows] > lengths[cols]
    pattern_idx = np.where(swap, cols, rows)
    text_idx = np.where(swap, rows, cols)
    equal = np.asarray([paths[i] == paths[j]
                        for i, j in zip(rows.tolist(), cols.tolist())])
    pattern_len = lengths[pattern_idx]
    text_len = lengths[text_idx]
    scores = np.where(pattern_len == 0, text_len, 0).astype(np.int64)

    live = (~equal) & (pattern_len > 0) \
        & (pattern_len <= _MAX_BITPARALLEL_LENGTH)
    overlong = (~equal) & (pattern_len > _MAX_BITPARALLEL_LENGTH)
    for pair in np.flatnonzero(overlong).tolist():
        scores[pair] = levenshtein(paths[pattern_idx[pair]],
                                   paths[text_idx[pair]])

    if live.any():
        alphabet = {"": 0}
        for path in paths:
            for char in path:
                alphabet.setdefault(char, len(alphabet))
        max_len = int(lengths.max())
        codes = np.zeros((n, max_len), dtype=np.int64)
        for row, path in enumerate(paths):
            codes[row, :len(path)] = [alphabet[char] for char in path]
        bitmaps = np.zeros((n, len(alphabet)), dtype=np.uint64)
        for row, path in enumerate(paths):
            bit = np.uint64(1)
            for char in path:
                bitmaps[row, alphabet[char]] |= bit
                bit = np.uint64(bit << np.uint64(1))

        p_idx = pattern_idx[live]
        t_idx = text_idx[live]
        p_len = pattern_len[live]
        t_len = text_len[live]
        one = np.uint64(1)
        mask = (one << p_len.astype(np.uint64)) - one
        high = one << (p_len.astype(np.uint64) - one)
        vp = mask.copy()
        vn = np.zeros(len(p_idx), dtype=np.uint64)
        score = p_len.copy()
        page_bitmaps = bitmaps[p_idx]
        for step in range(int(t_len.max())):
            active = step < t_len
            matches = page_bitmaps[np.arange(len(p_idx)),
                                   codes[t_idx, step]]
            diagonal_zero = ((((matches & vp) + vp) & mask) ^ vp) \
                | matches | vn
            horizontal_positive = (vn | ~(diagonal_zero | vp)) & mask
            horizontal_negative = vp & diagonal_zero
            gained = (horizontal_positive & high) != 0
            lost = ((horizontal_negative & high) != 0) & ~gained
            score = score + np.where(active & gained, 1, 0) \
                - np.where(active & lost, 1, 0)
            shifted_positive = ((horizontal_positive << one) | one) & mask
            shifted_negative = (horizontal_negative << one) & mask
            new_vp = (shifted_negative
                      | ~(diagonal_zero | shifted_positive)) & mask
            new_vn = shifted_positive & diagonal_zero
            vp = np.where(active, new_vp, vp)
            vn = np.where(active, new_vn, vn)
        scores[live] = score

    distances[rows, cols] = scores
    distances[cols, rows] = scores
    return distances


def _url_matrix(state: BlockState) -> np.ndarray:
    parsed = [parse_url(url) if url else None for url in state.urls()]
    domains = [entry.domain if entry is not None else "" for entry in parsed]
    paths = [entry.path if entry is not None else "" for entry in parsed]

    distinct = {domain: index
                for index, domain in enumerate(dict.fromkeys(domains))}
    table = np.zeros((len(distinct), len(distinct)))
    for left, i in distinct.items():
        for right, j in distinct.items():
            if j < i:
                continue
            table[i, j] = table[j, i] = domain_similarity(left, right)
    ids = np.asarray([distinct[domain] for domain in domains], dtype=np.int64)
    domain_scores = table[ids[:, None], ids[None, :]]

    path_lengths = np.asarray([len(path) for path in paths], dtype=np.int64)
    longest = np.maximum(path_lengths[:, None], path_lengths[None, :])
    distances = _pairwise_path_distances(paths)
    with np.errstate(divide="ignore", invalid="ignore"):
        path_scores = 1.0 - distances / np.where(longest > 0, longest, 1)
    path_scores = np.where(longest > 0, path_scores, 1.0)

    value = 0.8 * domain_scores + (1.0 - 0.8) * path_scores
    has_url = np.asarray([entry is not None for entry in parsed])
    return np.where(has_url[:, None] & has_url[None, :], value, 0.0)


# -- one-vs-many folds (the incremental request path) ----------------------


def _gather_matrix(vectors: list[dict[str, float]]):
    """Column index + dense matrix over a small page set's vocabulary."""
    index: dict[str, int] = {}
    for vector in vectors:
        for key in vector:
            index.setdefault(key, len(index))
    values = np.zeros((len(vectors), len(index)))
    for row, vector in enumerate(vectors):
        if vector:
            values[row, [index[key] for key in vector]] = \
                list(vector.values())
    return index, values


def _one_vs_many_dot(new_vector: dict[str, float],
                     vectors: list[dict[str, float]]):
    """Exact dots of one sparse vector against many (ascending-key fold)."""
    index, values = _gather_matrix(vectors)
    acc = np.zeros(len(vectors))
    for key, value in sorted(new_vector.items()):
        column = index.get(key)
        if column is not None:
            acc += value * values[:, column]
    return acc


def _finalize_scalars(valid: np.ndarray, value: np.ndarray) -> list[float]:
    return np.where(valid, value, 0.0).tolist()


def _ovm_cosine(extract: Callable):
    def score(new: PageFeatures, others: Sequence[PageFeatures]):
        new_vector = extract(new)
        vectors = [extract(other) for other in others]
        dots = _one_vs_many_dot(new_vector, vectors)
        norms = np.asarray([norm(vector) for vector in vectors], dtype=float)
        denominator = norm(new_vector) * norms
        valid = (bool(new_vector)
                 & np.asarray([bool(vector) for vector in vectors])
                 & (denominator != 0.0))
        with np.errstate(divide="ignore", invalid="ignore"):
            value = dots / denominator
        return _finalize_scalars(valid, _clamp_unit(value))
    return score


def _ovm_extended_jaccard(extract: Callable):
    def score(new: PageFeatures, others: Sequence[PageFeatures]):
        new_vector = extract(new)
        vectors = [extract(other) for other in others]
        product = _one_vs_many_dot(new_vector, vectors)
        squared = np.asarray([norm_squared(vector) for vector in vectors],
                             dtype=float)
        denominator = (norm_squared(new_vector) + squared) - product
        valid = (bool(new_vector)
                 & np.asarray([bool(vector) for vector in vectors])
                 & (denominator > 0.0))
        with np.errstate(divide="ignore", invalid="ignore"):
            value = product / denominator
        return _finalize_scalars(valid, _clamp_unit(value))
    return score


def _ovm_pearson(extract: Callable):
    # One-vs-many mirror of pearson_from_moments — the arithmetic must
    # stay operation-for-operation in sync with it and _pearson_matrix;
    # edit all three together (parity/golden suites enforce it).
    def score(new: PageFeatures, others: Sequence[PageFeatures]):
        new_vector = extract(new)
        vectors = [extract(other) for other in others]
        product = _one_vs_many_dot(new_vector, vectors)
        new_keys = set(new_vector)
        key_sets = [set(vector) for vector in vectors]
        dimension = np.asarray(
            [len(new_keys) + len(keys) - len(new_keys & keys)
             for keys in key_sets], dtype=np.int64)
        valid = (bool(new_vector)
                 & np.asarray([bool(vector) for vector in vectors])
                 & (dimension >= 2))
        dimension = np.where(dimension > 0, dimension, 1)
        sum_left = sum(new_vector.values())
        sum_right = np.asarray([sum(vector.values()) for vector in vectors],
                               dtype=float)
        squared_left = norm_squared(new_vector)
        squared_right = np.asarray(
            [norm_squared(vector) for vector in vectors], dtype=float)
        mean_left = sum_left / dimension
        mean_right = sum_right / dimension
        covariance = ((product - mean_right * sum_left)
                      - mean_left * sum_right) \
            + dimension * (mean_left * mean_right)
        variance_left = ((squared_left - (2.0 * mean_left) * sum_left)
                         + dimension * (mean_left * mean_left))
        variance_right = ((squared_right - (2.0 * mean_right) * sum_right)
                          + dimension * (mean_right * mean_right))
        valid = valid & (variance_left > 0.0) & (variance_right > 0.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            correlation = covariance / (np.sqrt(variance_left)
                                        * np.sqrt(variance_right))
        correlation = np.minimum(1.0, np.maximum(-1.0, correlation))
        return _finalize_scalars(valid, (correlation + 1.0) / 2.0)
    return score


def _ovm_overlap(extract: Callable):
    def score(new: PageFeatures, others: Sequence[PageFeatures]):
        new_set = extract(new)
        sets = [extract(other) for other in others]
        intersection = np.asarray(
            [len(new_set & members) for members in sets], dtype=np.int64)
        sizes = np.asarray([len(members) for members in sets],
                           dtype=np.int64)
        smaller = np.minimum(len(new_set), sizes)
        valid = (len(new_set) > 0) & (sizes > 0)
        value = intersection / np.where(smaller > 0, smaller, 1)
        return _finalize_scalars(valid, value)
    return score


def _ovm_weighted_jaccard(extract: Callable):
    def score(new: PageFeatures, others: Sequence[PageFeatures]):
        new_counter = extract(new)
        counters = [extract(other) for other in others]
        minima = np.asarray(
            [sum(min(count, counter[key])
                 for key, count in new_counter.items())
             for counter in counters], dtype=np.int64)
        totals = np.asarray(
            [sum(counter.values()) for counter in counters], dtype=np.int64)
        maxima = (sum(new_counter.values()) + totals) - minima
        valid = ((len(new_counter) > 0)
                 & np.asarray([len(counter) > 0 for counter in counters])
                 & (maxima > 0))
        value = minima / np.where(maxima > 0, maxima, 1)
        return _finalize_scalars(valid, value)
    return score


# -- kernel dispatch -------------------------------------------------------


@dataclass(frozen=True)
class Kernel:
    """One similarity function's vectorized implementation.

    Attributes:
        name: the built-in function name this kernel implements.
        expected_scorer: identity of the built-in scalar scorer; a
            function carrying any other scorer (registry override) gets
            no kernel.
        matrix: full-block kernel ``(BlockState) -> (n, n) ndarray``.
        one_vs_many: optional request-path kernel
            ``(new, others) -> list[float]``; ``None`` falls back to the
            scalar scorer.
    """

    name: str
    expected_scorer: Callable
    matrix: Callable[[BlockState], np.ndarray]
    one_vs_many: Callable | None = None


def _tfidf(page: PageFeatures) -> dict[str, float]:
    return page.tfidf


def _concepts(page: PageFeatures) -> dict[str, float]:
    return page.concept_vector


def _top_tfidf(page: PageFeatures) -> dict[str, float]:
    return _extended._top_terms(page.tfidf)


def _vector_kernel(builder, family: str, extract: Callable):
    return lambda state: builder(state, family, extract)


def _set_kernel(family: str, extract: Callable):
    return lambda state: _overlap_matrix(state, family, extract)


_KERNELS: dict[str, Kernel] = {}


def _register(name: str, expected_scorer: Callable, matrix: Callable,
              one_vs_many: Callable | None = None) -> None:
    _KERNELS[name] = Kernel(name=name, expected_scorer=expected_scorer,
                            matrix=matrix, one_vs_many=one_vs_many)


_register("F1", _base._f1,
          _vector_kernel(_cosine_matrix, "concept", _concepts),
          _ovm_cosine(_concepts))
_register("F2", _base._f2, _url_matrix)
_register("F4", _base._f4,
          _set_kernel("concept_set", lambda page: set(page.concept_set)),
          _ovm_overlap(lambda page: set(page.concept_set)))
_register("F5", _base._f5,
          _set_kernel("organizations", lambda page: set(page.organizations)),
          _ovm_overlap(lambda page: set(page.organizations)))
_register("F6", _base._f6,
          _set_kernel("other_persons", lambda page: set(page.other_persons)),
          _ovm_overlap(lambda page: set(page.other_persons)))
_register("F8", _base._f8,
          _vector_kernel(_cosine_matrix, "tfidf", _tfidf),
          _ovm_cosine(_tfidf))
_register("F9", _base._f9,
          _vector_kernel(_pearson_matrix, "tfidf", _tfidf),
          _ovm_pearson(_tfidf))
_register("F10", _base._f10,
          _vector_kernel(_extended_jaccard_matrix, "tfidf", _tfidf),
          _ovm_extended_jaccard(_tfidf))
_register("F11", _extended._f11,
          _set_kernel("locations", lambda page: set(page.locations)),
          _ovm_overlap(lambda page: set(page.locations)))
_register("F12", _extended._f12,
          _vector_kernel(_cosine_matrix, "top_tfidf", _top_tfidf),
          _ovm_cosine(_top_tfidf))
_register("F13", _extended._f13,
          _vector_kernel(_weighted_jaccard_matrix, "entity_context",
                         _extended._entity_context),
          _ovm_weighted_jaccard(_extended._entity_context))
_register("F14", _extended._f14,
          _vector_kernel(_extended_jaccard_matrix, "concept", _concepts),
          _ovm_extended_jaccard(_concepts))


def kernel_for(function) -> Kernel | None:
    """The vectorized kernel for ``function``, or ``None``.

    ``None`` means "use the scalar path": string measures, custom
    functions, and built-in names whose scorer was replaced in the
    registry.
    """
    kernel = _KERNELS.get(function.name)
    if kernel is not None and function.scorer is kernel.expected_scorer:
        return kernel
    return None
