"""String similarity measures.

Used by F2 (URLs), F3 (most frequent name) and F7 (name closest to the
search keyword).  All functions are pure and symmetric, returning values
in [0, 1] with 1.0 for identical strings.
"""

from __future__ import annotations


def levenshtein(left: str, right: str) -> int:
    """Edit distance with unit insert/delete/substitute costs.

    This is the pipeline's hottest comparison (URL paths and domains for
    F2), so two exact optimizations apply — both provably
    distance-preserving, and checked against the reference dynamic
    program by ``tests/properties/test_string_properties.py``:

    * a shared prefix or suffix never participates in an optimal edit
      script under unit costs and is stripped first (URLs share schemes,
      domains and file extensions);
    * the remainder runs Myers' bit-parallel algorithm
      (:func:`_bitparallel_distance`) — O(n) big-integer column updates
      instead of the O(m·n) cell-by-cell table.
    """
    if left == right:
        return 0
    # Strip the common prefix and suffix; the distance is unchanged.
    limit = min(len(left), len(right))
    start = 0
    while start < limit and left[start] == right[start]:
        start += 1
    end_left, end_right = len(left), len(right)
    while end_left > start and end_right > start \
            and left[end_left - 1] == right[end_right - 1]:
        end_left -= 1
        end_right -= 1
    left = left[start:end_left]
    right = right[start:end_right]
    if not left:
        return len(right)
    if not right:
        return len(left)
    if len(left) > len(right):
        left, right = right, left
    return _bitparallel_distance(left, right)


def _bitparallel_distance(pattern: str, text: str) -> int:
    """Myers' bit-parallel Levenshtein distance (Hyyrö's formulation).

    Encodes one column of the classic DP table as two bit vectors
    (positive/negative deltas between adjacent cells) and advances a
    whole column per text character with word operations.  Python
    integers are arbitrary-width, so any pattern length works; all
    vectors are masked to ``len(pattern)`` bits to emulate a fixed word.

    Both arguments must be non-empty.  Exactly equivalent to the
    reference DP (:func:`_reference_distance`).
    """
    length = len(pattern)
    positions: dict[str, int] = {}
    bit = 1
    for char in pattern:
        positions[char] = positions.get(char, 0) | bit
        bit <<= 1
    mask = (1 << length) - 1
    high = 1 << (length - 1)
    vertical_positive = mask
    vertical_negative = 0
    score = length
    get_positions = positions.get
    for char in text:
        matches = get_positions(char, 0)
        diagonal_zero = ((((matches & vertical_positive) + vertical_positive)
                          & mask)
                         ^ vertical_positive) | matches | vertical_negative
        horizontal_positive = (
            vertical_negative | ~(diagonal_zero | vertical_positive)) & mask
        horizontal_negative = vertical_positive & diagonal_zero
        if horizontal_positive & high:
            score += 1
        elif horizontal_negative & high:
            score -= 1
        shifted_positive = ((horizontal_positive << 1) | 1) & mask
        shifted_negative = (horizontal_negative << 1) & mask
        vertical_positive = (
            shifted_negative | ~(diagonal_zero | shifted_positive)) & mask
        vertical_negative = shifted_positive & diagonal_zero
    return score


def _reference_distance(left: str, right: str) -> int:
    """The classic O(m·n) dynamic program — the spec the fast paths must
    match; kept for the property tests."""
    if not left:
        return len(right)
    if not right:
        return len(left)
    previous = list(range(len(left) + 1))
    for row, char_right in enumerate(right, start=1):
        current = [row]
        for col, char_left in enumerate(left, start=1):
            substitution = previous[col - 1] + (char_left != char_right)
            current.append(min(previous[col] + 1, current[col - 1] + 1,
                               substitution))
        previous = current
    return previous[-1]


def normalized_edit_similarity(left: str, right: str) -> float:
    """``1 − levenshtein / max_length``; 1.0 for two empty strings."""
    longest = max(len(left), len(right))
    if longest == 0:
        return 1.0
    return 1.0 - levenshtein(left, right) / longest


def jaro(left: str, right: str) -> float:
    """Jaro similarity (match window ``max(m,n)//2 − 1``)."""
    if left == right:
        return 1.0
    len_left, len_right = len(left), len(right)
    if len_left == 0 or len_right == 0:
        return 0.0
    window = max(len_left, len_right) // 2 - 1
    window = max(window, 0)

    left_matches = [False] * len_left
    right_matches = [False] * len_right
    matches = 0
    for i, char in enumerate(left):
        start = max(0, i - window)
        end = min(i + window + 1, len_right)
        for j in range(start, end):
            if right_matches[j] or right[j] != char:
                continue
            left_matches[i] = True
            right_matches[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0

    transpositions = 0
    j = 0
    for i in range(len_left):
        if not left_matches[i]:
            continue
        while not right_matches[j]:
            j += 1
        if left[i] != right[j]:
            transpositions += 1
        j += 1
    transpositions //= 2

    return (
        matches / len_left
        + matches / len_right
        + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler(left: str, right: str, prefix_scale: float = 0.1,
                 max_prefix: int = 4) -> float:
    """Jaro–Winkler similarity: Jaro boosted by the common prefix.

    Args:
        prefix_scale: boost per shared prefix character (Winkler's 0.1).
        max_prefix: prefix length cap (Winkler's 4).
    """
    base = jaro(left, right)
    prefix = 0
    for char_left, char_right in zip(left, right):
        if char_left != char_right or prefix >= max_prefix:
            break
        prefix += 1
    return base + prefix * prefix_scale * (1.0 - base)


def name_similarity(left: str, right: str) -> float:
    """Similarity of two person-name surface forms.

    Compares case-insensitively with Jaro–Winkler, but first gives full
    credit when one form is a sub-form of the other (``"Cohen"`` vs
    ``"J. Cohen"`` vs ``"John Cohen"``), which plain string measures
    under-score.  Returns 0.0 when either side is empty (no extracted
    name — missing information).
    """
    if not left or not right:
        return 0.0
    left_lower = left.lower()
    right_lower = right.lower()
    if left_lower == right_lower:
        return 1.0
    left_parts = _name_parts(left_lower)
    right_parts = _name_parts(right_lower)
    if left_parts["last"] == right_parts["last"]:
        first_left, first_right = left_parts["first"], right_parts["first"]
        if not first_left or not first_right:
            return 0.9  # bare surname vs fuller form: compatible
        if first_left == first_right:
            return 1.0
        if first_left[0] == first_right[0] and (
                len(first_left) == 1 or len(first_right) == 1):
            return 0.95  # initial matches the given name
        return 0.4  # same surname, conflicting given names
    return jaro_winkler(left_lower, right_lower)


def _name_parts(name: str) -> dict[str, str]:
    """Split a lowercased name surface into first/last components."""
    tokens = [token.rstrip(".") for token in name.split()]
    if len(tokens) == 1:
        return {"first": "", "last": tokens[0]}
    return {"first": tokens[0], "last": tokens[-1]}
