"""The decision multigraph used for combining similarity functions.

§IV-B of the paper: the individual decision graphs ``G_Dj`` are first
stacked into a multigraph whose parallel edges between two pages come from
the individual graphs, each weighted by its source's accuracy estimation
(interpreted as a link probability).  A weighted average per pair then
yields combined link probabilities.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.graph.entity_graph import DecisionGraph, PairKey, WeightedPairGraph


@dataclass
class DecisionMultiGraph:
    """Parallel decision edges from multiple (function, criterion) graphs.

    Attributes:
        nodes: the block's page ids.
        layers: (source label, decision graph, per-edge link probabilities)
            triples.  Probabilities map each pair of the layer's graph to
            the accuracy estimate backing that edge; pairs *without* an
            edge in the layer may also carry a probability (the estimated
            probability that the pair is a link despite the negative
            decision), which the weighted combiner uses as negative
            evidence.
    """

    nodes: list[str]
    layers: list[tuple[str, DecisionGraph, dict[PairKey, float]]] = field(
        default_factory=list)

    def add_layer(self, label: str, graph: DecisionGraph,
                  probabilities: dict[PairKey, float]) -> None:
        """Stack one decision graph with its per-pair link probabilities.

        Raises:
            ValueError: if the layer's node set differs from the multigraph's.
        """
        if set(graph.nodes) != set(self.nodes):
            raise ValueError(f"layer {label!r} has mismatching nodes")
        self.layers.append((label, graph, probabilities))

    def n_layers(self) -> int:
        return len(self.layers)

    def edge_multiplicity(self, pair: PairKey) -> int:
        """How many layers assert this pair as a link."""
        return sum(1 for _, graph, _ in self.layers if pair in graph.edges)

    def pair_probabilities(self, pair: PairKey) -> Iterator[tuple[str, float]]:
        """(layer label, link probability) for every layer knowing the pair."""
        for label, _, probabilities in self.layers:
            if pair in probabilities:
                yield label, probabilities[pair]

    def all_pairs(self) -> set[PairKey]:
        """Union of pairs known to any layer."""
        pairs: set[PairKey] = set()
        for _, graph, probabilities in self.layers:
            pairs.update(graph.edges)
            pairs.update(probabilities)
        return pairs

    def averaged(self) -> WeightedPairGraph:
        """Plain (unweighted-average) combined link-probability graph.

        Every pair's probability is the mean of the layer probabilities
        that mention it.  The weighted combiner in
        :mod:`repro.core.combination` implements the accuracy-weighted
        variant; this method is the simple baseline.
        """
        combined = WeightedPairGraph(nodes=list(self.nodes))
        for pair in self.all_pairs():
            values = [probability for _, probability in self.pair_probabilities(pair)]
            if values:
                combined.weights[pair] = sum(values) / len(values)
        return combined
