"""Weighted pair graphs and decision graphs over web pages.

``WeightedPairGraph`` is the paper's complete weighted graph ``G_w^fi``:
every unordered page pair carries the similarity value reported by one
function.  ``DecisionGraph`` is an unweighted graph ``G_Dj`` whose edges
assert "same person" after a decision criterion has been applied.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

PairKey = tuple[str, str]


def pair_key(left: str, right: str) -> PairKey:
    """Canonical unordered pair key (lexicographically sorted).

    Raises:
        ValueError: for self-pairs; the entity graph has no self-loops.
    """
    if left == right:
        raise ValueError(f"self-pair not allowed: {left!r}")
    return (left, right) if left < right else (right, left)


@dataclass
class WeightedPairGraph:
    """Complete weighted graph over one block's pages.

    Attributes:
        nodes: page ids in block order.
        weights: similarity value per canonical pair key.  A *complete*
            graph stores every pair; sparse instances are permitted (e.g.
            after blocking) and missing pairs read as 0.0.
    """

    nodes: list[str]
    weights: dict[PairKey, float] = field(default_factory=dict)

    @classmethod
    def from_scores(cls, nodes: Iterable[str],
                    scores: dict[PairKey, float]) -> "WeightedPairGraph":
        """Build from precomputed scores (keys must be canonical)."""
        return cls(nodes=list(nodes), weights=dict(scores))

    def weight(self, left: str, right: str) -> float:
        """Similarity of a pair (0.0 when absent)."""
        return self.weights.get(pair_key(left, right), 0.0)

    def set_weight(self, left: str, right: str, value: float) -> None:
        """Record a pair similarity."""
        self.weights[pair_key(left, right)] = value

    def pairs(self) -> Iterator[tuple[PairKey, float]]:
        """All stored (pair, weight) items."""
        return iter(self.weights.items())

    def n_pairs(self) -> int:
        return len(self.weights)

    def values(self) -> list[float]:
        """All similarity values (for region fitting and diagnostics)."""
        return list(self.weights.values())

    def is_complete(self) -> bool:
        """True when every unordered node pair has a stored weight."""
        n_nodes = len(self.nodes)
        return len(self.weights) == n_nodes * (n_nodes - 1) // 2


@dataclass
class DecisionGraph:
    """Unweighted same-person decision graph ``G_Dj`` over one block."""

    nodes: list[str]
    edges: set[PairKey] = field(default_factory=set)

    @classmethod
    def from_pairs(cls, nodes: Iterable[str],
                   pairs: Iterable[PairKey]) -> "DecisionGraph":
        """Build from an iterable of canonical pair keys."""
        return cls(nodes=list(nodes), edges=set(pairs))

    def has_edge(self, left: str, right: str) -> bool:
        return pair_key(left, right) in self.edges

    def add_edge(self, left: str, right: str) -> None:
        self.edges.add(pair_key(left, right))

    def remove_edge(self, left: str, right: str) -> None:
        self.edges.discard(pair_key(left, right))

    def n_edges(self) -> int:
        return len(self.edges)

    def degree(self, node: str) -> int:
        """Number of decision edges incident to ``node``."""
        return sum(1 for pair in self.edges if node in pair)

    def neighbors(self, node: str) -> set[str]:
        """Nodes directly linked to ``node``."""
        found = set()
        for left, right in self.edges:
            if left == node:
                found.add(right)
            elif right == node:
                found.add(left)
        return found

    def adjacency(self) -> dict[str, set[str]]:
        """Full adjacency map (nodes with no edges map to empty sets)."""
        adjacency: dict[str, set[str]] = {node: set() for node in self.nodes}
        for left, right in self.edges:
            adjacency[left].add(right)
            adjacency[right].add(left)
        return adjacency
