"""Star clustering for entity resolution.

The paper's conclusion notes that "none of the [clustering] methods is
fully compliant with the objectives of entity resolution in the Web
context"; star clustering (Aslam, Pelekhov & Rus) is the classic
alternative used by several WePS systems.  It covers the similarity graph
with star-shaped subgraphs: repeatedly pick the highest-degree unassigned
node as a star center and absorb its unassigned neighbors as satellites.

Compared to transitive closure, star clustering does not chain: two pages
are only grouped when both are similar to a common center, which bounds
the damage of isolated false-positive edges.
"""

from __future__ import annotations

from repro.graph.entity_graph import DecisionGraph, WeightedPairGraph, pair_key


def star_cluster(graph: DecisionGraph,
                 weights: WeightedPairGraph | None = None) -> list[set[str]]:
    """Cluster a decision graph with (offline) star clustering.

    Args:
        graph: the combined decision graph (edges = "same person" votes).
        weights: optional link probabilities; when given, star centers are
            chosen by weighted degree, which prefers confident hubs.

    Returns:
        The entity partition; unassigned isolated pages become singletons.
    """
    adjacency = graph.adjacency()

    def degree(node: str) -> float:
        if weights is None:
            return float(len(adjacency[node]))
        return sum(weights.weights.get(pair_key(node, other), 0.0)
                   for other in adjacency[node])

    # Sort once by (degree, node) descending; the greedy cover scans this
    # order and skips already-assigned nodes, which is equivalent to
    # repeatedly extracting the max-degree unassigned node.
    order = sorted(graph.nodes, key=lambda node: (-degree(node), node))

    assigned: set[str] = set()
    clusters: list[set[str]] = []
    for center in order:
        if center in assigned:
            continue
        satellites = {node for node in adjacency[center]
                      if node not in assigned}
        cluster = {center} | satellites
        assigned.update(cluster)
        clusters.append(cluster)
    return clusters
