"""Entity-graph substrate.

The paper represents the resolution state as graphs over web pages: the
complete weighted graph ``G_w^fi`` per similarity function, the decision
graphs ``G_Dj`` after applying a decision criterion, the combined graph,
and finally a clustering obtained by transitive closure or correlation
clustering.  This package implements those graph types and algorithms.
"""

from repro.graph.entity_graph import (
    DecisionGraph,
    WeightedPairGraph,
    pair_key,
)
from repro.graph.components import UnionFind, connected_components
from repro.graph.star import star_cluster
from repro.graph.transitive import transitive_closure_clusters
from repro.graph.correlation import correlation_cluster
from repro.graph.multigraph import DecisionMultiGraph
from repro.graph.validation import (
    is_partition,
    is_union_of_cliques,
    missing_clique_edges,
)

__all__ = [
    "pair_key",
    "WeightedPairGraph",
    "DecisionGraph",
    "UnionFind",
    "connected_components",
    "transitive_closure_clusters",
    "star_cluster",
    "correlation_cluster",
    "DecisionMultiGraph",
    "is_partition",
    "is_union_of_cliques",
    "missing_clique_edges",
]
