"""Transitive-closure clustering (the paper's deployed clusterer).

Similarity functions are not transitive, but the target equivalence
relation is; the paper's implementation resolves the tension by taking the
transitive closure of the combined decision graph — i.e. the connected
components become the entity clusters.
"""

from __future__ import annotations

from repro.graph.components import connected_components
from repro.graph.entity_graph import DecisionGraph


def transitive_closure_clusters(graph: DecisionGraph) -> list[set[str]]:
    """Cluster a decision graph by transitive closure.

    Returns the connected components as the entity partition; pages with
    no decision edges become singleton entities.
    """
    return connected_components(graph.nodes, graph.edges)
