"""Structural checks on entity graphs and partitions.

§II of the paper: a *correct* entity graph is a union of pairwise disjoint
cliques (transitivity of the equivalence relation).  These helpers verify
that property and quantify how far a decision graph is from it — useful
both as test invariants and as diagnostics on intermediate graphs.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.graph.components import connected_components
from repro.graph.entity_graph import DecisionGraph, pair_key


def is_partition(clusters: list[set[str]], nodes: Iterable[str]) -> bool:
    """True when ``clusters`` partition exactly the ``nodes`` universe."""
    node_set = set(nodes)
    seen: set[str] = set()
    for cluster in clusters:
        if not cluster:
            return False
        if cluster & seen:
            return False
        seen.update(cluster)
    return seen == node_set


def is_union_of_cliques(graph: DecisionGraph) -> bool:
    """True when every connected component of ``graph`` is a clique."""
    return not missing_clique_edges(graph)


def missing_clique_edges(graph: DecisionGraph) -> set[tuple[str, str]]:
    """Edges that transitivity implies but the graph lacks.

    Empty result means the graph already *is* a union of cliques, i.e. a
    legal entity graph.
    """
    missing: set[tuple[str, str]] = set()
    for component in connected_components(graph.nodes, graph.edges):
        members = sorted(component)
        for i, left in enumerate(members):
            for right in members[i + 1:]:
                key = pair_key(left, right)
                if key not in graph.edges:
                    missing.add(key)
    return missing


def graph_from_clusters(nodes: Iterable[str],
                        clusters: list[set[str]]) -> DecisionGraph:
    """The (clique-union) decision graph induced by a partition."""
    graph = DecisionGraph(nodes=list(nodes))
    for cluster in clusters:
        members = sorted(cluster)
        for i, left in enumerate(members):
            for right in members[i + 1:]:
                graph.edges.add(pair_key(left, right))
    return graph
