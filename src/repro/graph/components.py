"""Union-find and connected components."""

from __future__ import annotations

from collections.abc import Hashable, Iterable


class UnionFind:
    """Disjoint-set forest with path compression and union by size."""

    def __init__(self, items: Iterable[Hashable] = ()):
        self._parent: dict[Hashable, Hashable] = {}
        self._size: dict[Hashable, int] = {}
        for item in items:
            self.add(item)

    def add(self, item: Hashable) -> None:
        """Register ``item`` as a singleton if unseen."""
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1

    def find(self, item: Hashable) -> Hashable:
        """Representative of ``item``'s set (registers unseen items)."""
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:  # path compression
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, left: Hashable, right: Hashable) -> bool:
        """Merge the two sets; returns True if a merge happened."""
        root_left = self.find(left)
        root_right = self.find(right)
        if root_left == root_right:
            return False
        if self._size[root_left] < self._size[root_right]:
            root_left, root_right = root_right, root_left
        self._parent[root_right] = root_left
        self._size[root_left] += self._size[root_right]
        return True

    def connected(self, left: Hashable, right: Hashable) -> bool:
        return self.find(left) == self.find(right)

    def groups(self) -> list[set[Hashable]]:
        """All disjoint sets, as a list of item sets."""
        by_root: dict[Hashable, set[Hashable]] = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), set()).add(item)
        return list(by_root.values())

    def __len__(self) -> int:
        return len(self._parent)


def connected_components(nodes: Iterable[Hashable],
                         edges: Iterable[tuple[Hashable, Hashable]]) -> list[set[Hashable]]:
    """Connected components of an undirected graph.

    Isolated nodes become singleton components.
    """
    forest = UnionFind(nodes)
    for left, right in edges:
        forest.union(left, right)
    return forest.groups()
