"""Correlation clustering (Bansal, Blum & Chawla) for entity resolution.

The paper lists correlation clustering as an alternative to transitive
closure (§IV-C).  We implement the standard practical pipeline: the
CC-Pivot randomized algorithm (Ailon et al.) for a constant-factor initial
solution, followed by best-move local search.

Pair weights are link probabilities in [0, 1]; the agreement weight of a
pair is ``p − 0.5`` and the objective is to maximize the total agreement of
intra-cluster pairs minus the agreement of cut pairs with positive weight —
equivalently, minimize disagreements.
"""

from __future__ import annotations

import random

from repro.graph.entity_graph import WeightedPairGraph, pair_key


def correlation_cluster(
    graph: WeightedPairGraph,
    seed: int = 0,
    max_rounds: int = 20,
) -> list[set[str]]:
    """Cluster pages by correlation clustering over link probabilities.

    Args:
        graph: pair graph whose weights are link probabilities in [0, 1];
            missing pairs read as probability 0 (strong negative evidence).
        seed: RNG seed for the pivot order.
        max_rounds: local-search sweep budget.

    Returns:
        The entity partition as a list of page-id sets.
    """
    nodes = list(graph.nodes)
    if not nodes:
        return []
    agreement = {pair: probability - 0.5 for pair, probability in graph.pairs()}
    rng = random.Random(seed)

    assignment = _pivot(nodes, agreement, rng)
    assignment = _local_search(nodes, agreement, assignment, max_rounds)

    clusters: dict[int, set[str]] = {}
    for node, label in assignment.items():
        clusters.setdefault(label, set()).add(node)
    return list(clusters.values())


def objective(graph: WeightedPairGraph, clusters: list[set[str]]) -> float:
    """Total intra-cluster agreement weight of a partition.

    Higher is better; useful for tests and for comparing clusterings.
    """
    label: dict[str, int] = {}
    for index, cluster in enumerate(clusters):
        for node in cluster:
            label[node] = index
    total = 0.0
    for (left, right), probability in graph.pairs():
        weight = probability - 0.5
        if label.get(left) == label.get(right):
            total += weight
    return total


def _pivot(nodes: list[str], agreement: dict[tuple[str, str], float],
           rng: random.Random) -> dict[str, int]:
    """CC-Pivot: random pivots absorb their positive neighbors."""
    order = list(nodes)
    rng.shuffle(order)
    assignment: dict[str, int] = {}
    next_label = 0
    for pivot_node in order:
        if pivot_node in assignment:
            continue
        assignment[pivot_node] = next_label
        for node in order:
            if node in assignment:
                continue
            weight = agreement.get(pair_key(pivot_node, node), -0.5)
            if weight > 0.0:
                assignment[node] = next_label
        next_label += 1
    return assignment


def _local_search(nodes: list[str], agreement: dict[tuple[str, str], float],
                  assignment: dict[str, int], max_rounds: int) -> dict[str, int]:
    """Best-move local search: move nodes between clusters while it helps."""
    assignment = dict(assignment)
    next_label = max(assignment.values(), default=-1) + 1
    for _ in range(max_rounds):
        improved = False
        for node in nodes:
            # Gain of `node` joining each cluster, relative to being alone.
            gains: dict[int, float] = {}
            for other in nodes:
                if other == node:
                    continue
                weight = agreement.get(pair_key(node, other), -0.5)
                label = assignment[other]
                gains[label] = gains.get(label, 0.0) + weight
            current_label = assignment[node]
            current_gain = gains.get(current_label, 0.0)
            best_label, best_gain = current_label, current_gain
            for label, gain in gains.items():
                if gain > best_gain:
                    best_label, best_gain = label, gain
            if best_gain < 0.0 and current_gain < 0.0:
                # Being alone beats every cluster, including the current one.
                best_label, best_gain = next_label, 0.0
                next_label += 1
            if best_label != current_label and best_gain > current_gain:
                assignment[node] = best_label
                improved = True
        if not improved:
            break
    return assignment
