"""Clustering-quality measures used in the paper's evaluation (§V-A3).

The paper reports the Fp-measure (harmonic mean of purity and inverse
purity), the pairwise F-measure (with precision and recall), and the Rand
index.  B-cubed precision/recall — the official WePS-2 measure — is
included as an extension.
"""

from repro.metrics.clusterings import (
    Clustering,
    clustering_from_assignments,
    clustering_from_sets,
)
from repro.metrics.pairwise import pairwise_scores
from repro.metrics.purity import fp_measure, inverse_purity, purity
from repro.metrics.rand import adjusted_rand_index, rand_index
from repro.metrics.bcubed import bcubed_scores
from repro.metrics.report import MetricReport, evaluate_clustering, mean_report

__all__ = [
    "Clustering",
    "clustering_from_sets",
    "clustering_from_assignments",
    "pairwise_scores",
    "purity",
    "inverse_purity",
    "fp_measure",
    "rand_index",
    "adjusted_rand_index",
    "bcubed_scores",
    "MetricReport",
    "evaluate_clustering",
    "mean_report",
]
