"""Pairwise precision / recall / F-measure.

Treats entity resolution as binary classification over unordered item
pairs: a pair is positive when both items refer to the same entity.  This
is the paper's F-measure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.clusterings import Clustering, check_same_universe


@dataclass(frozen=True)
class PairwiseScores:
    """Pair-level confusion summary and derived scores."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        predicted = self.true_positives + self.false_positives
        return self.true_positives / predicted if predicted else 1.0

    @property
    def recall(self) -> float:
        actual = self.true_positives + self.false_negatives
        return self.true_positives / actual if actual else 1.0

    @property
    def f1(self) -> float:
        precision, recall = self.precision, self.recall
        if precision + recall == 0.0:
            return 0.0
        return 2.0 * precision * recall / (precision + recall)


def pairwise_scores(predicted: Clustering, truth: Clustering) -> PairwiseScores:
    """Pairwise confusion counts of ``predicted`` against ``truth``.

    Computed in O(sum of intersection-table sizes) via the contingency
    table, not by enumerating all pairs.

    Raises:
        ValueError: if the clusterings cover different items.
    """
    check_same_universe(predicted, truth)

    # Contingency counts between predicted clusters and true clusters.
    truth_index: dict[str, int] = {}
    for index, cluster in enumerate(truth.clusters):
        for item in cluster:
            truth_index[item] = index

    pairs_both = 0
    for cluster in predicted.clusters:
        counts: dict[int, int] = {}
        for item in cluster:
            label = truth_index[item]
            counts[label] = counts.get(label, 0) + 1
        pairs_both += sum(count * (count - 1) // 2 for count in counts.values())

    pairs_predicted = predicted.co_referent_pairs()
    pairs_truth = truth.co_referent_pairs()
    return PairwiseScores(
        true_positives=pairs_both,
        false_positives=pairs_predicted - pairs_both,
        false_negatives=pairs_truth - pairs_both,
    )
