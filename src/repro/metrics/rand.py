"""Rand index and adjusted Rand index."""

from __future__ import annotations

from repro.metrics.clusterings import Clustering, check_same_universe
from repro.metrics.pairwise import pairwise_scores


def rand_index(predicted: Clustering, truth: Clustering) -> float:
    """Fraction of item pairs on which the two partitions agree.

    Agreement means the pair is together in both partitions or separate in
    both.  Defined as 1.0 for universes with fewer than two items.
    """
    check_same_universe(predicted, truth)
    n_items = predicted.n_items()
    total_pairs = n_items * (n_items - 1) // 2
    if total_pairs == 0:
        return 1.0
    scores = pairwise_scores(predicted, truth)
    agreements = total_pairs - scores.false_positives - scores.false_negatives
    return agreements / total_pairs


def adjusted_rand_index(predicted: Clustering, truth: Clustering) -> float:
    """Rand index corrected for chance (Hubert & Arabie).

    Returns 1.0 for identical partitions; approximately 0 for random
    labelings.  Degenerate cases where the expected index equals the
    maximum (e.g. both partitions all-singletons) return 1.0.
    """
    check_same_universe(predicted, truth)
    n_items = predicted.n_items()
    total_pairs = n_items * (n_items - 1) // 2
    if total_pairs == 0:
        return 1.0

    scores = pairwise_scores(predicted, truth)
    index = scores.true_positives
    sum_predicted = predicted.co_referent_pairs()
    sum_truth = truth.co_referent_pairs()
    expected = sum_predicted * sum_truth / total_pairs
    maximum = (sum_predicted + sum_truth) / 2.0
    if maximum == expected:
        return 1.0
    return (index - expected) / (maximum - expected)
