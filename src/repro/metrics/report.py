"""Bundled metric reports.

``evaluate_clustering`` computes every measure the experiments need in one
pass; ``mean_report`` averages reports over runs or names, implementing the
paper's "average of 5 runs" protocol and its per-dataset aggregation.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, fields

from repro.metrics.bcubed import bcubed_scores
from repro.metrics.clusterings import Clustering
from repro.metrics.pairwise import pairwise_scores
from repro.metrics.purity import fp_measure, inverse_purity, purity
from repro.metrics.rand import adjusted_rand_index, rand_index


@dataclass(frozen=True)
class MetricReport:
    """All evaluation measures for one predicted clustering."""

    fp: float
    f1: float
    precision: float
    recall: float
    rand: float
    adjusted_rand: float
    purity: float
    inverse_purity: float
    bcubed_precision: float
    bcubed_recall: float
    bcubed_f1: float

    def as_dict(self) -> dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def get(self, metric: str) -> float:
        """Value of one metric by name.

        Raises:
            AttributeError: for unknown metric names.
        """
        return getattr(self, metric)


#: The three metrics the paper reports, in its column order.
PAPER_METRICS = ("fp", "f1", "rand")


def evaluate_clustering(predicted: Clustering, truth: Clustering) -> MetricReport:
    """Score one predicted clustering against ground truth."""
    pair = pairwise_scores(predicted, truth)
    bcubed = bcubed_scores(predicted, truth)
    return MetricReport(
        fp=fp_measure(predicted, truth),
        f1=pair.f1,
        precision=pair.precision,
        recall=pair.recall,
        rand=rand_index(predicted, truth),
        adjusted_rand=adjusted_rand_index(predicted, truth),
        purity=purity(predicted, truth),
        inverse_purity=inverse_purity(predicted, truth),
        bcubed_precision=bcubed.precision,
        bcubed_recall=bcubed.recall,
        bcubed_f1=bcubed.f1,
    )


def mean_report(reports: Sequence[MetricReport]) -> MetricReport:
    """Field-wise mean of several reports.

    Raises:
        ValueError: for an empty sequence.
    """
    if not reports:
        raise ValueError("cannot average zero reports")
    n_reports = len(reports)
    means = {
        f.name: sum(getattr(report, f.name) for report in reports) / n_reports
        for f in fields(MetricReport)
    }
    return MetricReport(**means)
