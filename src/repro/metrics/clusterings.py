"""The clustering value type shared by all metrics.

A :class:`Clustering` is an immutable partition of a universe of item ids.
Constructors validate the partition property (§II of the paper: entity
resolution outputs are partitions — disjoint cliques in graph terms).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping


class Clustering:
    """An immutable partition of item ids into clusters."""

    def __init__(self, clusters: Iterable[Iterable[str]]):
        normalized: list[frozenset[str]] = []
        seen: set[str] = set()
        for cluster in clusters:
            members = frozenset(cluster)
            if not members:
                continue
            overlap = members & seen
            if overlap:
                raise ValueError(f"items in multiple clusters: {sorted(overlap)[:5]}")
            seen.update(members)
            normalized.append(members)
        # Canonical order: by size descending, then lexicographic smallest
        # member — determinism for tests and reports.
        normalized.sort(key=lambda c: (-len(c), min(c)))
        self._clusters: tuple[frozenset[str], ...] = tuple(normalized)
        self._items: frozenset[str] = frozenset(seen)
        self._assignment: dict[str, int] = {}
        for index, cluster in enumerate(self._clusters):
            for item in cluster:
                self._assignment[item] = index

    @property
    def clusters(self) -> tuple[frozenset[str], ...]:
        return self._clusters

    @property
    def items(self) -> frozenset[str]:
        return self._items

    def __len__(self) -> int:
        return len(self._clusters)

    def __iter__(self) -> Iterator[frozenset[str]]:
        return iter(self._clusters)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Clustering):
            return NotImplemented
        return set(self._clusters) == set(other._clusters)

    def __hash__(self) -> int:
        return hash(frozenset(self._clusters))

    def __repr__(self) -> str:
        return f"Clustering({len(self._clusters)} clusters, {len(self._items)} items)"

    def n_items(self) -> int:
        return len(self._items)

    def cluster_of(self, item: str) -> frozenset[str]:
        """The cluster containing ``item``.

        Raises:
            KeyError: if the item is not in the clustering.
        """
        return self._clusters[self._assignment[item]]

    def same_cluster(self, left: str, right: str) -> bool:
        """True when the two items share a cluster."""
        return self._assignment[left] == self._assignment[right]

    def co_referent_pairs(self) -> int:
        """Number of unordered intra-cluster pairs."""
        return sum(len(c) * (len(c) - 1) // 2 for c in self._clusters)

    def sizes(self) -> list[int]:
        """Cluster sizes in canonical order."""
        return [len(cluster) for cluster in self._clusters]


def clustering_from_sets(clusters: Iterable[Iterable[str]]) -> Clustering:
    """Build a clustering from item sets (empty sets are dropped)."""
    return Clustering(clusters)


def clustering_from_assignments(assignment: Mapping[str, str]) -> Clustering:
    """Build a clustering from an ``item -> label`` mapping."""
    by_label: dict[str, set[str]] = {}
    for item, label in assignment.items():
        by_label.setdefault(label, set()).add(item)
    return Clustering(by_label.values())


def check_same_universe(predicted: Clustering, truth: Clustering) -> None:
    """Raise unless the two clusterings partition the same items.

    Raises:
        ValueError: on any universe mismatch.
    """
    if predicted.items != truth.items:
        only_predicted = predicted.items - truth.items
        only_truth = truth.items - predicted.items
        raise ValueError(
            "clusterings cover different items "
            f"(only in predicted: {len(only_predicted)}, only in truth: {len(only_truth)})")
