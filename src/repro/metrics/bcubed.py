"""B-cubed precision / recall / F.

The official WePS-2 task measure (Bagga & Baldwin's B³), included as an
extension beyond the paper's reported metrics: per-item precision is the
fraction of the item's predicted cluster sharing its true class, per-item
recall the fraction of its true class captured by its predicted cluster;
both are averaged over items.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.clusterings import Clustering, check_same_universe


@dataclass(frozen=True)
class BCubedScores:
    precision: float
    recall: float

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0.0:
            return 0.0
        return 2.0 * self.precision * self.recall / (self.precision + self.recall)


def bcubed_scores(predicted: Clustering, truth: Clustering) -> BCubedScores:
    """Item-averaged B-cubed precision and recall.

    Raises:
        ValueError: if the clusterings cover different items.
    """
    check_same_universe(predicted, truth)
    n_items = predicted.n_items()
    if n_items == 0:
        return BCubedScores(precision=1.0, recall=1.0)

    precision_sum = 0.0
    recall_sum = 0.0
    for item in predicted.items:
        predicted_cluster = predicted.cluster_of(item)
        true_cluster = truth.cluster_of(item)
        correct = len(predicted_cluster & true_cluster)
        precision_sum += correct / len(predicted_cluster)
        recall_sum += correct / len(true_cluster)
    return BCubedScores(
        precision=precision_sum / n_items,
        recall=recall_sum / n_items,
    )
