"""Purity, inverse purity and the Fp-measure.

The Fp-measure — the harmonic mean of purity and inverse purity — is the
paper's headline metric (Tables II–III, Figures 2–3), following the web
people search literature.

* purity: each predicted cluster is credited with its majority true class;
  measures how homogeneous predicted clusters are.
* inverse purity: the same with roles swapped; measures how completely
  true clusters are covered by predicted ones.
"""

from __future__ import annotations

from repro.metrics.clusterings import Clustering, check_same_universe


def purity(predicted: Clustering, truth: Clustering) -> float:
    """Weighted majority-class fraction over predicted clusters.

    Raises:
        ValueError: if the clusterings cover different items.
    """
    check_same_universe(predicted, truth)
    return _directed_purity(predicted, truth)


def inverse_purity(predicted: Clustering, truth: Clustering) -> float:
    """Purity with the roles of predicted and true clusters swapped."""
    check_same_universe(predicted, truth)
    return _directed_purity(truth, predicted)


def fp_measure(predicted: Clustering, truth: Clustering) -> float:
    """Harmonic mean of purity and inverse purity (the paper's Fp)."""
    pur = purity(predicted, truth)
    inv = inverse_purity(predicted, truth)
    if pur + inv == 0.0:
        return 0.0
    return 2.0 * pur * inv / (pur + inv)


def _directed_purity(source: Clustering, target: Clustering) -> float:
    """``(1/N) * Σ_C max_T |C ∩ T|`` for source clusters C, target T."""
    n_items = source.n_items()
    if n_items == 0:
        return 1.0
    target_index: dict[str, int] = {}
    for index, cluster in enumerate(target.clusters):
        for item in cluster:
            target_index[item] = index
    total = 0
    for cluster in source.clusters:
        counts: dict[int, int] = {}
        for item in cluster:
            label = target_index[item]
            counts[label] = counts.get(label, 0) + 1
        total += max(counts.values())
    return total / n_items
