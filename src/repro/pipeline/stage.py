"""The stage contract and the context a pipeline run threads through it.

A :class:`Stage` is one typed step of the resolver's dataflow: it
declares the artifact type it consumes and the one it produces, and its
``run`` method transforms the former into the latter.
:class:`~repro.pipeline.plan.Pipeline` validates that adjacent stages
chain (``produces`` feeds ``consumes``), times every stage into a
:class:`StageStats`, and threads a single :class:`PipelineContext`
carrying the run's configuration, executor, caches and lazily resolved
extraction pipeline.

Stages must be no-arg constructible so plans can be composed from
registry names (:func:`~repro.core.registry.register_stage`); per-run
parameters travel on the context, never on the stage instance.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.runtime.cache import SimilarityCache
from repro.runtime.stats import RunStats

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.config import ResolverConfig
    from repro.core.model import ResolverModel
    from repro.core.resolver import EntityResolver
    from repro.corpus.documents import DocumentCollection
    from repro.extraction.pipeline import ExtractionPipeline
    from repro.graph.entity_graph import WeightedPairGraph
    from repro.runtime.executor import BlockExecutor

__all__ = ["Stage", "StageStats", "PipelineContext"]


@dataclass
class StageStats:
    """Cost record of one stage execution within a pipeline run.

    Attributes:
        stage: the stage's registry name.
        seconds: the stage's wall time.
        consumes: name of the artifact type the stage read.
        produces: name of the artifact type the stage emitted.
        run_stats: the engine's :class:`~repro.runtime.stats.RunStats`
            when the stage fanned block work out through an executor
            (the fit and cluster stages), else ``None``.
    """

    stage: str
    seconds: float
    consumes: str
    produces: str
    run_stats: RunStats | None = None

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable snapshot (benchmarks, the CLI)."""
        return {
            "stage": self.stage,
            "seconds": self.seconds,
            "consumes": self.consumes,
            "produces": self.produces,
            "run_stats": (self.run_stats.to_dict()
                          if self.run_stats is not None else None),
        }


def format_stage_stats(stats: list[StageStats]) -> str:
    """One line summarizing a plan run's per-stage wall times."""
    parts = [f"{entry.stage} {entry.seconds:.3f}s" for entry in stats]
    return "stages: " + " | ".join(parts) if parts else "stages: <none>"


@dataclass
class PipelineContext:
    """Everything a plan run shares across its stages.

    Attributes:
        config: the resolver configuration the plan runs under.
        executor: block executor scheduling per-block fan-out.
        phase: ``"fit"``, ``"predict"`` or ``"evaluate"``.
        resolver: the fitting :class:`EntityResolver` (fit plans only).
        model: the serving :class:`ResolverModel` (predict plans only).
        extraction: the extraction pipeline, possibly still unresolved —
            stages call :meth:`require_extraction` which resolves it
            lazily from collection metadata exactly when (and only when)
            a block actually needs extracting.
        explicit_extraction: true when the caller passed the pipeline
            explicitly; the cluster stage then uses a pass-local cache
            so the model's content-keyed cache is never served values
            another pipeline produced.
        graphs_by_name: caller-precomputed similarity graphs, seeded
            into the similarity stage's artifact.
        features_by_name: caller-precomputed features, seeded into the
            extraction stage's artifact.
        training_seed: per-block training-sample seed (fit plans).
        model_block: fitted block serving names the model was never
            fitted on (predict plans).
        evaluate: score predictions against ground truth (predict plans).
        stage_stats: per-stage records, appended by the pipeline runner.
    """

    config: "ResolverConfig"
    executor: "BlockExecutor"
    phase: str = "fit"
    resolver: "EntityResolver | None" = None
    model: "ResolverModel | None" = None
    extraction: "ExtractionPipeline | None" = None
    explicit_extraction: bool = False
    graphs_by_name: "dict[str, dict[str, WeightedPairGraph]] | None" = None
    features_by_name: "dict[str, dict[str, Any]] | None" = None
    training_seed: int = 0
    model_block: str | None = None
    evaluate: bool = False
    stage_stats: list[StageStats] = field(default_factory=list)
    #: set by a stage that ran an engine pass; the runner pops it onto
    #: the stage's :class:`StageStats` record.
    pending_run_stats: RunStats | None = None

    def require_extraction(
        self, source: "DocumentCollection | None",
    ) -> "ExtractionPipeline":
        """The extraction pipeline, resolving it from ``source`` metadata.

        The resolved pipeline is memoized on the context, so one plan
        run resolves at most once and the driver can hand it to the
        produced model.

        Raises:
            ValueError: when no pipeline was supplied and ``source``
                carries no vocabulary metadata (or is ``None``).
        """
        if self.extraction is None:
            from repro.core.model import resolve_extraction_pipeline

            if source is None:
                raise ValueError(
                    "need an extraction pipeline: the plan's blocks have "
                    "no source collection to resolve one from")
            self.extraction = resolve_extraction_pipeline(source)
        return self.extraction

    def take_run_stats(self) -> RunStats | None:
        """Pop the pending engine stats (the pipeline runner's hook)."""
        stats, self.pending_run_stats = self.pending_run_stats, None
        return stats

    def engine_stats(self) -> RunStats | None:
        """The last engine pass recorded by any stage of this run."""
        for entry in reversed(self.stage_stats):
            if entry.run_stats is not None:
                return entry.run_stats
        return self.pending_run_stats

    def fresh_cache(self) -> SimilarityCache:
        """A pass-local similarity cache (streaming accounting)."""
        return SimilarityCache()


class Stage(ABC):
    """One typed step of a resolver plan.

    Class attributes:
        name: registry/display name of the stage.
        consumes: artifact class the stage reads.
        produces: artifact class the stage emits.
    """

    name: str = "?"
    consumes: type = object
    produces: type = object

    @abstractmethod
    def run(self, artifact: Any, ctx: PipelineContext) -> Any:
        """Transform ``artifact`` into this stage's output artifact."""

    def describe(self) -> str:
        """``consumes -> [name] -> produces`` (used by ``explain``)."""
        return (f"{self.consumes.__name__} -> [{self.name}] "
                f"-> {self.produces.__name__}")

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.describe()})"
