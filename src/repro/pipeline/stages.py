"""Built-in pipeline stages — the monolithic flow, rehosted.

These six stages carry the dataflow that used to be hard-wired inside
``EntityResolver.fit`` and ``ResolverModel.predict_collection``:

* ``block`` — :class:`BlockingStage`: the config-selected blocking
  scheme.  The default ``"query_name"`` blocker is the paper's (one
  dense block per ambiguous query name, bit-identical to the
  pre-registry pipeline); any other registered blocker re-blocks the
  corpus into candidate-connected components carrying candidate-pair
  masks that restrict every downstream quadratic step.
* ``extract`` — :class:`ExtractionStage`: binds features (materializing
  nothing by default; the heavy stages pull per block).
* ``similarity`` — :class:`SimilarityStage`: binds the config's function
  battery and any precomputed graphs.
* ``fit`` — :class:`FitDecisionsStage`: learns per-block decision layers
  and combiner parameters (label-consuming; fit plans only).
* ``decide`` — :class:`FittedDecisionsStage`: resolves a model's stored
  state per block, including the ``model_block`` fallback (predict
  plans only).
* ``cluster`` — :class:`ClusterStage`: applies fitted decisions, combines
  and clusters every block into the final :class:`Resolution`.

The ``fit`` and ``cluster`` stages are executor-aware: serial runs
stream block-by-block through a pass-local
:class:`~repro.runtime.cache.SimilarityCache` (dropping each block's
quadratic state before the next), parallel runs fan the same work out
through :mod:`repro.runtime.tasks` payloads.  Both report a
:class:`~repro.runtime.stats.RunStats` on the context.  Serial and
parallel stage execution are bit-identical at fixed seeds, exactly as
the pre-pipeline code paths were.

``repro.core`` modules are imported inside stage bodies: the registry's
lazy built-in loading imports this module, which must therefore never
touch a core module at import time (it may still be initializing).
"""

from __future__ import annotations

import time

from repro.core.registry import BLOCKERS, register_stage
from repro.pipeline.artifacts import (
    Blocks,
    Corpus,
    Decisions,
    FeatureSet,
    Resolution,
    SimilarityGraphs,
)
from repro.pipeline.stage import PipelineContext, Stage
from repro.runtime.cache import SimilarityCache
from repro.runtime.stats import RunStats, TaskStats

__all__ = [
    "BlockingStage",
    "QueryNameBlockingStage",
    "ExtractionStage",
    "SimilarityStage",
    "FitDecisionsStage",
    "FittedDecisionsStage",
    "ClusterStage",
]


@register_stage("block")
class BlockingStage(Stage):
    """The config-selected blocking scheme (``ResolverConfig.blocker``).

    Pairs are only ever formed within a block, which is what makes
    every later stage embarrassingly parallel.  The default
    ``"query_name"`` blocker is the paper's scheme (§IV-C): one block
    per ambiguous query name, no candidate mask — the dense fast path,
    bit-identical to the pre-registry pipeline.  Any other name in
    :data:`~repro.core.registry.BLOCKERS` runs over the corpus's page
    universe; its candidate pairs are partitioned into connected
    components (:func:`~repro.blocking.base.blocks_from_candidates`),
    one synthetic block each, whose masks restrict every downstream
    quadratic step to candidate pairs.  Swap this stage
    (``@register_stage`` + a custom plan) to shard, filter or re-block
    the corpus without touching extraction, similarity or fitting.
    """

    name = "block"
    consumes = Corpus
    produces = Blocks

    def run(self, corpus: Corpus, ctx: PipelineContext) -> Blocks:
        blocker_name = ctx.config.blocker
        if blocker_name == "query_name":
            return Blocks(blocks=list(corpus.collection),
                          source=corpus.collection)
        from repro.blocking.base import blocks_from_candidates

        blocker = BLOCKERS.get(blocker_name)()
        pages = list(corpus.collection.all_pages())
        result = blocker.block(pages)
        blocks, masks = blocks_from_candidates(pages, result.candidate_pairs)
        return Blocks(blocks=blocks, source=corpus.collection, masks=masks)


#: Backwards-compatible alias: the stage predates the blocker registry,
#: when it implemented only the paper's query-name scheme.
QueryNameBlockingStage = BlockingStage


@register_stage("extract")
class ExtractionStage(Stage):
    """Bind page features to the blocks.

    The default stage materializes nothing: caller-precomputed features
    (``ctx.features_by_name``) pass through, and everything else is
    extracted per block by the consuming stage through the pass's cache
    — the streaming profile that keeps collection passes one-block
    resident.  A custom eager stage can fill ``by_name`` up front and
    downstream stages use those entries as-is.
    """

    name = "extract"
    consumes = Blocks
    produces = FeatureSet

    def run(self, blocks: Blocks, ctx: PipelineContext) -> FeatureSet:
        return FeatureSet(blocks=blocks,
                          by_name=dict(ctx.features_by_name or {}))


@register_stage("similarity")
class SimilarityStage(Stage):
    """Bind the function battery and any precomputed similarity graphs.

    Precomputed graphs (``ctx.graphs_by_name``, e.g. an
    :class:`~repro.experiments.runner.ExperimentContext`'s) pass through
    by reference — identity is preserved so the fit-time layer hand-off
    (:meth:`FittedBlock.decision_layers`) still short-circuits the
    immediate fit → predict pass.  Missing blocks are computed on demand
    downstream.
    """

    name = "similarity"
    consumes = FeatureSet
    produces = SimilarityGraphs

    def run(self, features: FeatureSet,
            ctx: PipelineContext) -> SimilarityGraphs:
        from repro.similarity.functions import functions_subset

        return SimilarityGraphs(
            features=features,
            by_name=dict(ctx.graphs_by_name or {}),
            functions=functions_subset(ctx.config.function_names),
            backend=ctx.config.backend)


def _graphs_for_block(block, graphs: SimilarityGraphs, ctx: PipelineContext,
                      cache: SimilarityCache):
    """One block's similarity graphs: materialized, or computed now.

    Features come from the feature artifact when materialized, else the
    block is extracted with the lazily resolved pipeline.  Fresh graphs
    run through ``cache`` for pair-granular accounting and reuse, and
    honor the block's candidate mask: a masked block's graphs carry
    candidate edges only.
    """
    from repro.core.model import compute_similarity_graphs

    block_graphs = graphs.by_name.get(block.query_name)
    if block_graphs is not None:
        return block_graphs
    features = graphs.features.by_name.get(block.query_name)
    if features is None:
        pipeline = ctx.require_extraction(graphs.blocks.source)
        features = cache.features_for(block, pipeline.extract_block)
    return compute_similarity_graphs(block, features, graphs.functions,
                                     cache=cache, backend=graphs.backend,
                                     mask=graphs.blocks.mask_for(
                                         block.query_name))


@register_stage("fit")
class FitDecisionsStage(Stage):
    """Learn every block's decision layers and combiner parameters.

    The only label-consuming stage: per block it draws the training
    sample, fits the (function × criterion) decision grid, estimates
    layer accuracies and freezes the combiner's parameters — by calling
    :meth:`EntityResolver.fit_block`, the same per-block unit the
    executors schedule.  Serial and parallel execution produce identical
    fitted state.
    """

    name = "fit"
    consumes = SimilarityGraphs
    produces = Decisions

    def run(self, graphs: SimilarityGraphs,
            ctx: PipelineContext) -> Decisions:
        started = time.perf_counter()
        stats = RunStats.for_executor("fit", ctx.executor)
        if ctx.executor.is_serial:
            fitted = self._run_serial(graphs, ctx, stats)
        else:
            fitted = self._run_parallel(graphs, ctx, stats)
        stats.wall_seconds = time.perf_counter() - started
        stats.finish_executor(ctx.executor)
        ctx.pending_run_stats = stats
        return Decisions(graphs=graphs, fitted=fitted)

    def _resolver(self, ctx: PipelineContext):
        from repro.core.resolver import EntityResolver

        return ctx.resolver or EntityResolver(ctx.config)

    def _run_serial(self, graphs: SimilarityGraphs, ctx: PipelineContext,
                    stats: RunStats):
        resolver = self._resolver(ctx)
        # The cache lives for this stage only: it counts scored pairs for
        # RunStats and dedups graph work, without retaining quadratic
        # state past the pass.
        cache = ctx.fresh_cache()
        fitted = {}
        for block in graphs.blocks:
            block_started = time.perf_counter()
            misses_before = cache.pair_misses
            hits_before = cache.pair_hits
            block_graphs = _graphs_for_block(block, graphs, ctx, cache)
            fitted[block.query_name] = resolver.fit_block(
                block, block_graphs, ctx.training_seed)
            stats.add_task(TaskStats(
                query_name=block.query_name,
                seconds=time.perf_counter() - block_started,
                pairs_scored=cache.pair_misses - misses_before,
                cache_hits=cache.pair_hits - hits_before,
                cache_misses=cache.pair_misses - misses_before,
            ))
            cache.drop_block(block)
        return fitted

    def _run_parallel(self, graphs: SimilarityGraphs, ctx: PipelineContext,
                      stats: RunStats):
        from repro.runtime.tasks import FitBlockTask, run_block_tasks

        payloads = []
        weights = []
        for block in graphs.blocks:
            block_graphs = graphs.by_name.get(block.query_name)
            features = graphs.features.by_name.get(block.query_name)
            pipeline = None
            if block_graphs is None and features is None:
                pipeline = ctx.require_extraction(graphs.blocks.source)
            payloads.append(FitBlockTask(
                config=ctx.config,
                block=block,
                graphs=block_graphs,
                pipeline=pipeline,
                training_seed=ctx.training_seed,
                features=features,
                mask=graphs.blocks.mask_for(block.query_name),
            ))
            weights.append(len(block))
        fitted = {}
        for query_name, fitted_block, task_stats in run_block_tasks(
                ctx.executor, "fit", payloads, weights=weights,
                stats=stats):
            fitted[query_name] = fitted_block
            stats.add_task(task_stats)
        return fitted


@register_stage("decide")
class FittedDecisionsStage(Stage):
    """Resolve the serving model's fitted state for every block.

    Fitted names always use their own state; unknown names fall back to
    ``ctx.model_block`` when given.  Resolving up front (rather than
    mid-loop) makes a missing block fail before any block is served,
    with the model's standard ``KeyError`` listing the fitted names.
    """

    name = "decide"
    consumes = SimilarityGraphs
    produces = Decisions

    def run(self, graphs: SimilarityGraphs,
            ctx: PipelineContext) -> Decisions:
        model = ctx.model
        if model is None:
            raise ValueError(
                "the decide stage serves a fitted model; run it through "
                "ResolverModel.predict/evaluate or set ctx.model")
        fitted = {}
        for block in graphs.blocks:
            fallback = (ctx.model_block
                        if block.query_name not in model.blocks else None)
            fitted[block.query_name] = model._fitted_for(
                fallback or block.query_name)
        return Decisions(graphs=graphs, fitted=fitted)


@register_stage("cluster")
class ClusterStage(Stage):
    """Apply fitted decisions, combine, and cluster every block.

    The label-free serving stage: per block it re-applies the fitted
    decision grid to the block's similarity graphs, combines the layers,
    clusters the combined graph, and (on evaluate plans) scores against
    ground truth.  Serial runs stream; parallel runs ship detached
    fitted state to workers.  Bit-identical across executors.
    """

    name = "cluster"
    consumes = Decisions
    produces = Resolution

    def run(self, decisions: Decisions, ctx: PipelineContext) -> Resolution:
        model = ctx.model
        if model is None:
            raise ValueError(
                "the cluster stage serves a fitted model; run it through "
                "ResolverModel.predict/evaluate or set ctx.model")
        started = time.perf_counter()
        stats = RunStats.for_executor(
            "evaluate" if ctx.evaluate else "predict", ctx.executor)
        if ctx.executor.is_serial:
            results = self._run_serial(decisions, ctx, stats)
        else:
            results = self._run_parallel(decisions, ctx, stats)
        stats.wall_seconds = time.perf_counter() - started
        stats.finish_executor(ctx.executor)
        ctx.pending_run_stats = stats
        return Resolution(dataset=decisions.blocks.dataset, results=results)

    def _run_serial(self, decisions: Decisions, ctx: PipelineContext,
                    stats: RunStats):
        model = ctx.model
        graphs = decisions.graphs
        serve = (model.evaluate_fitted if ctx.evaluate
                 else model.predict_fitted)
        # An explicit pipeline= must never be served stale values another
        # pipeline put into the model's content-keyed cache; a pass-local
        # cache keeps the accounting and streaming behavior without that
        # risk.
        cache = (ctx.fresh_cache() if ctx.explicit_extraction
                 else model._similarity_cache)
        results = []
        for block in graphs.blocks:
            block_started = time.perf_counter()
            hits_before = cache.pair_hits
            misses_before = cache.pair_misses
            block_graphs = _graphs_for_block(block, graphs, ctx, cache)
            results.append(serve(decisions.fitted[block.query_name], block,
                                 graphs=block_graphs))
            stats.add_task(TaskStats(
                query_name=block.query_name,
                seconds=time.perf_counter() - block_started,
                pairs_scored=cache.pair_misses - misses_before,
                cache_hits=cache.pair_hits - hits_before,
                cache_misses=cache.pair_misses - misses_before,
            ))
            # Streamed memory profile: a served block's quadratic cache
            # entries are dropped before the next block is touched.
            cache.drop_block(block)
        return results

    def _run_parallel(self, decisions: Decisions, ctx: PipelineContext,
                      stats: RunStats):
        from repro.core.model import detach_fitted
        from repro.runtime.tasks import PredictBlockTask, run_block_tasks

        graphs = decisions.graphs
        payloads = []
        weights = []
        for block in graphs.blocks:
            block_graphs = graphs.by_name.get(block.query_name)
            features = graphs.features.by_name.get(block.query_name)
            pipeline = None
            if block_graphs is None and features is None:
                pipeline = ctx.require_extraction(graphs.blocks.source)
            payloads.append(PredictBlockTask(
                config=ctx.config,
                fitted=detach_fitted(decisions.fitted[block.query_name]),
                block=block,
                graphs=block_graphs,
                pipeline=pipeline,
                evaluate=ctx.evaluate,
                features=features,
                mask=graphs.blocks.mask_for(block.query_name),
            ))
            weights.append(len(block))
        results = []
        for _, result, task_stats in run_block_tasks(
                ctx.executor, "predict", payloads, weights=weights,
                stats=stats):
            results.append(result)
            stats.add_task(task_stats)
        return results
