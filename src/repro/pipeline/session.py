"""Online serving facade — the request path of a deployed resolver.

A :class:`ResolutionSession` loads a fitted
:class:`~repro.core.model.ResolverModel` once and then serves
``session.resolve(pages)`` calls: each incoming page is blocked by its
query name, routed to that block's *prepared state* (fitted decision
layers adopted into an :class:`~repro.core.incremental.IncrementalResolver`),
and assigned to an existing entity or a new one in
O(block pages × layers) — no labels read, no re-training, no quadratic
re-resolution per request.

Pages *without* a usable query name (the general web setting of the
paper's §IV-C footnote: crawled pages, uploads, mixed universes) are not
dead ends: the session keeps a token-blocking candidate index over its
prepared blocks' pages — the same entity-token keys
:class:`~repro.blocking.token_blocking.TokenBlocker` blocks on, with
boilerplate keys shared across most names excluded as stop-keys — and
routes a nameless page to the prepared block sharing the most blocking
keys, where it is assigned incrementally like any other request.  The
index is evicted with its blocks, so memory stays bounded by the LRU.

Prepared state is built through a pared-down predict pass on first
contact with a name — extraction → similarity graphs → fitted decisions
→ clustering when the first request carries several pages (the "initial
crawl"), or straight fitted-state adoption with an empty entity index
when a single page arrives cold — and kept in a bounded LRU so a
long-lived process serving many hot names stays within memory budget.
Evicted names simply rebuild on next contact.

Typical deployment loop::

    session = ResolutionSession.open("model.json", pipeline=pipeline)
    for request in traffic:                    # single pages or batches
        assignments = session.resolve(request.pages)

``repro pipeline explain`` shows the batch plans; ``repro serve`` runs a
demo loop over this class.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.blocking.token_blocking import TokenBlocker
from repro.core.incremental import (
    INCREMENTAL_COMBINERS,
    Assignment,
    IncrementalResolver,
)
from repro.core.model import ResolverModel
from repro.corpus.documents import NameCollection, WebPage
from repro.extraction.features import PageFeatures
from repro.extraction.pipeline import ExtractionPipeline
from repro.metrics.clusterings import Clustering
from repro.runtime.stats import LatencyReservoir

__all__ = ["ResolutionSession", "SessionStats"]


@dataclass
class SessionStats:
    """Lifetime counters of one serving session.

    Attributes:
        requests: ``resolve`` calls served.
        pages: pages assigned across all requests.
        incremental_assignments: pages routed through the incremental
            request path (vs batch bootstrap).
        routed_pages: pages without a usable query name routed through
            the token-blocking candidate index.
        new_entities: assignments that founded a new entity.
        prepared_blocks: per-name prepared states built (bootstraps,
            including rebuilds after eviction).
        evicted_blocks: prepared states dropped by the LRU bound.
        seconds_total: wall time spent inside ``resolve``.
        latency: bounded reservoir of per-request latencies (seconds);
            feeds the ``p50/p95/p99`` properties.  A serial mean hides
            tail behavior — the percentiles are what a deployment's SLO
            is written against.
    """

    requests: int = 0
    pages: int = 0
    incremental_assignments: int = 0
    routed_pages: int = 0
    new_entities: int = 0
    prepared_blocks: int = 0
    evicted_blocks: int = 0
    seconds_total: float = 0.0
    latency: LatencyReservoir = field(default_factory=LatencyReservoir)

    def record_request(self, seconds: float, pages: int = 0) -> None:
        """Fold one served request into the counters and the reservoir."""
        self.requests += 1
        self.pages += pages
        self.seconds_total += seconds
        self.latency.record(seconds)

    @property
    def mean_request_seconds(self) -> float:
        """Mean ``resolve`` latency (0.0 before the first request)."""
        if self.requests == 0:
            return 0.0
        return self.seconds_total / self.requests

    @property
    def p50_request_seconds(self) -> float:
        """Median ``resolve`` latency over the reservoir sample."""
        return self.latency.percentile(50)

    @property
    def p95_request_seconds(self) -> float:
        """95th-percentile ``resolve`` latency over the reservoir sample."""
        return self.latency.percentile(95)

    @property
    def p99_request_seconds(self) -> float:
        """99th-percentile ``resolve`` latency over the reservoir sample."""
        return self.latency.percentile(99)

    def summary(self) -> str:
        """One line for CLI output."""
        return (f"[session] {self.requests} requests / {self.pages} pages; "
                f"{self.prepared_blocks} blocks prepared, "
                f"{self.evicted_blocks} evicted; "
                f"{self.new_entities} new entities; "
                f"latency mean {self.mean_request_seconds * 1000:.2f}ms, "
                f"p50 {self.p50_request_seconds * 1000:.2f}ms, "
                f"p95 {self.p95_request_seconds * 1000:.2f}ms, "
                f"p99 {self.p99_request_seconds * 1000:.2f}ms")


@dataclass
class _PreparedBlock:
    """One name's request-path state: adopted layers + live entity index.

    ``incremental`` may be ``None`` transiently: the serving engine
    *reserves* a slot at request admission (so LRU accounting happens in
    admission order) and fills the resolver in when the bootstrap pass
    completes.  The session's own paths always store built state.
    """

    query_name: str
    incremental: IncrementalResolver | None = None
    #: raw pages seen so far — the extraction context for new pages
    #: (TF-IDF is fit per block, so a page is extracted among its block).
    pages: list[WebPage] = field(default_factory=list)


def assignments_from_partition(
    clustering: Clustering, pages: list[WebPage],
) -> tuple[list[Assignment], int]:
    """Per-page assignments synthesized from a batch partition.

    A batch bootstrap resolves its pages jointly, so no single pair
    probability applies to any one page; each page reports probability
    1.0 and "creates" its entity iff it is the first request page landing
    there.  Returns the assignments in page order plus the number of
    entities founded (for stats accounting).
    """
    index_of: dict[str, int] = {}
    for index, cluster in enumerate(clustering):
        for doc_id in cluster:
            index_of[doc_id] = index
    assignments = []
    seen_clusters: set[int] = set()
    for page in pages:
        index = index_of[page.doc_id]
        created = index not in seen_clusters
        seen_clusters.add(index)
        assignments.append(Assignment(
            doc_id=page.doc_id,
            cluster_index=index,
            created_new_cluster=created,
            link_probability=1.0,
        ))
    return assignments, len(seen_clusters)


class ResolutionSession:
    """Serve single/new unlabeled pages from a fitted model.

    Args:
        model: a fitted resolver model (typically ``ResolverModel.load``).
        pipeline: extraction pipeline for raw pages (defaults to the
            model's; required unless every ``resolve`` call supplies
            precomputed features).
        max_blocks: LRU bound on concurrently prepared name blocks.
        model_block: fitted block whose state serves names the model was
            never fitted on (same semantics as ``predict``'s).

    Raises:
        ValueError: for model combiners without incremental support, or
            a non-positive ``max_blocks``.
    """

    def __init__(self, model: ResolverModel,
                 pipeline: ExtractionPipeline | None = None,
                 max_blocks: int = 32,
                 model_block: str | None = None):
        if max_blocks < 1:
            raise ValueError(f"max_blocks must be >= 1, got {max_blocks}")
        if model.config.combiner not in INCREMENTAL_COMBINERS:
            raise ValueError(
                f"the session's request path does not support combiner "
                f"{model.config.combiner!r}")
        self.model = model
        self.extraction = pipeline or model.pipeline
        self.max_blocks = max_blocks
        self.model_block = model_block
        self._prepared: OrderedDict[str, _PreparedBlock] = OrderedDict()
        # Token-blocking candidate index over served pages: blocking key
        # -> prepared names it appeared under (with the reverse map for
        # eviction).  Routes pages without a usable query name; entries
        # are dropped with their block's LRU eviction, so index memory
        # stays bounded by ``max_blocks``.
        self._token_blocker = TokenBlocker()
        self._token_index: dict[str, set[str]] = {}
        self._keys_by_name: dict[str, set[str]] = {}
        self.stats = SessionStats()

    @classmethod
    def open(cls, path, pipeline: ExtractionPipeline | None = None,
             **kwargs) -> "ResolutionSession":
        """Load a saved model once and wrap it in a serving session.

        Args:
            path: a model JSON written by :meth:`ResolverModel.save`.
            pipeline: extraction pipeline (models never serialize one).
            **kwargs: forwarded to the constructor.
        """
        return cls(ResolverModel.load(path), pipeline=pipeline, **kwargs)

    # -- the request path ------------------------------------------------

    def resolve(
        self,
        pages: WebPage | NameCollection | list[WebPage],
        features: dict[str, PageFeatures] | None = None,
    ) -> list[Assignment]:
        """Assign every incoming page to an entity; one request.

        Pages are grouped by query name (the blocking step).  A name
        with prepared state routes each page through incremental
        assignment; a name seen for the first time bootstraps — a batch
        predict pass when the request carries several of its pages, an
        empty entity index when a single page arrives cold.  A page
        *without* a query name is routed through the session's
        token-blocking candidate index to the served block sharing the
        most blocking keys.

        Args:
            pages: a single page, a list of pages, or a block.
            features: optional precomputed features by doc id — pages
                not covered are extracted with the session's pipeline.

        Returns:
            One :class:`~repro.core.incremental.Assignment` per page, in
            input order.

        Raises:
            KeyError: for a query name without fitted state when no
                ``model_block`` fallback is configured, or for a
                nameless page no served block shares a blocking key
                with.
            ValueError: when extraction is needed but the session has no
                pipeline, or a page was already resolved.
        """
        started = time.perf_counter()
        page_list = self._normalize(pages)
        grouped: OrderedDict[str, list[WebPage]] = OrderedDict()
        for page in page_list:
            grouped.setdefault(self._route(page), []).append(page)

        # Fail atomically: an unknown name must reject the request
        # before any page is assigned, or a retry of the same request
        # would hit "already resolved" for its valid pages.
        for query_name in grouped:
            if query_name not in self._prepared:
                self._fallback_for(query_name)

        by_doc: dict[str, Assignment] = {}
        for query_name, group in grouped.items():
            prepared = self._lookup(query_name)
            if prepared is None and len(group) > 1:
                for assignment in self._bootstrap_batch(query_name, group,
                                                        features):
                    by_doc[assignment.doc_id] = assignment
                continue
            if prepared is None:
                prepared = self._bootstrap_empty(query_name)
            for page in group:
                assignment = self._assign(prepared, page, features)
                by_doc[assignment.doc_id] = assignment

        self.stats.record_request(time.perf_counter() - started,
                                  pages=len(page_list))
        return [by_doc[page.doc_id] for page in page_list]

    def warm(self, block: NameCollection,
             features: dict[str, PageFeatures] | None = None,
             graphs: dict | None = None) -> Clustering:
        """Explicitly bootstrap one name from an initial page batch.

        Runs the pared-down predict pass (extraction → similarity →
        fitted decisions → clustering) over ``block`` and adopts the
        result as the name's prepared state.  ``resolve`` does this
        implicitly for multi-page first contact; ``warm`` exposes it for
        deployments that pre-load hot names (and lets callers pass
        precomputed ``graphs``).

        Warming a name that is *already* prepared refreshes its LRU
        recency and returns the live partition unchanged — it must not
        re-bootstrap (which would discard incremental assignments served
        since the first warm, double-count ``prepared_blocks``, and
        churn the eviction accounting).

        Returns the block's entity partition.
        """
        prepared = self._lookup(block.query_name)
        if prepared is not None and prepared.incremental is not None:
            return prepared.incremental.clusters()
        incremental = self._build_incremental(
            block, self._block_features(block, features), graphs=graphs)
        self._store(_PreparedBlock(
            query_name=block.query_name,
            incremental=incremental,
            pages=list(block.pages),
        ))
        return incremental.clusters()

    # -- inspection ------------------------------------------------------

    def clusters(self, query_name: str) -> Clustering:
        """The current entity partition of a prepared name.

        Raises:
            KeyError: when the name has no prepared state (never served,
                or evicted).
        """
        prepared = self._prepared.get(query_name)
        if prepared is None:
            raise KeyError(
                f"no prepared state for {query_name!r}; prepared names "
                f"are: {', '.join(self._prepared) or '<none>'}")
        return prepared.incremental.clusters()

    def prepared_names(self) -> list[str]:
        """Names with live prepared state, least recently used first."""
        return list(self._prepared)

    def __contains__(self, query_name: object) -> bool:
        return query_name in self._prepared

    def __repr__(self) -> str:
        return (f"ResolutionSession({len(self._prepared)}/{self.max_blocks} "
                f"blocks prepared, {self.stats.requests} requests)")

    # -- internals -------------------------------------------------------

    @staticmethod
    def _normalize(pages) -> list[WebPage]:
        if isinstance(pages, WebPage):
            return [pages]
        if isinstance(pages, NameCollection):
            return list(pages.pages)
        return list(pages)

    def _route(self, page: WebPage) -> str:
        """The block name serving ``page`` (its own, or a routed one)."""
        if page.query_name:
            return page.query_name
        routed = self._route_unnamed(page)
        if routed is None:
            raise KeyError(
                f"page {page.doc_id!r} has no query name and shares no "
                f"blocking key with any served block; serve some named "
                f"traffic first (the token index grows with every "
                f"resolved page)")
        self.stats.routed_pages += 1
        return routed

    def _route_unnamed(self, page: WebPage) -> str | None:
        """Best token-blocking candidate name for a nameless page.

        Keys appearing under more than ``max_block_fraction`` of the
        indexed names are stop-keys (the session analogue of
        :class:`TokenBlocker`'s stop-blocks): boilerplate shared by
        every name must not vote, or it would route arbitrary pages to
        the lexicographically first name.
        """
        stop = max(1, int(self._token_blocker.max_block_fraction
                          * len(self._keys_by_name)))
        votes: dict[str, int] = {}
        for key in set(self._token_blocker._keys(page)):
            names = self._token_index.get(key, ())
            if len(names) > stop:
                continue
            for name in names:
                votes[name] = votes.get(name, 0) + 1
        if not votes:
            return None
        # Most shared blocking keys wins; lexicographic tie-break keeps
        # routing deterministic.
        return min(votes, key=lambda name: (-votes[name], name))

    def _index_pages(self, query_name: str,
                     pages: Iterable[WebPage]) -> None:
        keys = self._keys_by_name.setdefault(query_name, set())
        for page in pages:
            for key in set(self._token_blocker._keys(page)):
                keys.add(key)
                self._token_index.setdefault(key, set()).add(query_name)

    def _unindex(self, query_name: str) -> None:
        """Drop an evicted name's keys (bounds index memory to the LRU)."""
        for key in self._keys_by_name.pop(query_name, ()):
            names = self._token_index.get(key)
            if names is not None:
                names.discard(query_name)
                if not names:
                    del self._token_index[key]

    def _fallback_for(self, query_name: str) -> str | None:
        # Force the model's standard unknown-name KeyError when no
        # fallback is configured.
        if query_name in self.model.blocks:
            return None
        if self.model_block is None:
            self.model._fitted_for(query_name)
        return self.model_block

    def _lookup(self, query_name: str) -> _PreparedBlock | None:
        prepared = self._prepared.get(query_name)
        if prepared is not None:
            self._prepared.move_to_end(query_name)
        return prepared

    def _store(self, prepared: _PreparedBlock) -> None:
        self._prepared[prepared.query_name] = prepared
        self._prepared.move_to_end(prepared.query_name)
        self._index_pages(prepared.query_name, prepared.pages)
        self.stats.prepared_blocks += 1
        while len(self._prepared) > self.max_blocks:
            evicted_name, _ = self._prepared.popitem(last=False)
            self._unindex(evicted_name)
            self.stats.evicted_blocks += 1

    def _reserve(self, query_name: str) -> _PreparedBlock:
        """Store an empty slot for a name whose bootstrap is in flight.

        The serving engine admits requests under a lock but runs the
        expensive bootstrap outside it; reserving at admission makes the
        LRU bookkeeping (prepared/evicted counts, eviction *order*)
        happen at admission time, so a serial replay of the admission
        order reproduces it exactly.  The caller fills
        ``prepared.incremental`` when the bootstrap completes.
        """
        prepared = _PreparedBlock(query_name=query_name)
        self._store(prepared)
        return prepared

    def _build_incremental(self, block: NameCollection,
                           features: dict[str, PageFeatures],
                           graphs: dict | None = None) -> IncrementalResolver:
        """The batch-bootstrap predict pass, without bookkeeping.

        Shared by :meth:`warm` and the serving engine's coalesced
        bootstrap; resolves ``block`` once with the model and adopts the
        result into an :class:`IncrementalResolver`.
        """
        fallback = self._fallback_for(block.query_name)
        return IncrementalResolver.from_model(
            self.model, block, features, model_block=fallback,
            graphs=graphs)

    def _adopt_empty(self, query_name: str) -> IncrementalResolver:
        """Cold-adopt fitted state for a name, with an empty entity index."""
        fallback = self._fallback_for(query_name)
        fitted = self.model.blocks[fallback or query_name]
        return IncrementalResolver.from_fitted(self.model.config, fitted)

    def _bootstrap_batch(self, query_name: str, group: list[WebPage],
                         features: dict[str, PageFeatures] | None,
                         ) -> list[Assignment]:
        """First contact with several pages: batch-resolve, then adopt."""
        block = NameCollection(query_name=query_name, pages=list(group))
        clustering = self.warm(block, features=features)
        assignments, new_entities = assignments_from_partition(clustering,
                                                               group)
        self.stats.new_entities += new_entities
        return assignments

    def _bootstrap_empty(self, query_name: str) -> _PreparedBlock:
        """First contact with a single page: adopt state, empty index."""
        prepared = _PreparedBlock(
            query_name=query_name,
            incremental=self._adopt_empty(query_name),
        )
        self._store(prepared)
        return prepared

    def _assign(self, prepared: _PreparedBlock, page: WebPage,
                features: dict[str, PageFeatures] | None) -> Assignment:
        page_features = (features or {}).get(page.doc_id)
        if page_features is None:
            page_features = self._extract_page(prepared, page)
        assignment = prepared.incremental.add_page(page_features)
        prepared.pages.append(page)
        self._index_pages(prepared.query_name, [page])
        self.stats.incremental_assignments += 1
        if assignment.created_new_cluster:
            self.stats.new_entities += 1
        return assignment

    def _extract_page(self, prepared: _PreparedBlock,
                      page: WebPage) -> PageFeatures:
        """Extract one new page in the context of its current block.

        TF-IDF is fit per block, so the page is extracted together with
        the pages already served for the name.
        """
        if self.extraction is None:
            raise ValueError(
                "session has no extraction pipeline; pass pipeline= at "
                "construction or precomputed features to resolve()")
        block = NameCollection(query_name=prepared.query_name,
                               pages=prepared.pages + [page])
        return self.extraction.extract_block(block)[page.doc_id]

    def _block_features(
        self, block: NameCollection,
        features: dict[str, PageFeatures] | None,
    ) -> dict[str, PageFeatures]:
        if features is not None:
            covered = {page.doc_id: features[page.doc_id]
                       for page in block.pages if page.doc_id in features}
            if len(covered) == len(block.pages):
                return covered
        if self.extraction is None:
            raise ValueError(
                "session has no extraction pipeline; pass pipeline= at "
                "construction or features covering the whole block")
        return self.extraction.extract_block(block)
