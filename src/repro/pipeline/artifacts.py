"""Typed artifacts flowing between pipeline stages.

Each stage consumes one artifact type and produces the next, making the
paper's dataflow explicit and composable::

    Corpus -> Blocks -> FeatureSet -> SimilarityGraphs -> Decisions -> Resolution

Artifacts are deliberately *carriers*, not computations: the per-name
maps may be partially (or not at all) materialized, and the heavy stages
pull what is missing per block through the shared
:class:`~repro.runtime.cache.SimilarityCache`.  That streaming contract
is what lets the default plans keep the engine's one-block-resident
memory profile and its bit-identical serial/parallel guarantee, while a
custom stage that *does* materialize an entry (say, sparsified graphs)
transparently overrides the downstream computation for that block.

This module only depends on data-model packages (corpus, extraction,
graph, runtime, metrics); everything from ``repro.core`` appears as a
type annotation so the registry's lazy built-in loading can import the
pipeline package while core modules are still initializing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.corpus.documents import DocumentCollection, NameCollection
from repro.extraction.features import PageFeatures
from repro.graph.entity_graph import PairKey, WeightedPairGraph

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.model import (
        BlockPrediction,
        BlockResolution,
        FittedBlock,
    )
    from repro.similarity.base import SimilarityFunction

__all__ = [
    "Corpus",
    "Blocks",
    "FeatureSet",
    "SimilarityGraphs",
    "Decisions",
    "Resolution",
]


@dataclass
class Corpus:
    """The raw input: a whole document collection (pages may be unlabeled)."""

    collection: DocumentCollection

    @property
    def name(self) -> str:
        return self.collection.name


@dataclass
class Blocks:
    """The blocking stage's output: the units all later stages iterate.

    Attributes:
        blocks: one :class:`NameCollection` per comparison unit, in the
            order downstream stages (and their executor fan-outs) will
            process them.  Under the paper's query-name blocker these
            are the corpus's per-name blocks; a generic registered
            blocker produces one block per candidate-connected
            component.
        source: the collection the blocks came from, kept so lazily
            resolved extraction pipelines can read its vocabulary
            metadata.  ``None`` for hand-assembled block lists.
        masks: per-block candidate-pair masks keyed by the block's
            ``query_name``.  A block absent from the map (every block on
            the dense query-name fast path) has no mask: all of its
            pairs are candidates.  Downstream stages thread a block's
            mask into similarity scoring, so the resulting
            :class:`~repro.graph.entity_graph.WeightedPairGraph`\\ s
            carry candidate edges only.
    """

    blocks: list[NameCollection]
    source: DocumentCollection | None = None
    masks: dict[str, frozenset[PairKey]] = field(default_factory=dict)

    def __iter__(self) -> Iterator[NameCollection]:
        return iter(self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)

    def names(self) -> list[str]:
        return [block.query_name for block in self.blocks]

    def mask_for(self, query_name: str) -> frozenset[PairKey] | None:
        """The block's candidate mask, or ``None`` for dense scoring."""
        return self.masks.get(query_name)

    @property
    def dataset(self) -> str:
        return self.source.name if self.source is not None else "<blocks>"


@dataclass
class FeatureSet:
    """Per-block extracted features, possibly lazy.

    ``by_name`` holds only the materialized entries (``query name ->
    doc id -> PageFeatures``).  Blocks absent from the map are extracted
    on demand by the consuming stage through the pass's cache, keeping
    the streaming memory profile; an eager extraction stage can instead
    fill the map up front and downstream stages will use it as-is.
    """

    blocks: Blocks
    by_name: dict[str, dict[str, PageFeatures]] = field(default_factory=dict)


@dataclass
class SimilarityGraphs:
    """Per-block weighted pair graphs ``G_w^fi``, possibly lazy.

    ``by_name`` maps ``query name -> function name -> graph`` for the
    materialized entries (e.g. an experiment context's precomputed
    graphs); missing blocks are computed on demand from ``features`` by
    the consuming stage.  ``functions`` is the battery the plan's config
    selected, in config order; ``backend`` is the config's scoring
    backend for on-demand computation (``None``: ambient default —
    backends are bit-identical, so this only affects speed).
    """

    features: FeatureSet
    by_name: dict[str, dict[str, WeightedPairGraph]] = field(
        default_factory=dict)
    functions: "list[SimilarityFunction]" = field(default_factory=list)
    backend: str | None = None

    @property
    def blocks(self) -> Blocks:
        return self.features.blocks


@dataclass
class Decisions:
    """Fitted per-block decision state, ready to apply.

    Produced by the fit stage (freshly learned state) or the decide
    stage (a model's stored state resolved per block, including the
    ``model_block`` fallback for names the model was never fitted on).
    """

    graphs: SimilarityGraphs
    fitted: "dict[str, FittedBlock]" = field(default_factory=dict)

    @property
    def blocks(self) -> Blocks:
        return self.graphs.blocks


@dataclass
class Resolution:
    """The terminal artifact: one resolved clustering per block.

    ``results`` holds :class:`~repro.core.model.BlockPrediction` entries
    (predict plans) or :class:`~repro.core.model.BlockResolution` entries
    (evaluate plans), in block order.
    """

    dataset: str
    results: "list[BlockPrediction | BlockResolution]" = field(
        default_factory=list)
