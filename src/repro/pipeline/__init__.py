"""Composable stage pipeline and the online serving facade.

The package splits the paper's monolithic flow into typed, swappable
stages (see :mod:`repro.pipeline.stages`), composes them into plans
(:mod:`repro.pipeline.plan`), and serves single-page online traffic
through :class:`~repro.pipeline.session.ResolutionSession`.

Importing this package registers the built-in stages in
:data:`repro.core.registry.STAGES` (the registry also loads them lazily
on first read, so plans resolve even without an explicit import).

``ResolutionSession`` is exported lazily: the registry's built-in
loading may import this package while ``repro.core`` modules are still
initializing, and the session module depends on them at import time.
"""

from repro.pipeline import stages as _stages  # registers the built-ins
from repro.pipeline.artifacts import (
    Blocks,
    Corpus,
    Decisions,
    FeatureSet,
    Resolution,
    SimilarityGraphs,
)
from repro.pipeline.plan import Pipeline, PlanError, fit_plan, predict_plan
from repro.pipeline.stage import (
    PipelineContext,
    Stage,
    StageStats,
    format_stage_stats,
)

__all__ = [
    "Blocks",
    "Corpus",
    "Decisions",
    "FeatureSet",
    "Pipeline",
    "PipelineContext",
    "PlanError",
    "Resolution",
    "ResolutionSession",
    "SessionStats",
    "SimilarityGraphs",
    "Stage",
    "StageStats",
    "fit_plan",
    "format_stage_stats",
    "predict_plan",
]


def __getattr__(name: str):
    if name in ("ResolutionSession", "SessionStats"):
        from repro.pipeline import session

        return getattr(session, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
