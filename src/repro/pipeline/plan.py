"""Composable stage plans.

A :class:`Pipeline` is an ordered list of stages whose artifact types
chain: each stage's ``produces`` must feed the next stage's
``consumes``, validated at construction so a malformed plan fails before
any work runs.  ``run`` threads one
:class:`~repro.pipeline.stage.PipelineContext` through the stages,
timing each into a :class:`~repro.pipeline.stage.StageStats`.

Default plans are derived from a :class:`~repro.core.config.ResolverConfig`
through the :data:`~repro.core.registry.STAGES` registry:

* :func:`fit_plan` — ``block → extract → similarity → fit`` (the
  label-consuming training pass behind ``EntityResolver.fit``).
* :func:`predict_plan` — ``block → extract → similarity → decide →
  cluster`` (the label-free serving pass behind
  ``ResolverModel.predict``/``evaluate``).

Custom plans come in two flavors: compose stage *instances* directly
(``Pipeline([MyBlocker(), ExtractionStage(), ...])``), or register a
stage class with :func:`~repro.core.registry.register_stage` and compose
by name with :meth:`Pipeline.from_names`.  ``Pipeline.replace`` swaps a
single stage of an existing plan.  Either way the drivers accept the
plan via their ``plan=`` argument — swapped stages flow through fitting
and serving without touching ``repro.core``.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from repro.core.registry import STAGES
from repro.pipeline.stage import PipelineContext, Stage, StageStats

import time

__all__ = ["Pipeline", "PlanError", "fit_plan", "predict_plan"]


class PlanError(ValueError):
    """A plan whose stages do not chain, or an artifact of the wrong type."""


class Pipeline:
    """An ordered, type-checked sequence of stages.

    Args:
        stages: the stage instances, in execution order.
        name: display name (``explain`` headers, reprs).

    Raises:
        PlanError: when the plan is empty or adjacent stages do not
            chain (a stage's ``consumes`` is not the previous stage's
            ``produces`` or a superclass of it).
    """

    def __init__(self, stages: Sequence[Stage], name: str = "pipeline"):
        if not stages:
            raise PlanError("a pipeline needs at least one stage")
        self.stages = list(stages)
        self.name = name
        for previous, current in zip(self.stages, self.stages[1:]):
            if not issubclass(previous.produces, current.consumes):
                raise PlanError(
                    f"stage {current.name!r} consumes "
                    f"{current.consumes.__name__} but follows "
                    f"{previous.name!r}, which produces "
                    f"{previous.produces.__name__}")

    @classmethod
    def from_names(cls, names: Sequence[str],
                   name: str = "pipeline") -> "Pipeline":
        """Compose a plan from :data:`~repro.core.registry.STAGES` names.

        Raises:
            ValueError: for unknown stage names (lists the known ones).
            PlanError: when the named stages do not chain.
        """
        return cls([STAGES.get(stage_name)() for stage_name in names],
                   name=name)

    def stage_names(self) -> list[str]:
        return [stage.name for stage in self.stages]

    def replace(self, stage_name: str, stage: Stage) -> "Pipeline":
        """A new plan with the named stage swapped for ``stage``.

        Raises:
            KeyError: when no stage carries ``stage_name``.
            PlanError: when the replacement breaks the artifact chain.
        """
        if stage_name not in self.stage_names():
            raise KeyError(
                f"plan {self.name!r} has no stage {stage_name!r}; "
                f"stages are: {', '.join(self.stage_names())}")
        swapped = [stage if existing.name == stage_name else existing
                   for existing in self.stages]
        return Pipeline(swapped, name=self.name)

    def run(self, artifact: Any, ctx: PipelineContext) -> Any:
        """Thread ``artifact`` through every stage; returns the final one.

        Each stage is timed into a :class:`StageStats` appended to
        ``ctx.stage_stats``; a stage that ran an engine pass has its
        :class:`~repro.runtime.stats.RunStats` attached to its record.

        Every stage schedules through the *same* ``ctx.executor``: a
        parallel run's persistent worker pool forks once, on the first
        stage that fans out, and is reused by every later stage.  The
        plan does not close the executor — its lifecycle belongs to
        whoever created it (the ``fit``/``predict`` drivers for
        config-built executors, the caller for explicit ones).

        Raises:
            PlanError: when ``artifact`` (or an intermediate artifact)
                is not an instance of the next stage's ``consumes``.
        """
        for stage in self.stages:
            if not isinstance(artifact, stage.consumes):
                raise PlanError(
                    f"stage {stage.name!r} consumes "
                    f"{stage.consumes.__name__}, got "
                    f"{type(artifact).__name__}")
            started = time.perf_counter()
            artifact = stage.run(artifact, ctx)
            ctx.stage_stats.append(StageStats(
                stage=stage.name,
                seconds=time.perf_counter() - started,
                consumes=stage.consumes.__name__,
                produces=stage.produces.__name__,
                run_stats=ctx.take_run_stats(),
            ))
        return artifact

    def explain(self) -> str:
        """The resolved plan, one stage per line with artifact types."""
        lines = [f"plan {self.name!r} ({len(self.stages)} stages)"]
        lines.append(f"  {self.stages[0].consumes.__name__}")
        for stage in self.stages:
            lines.append(f"    --[{stage.name}: {type(stage).__name__}]--> "
                         f"{stage.produces.__name__}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.stages)

    def __repr__(self) -> str:
        chain = " -> ".join(self.stage_names())
        return f"Pipeline({self.name!r}: {chain})"


def fit_plan(config=None) -> Pipeline:
    """The default training plan a :class:`ResolverConfig` selects.

    Stages resolve through the registry, so a stage registered with
    ``replace=True`` under a built-in name lands in every plan built
    afterwards.  ``config`` is accepted for symmetry and future
    config-driven plan knobs; the stages read it from the run context.
    """
    return Pipeline.from_names(["block", "extract", "similarity", "fit"],
                               name="fit")


def predict_plan(config=None, evaluate: bool = False) -> Pipeline:
    """The default serving plan (``evaluate=True`` scores against labels)."""
    return Pipeline.from_names(
        ["block", "extract", "similarity", "decide", "cluster"],
        name="evaluate" if evaluate else "predict")
