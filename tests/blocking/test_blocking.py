"""Blocking scheme tests."""

import pytest

from repro.blocking.base import BlockingResult, pairs_within
from repro.blocking.name_blocking import QueryNameBlocker
from repro.blocking.sorted_neighborhood import (
    SortedNeighborhoodBlocker,
    domain_key,
    title_key,
)
from repro.blocking.token_blocking import TokenBlocker
from repro.corpus.documents import WebPage


def make_page(doc_id, query="Jane Roe", person="p0",
              url="http://a.org/x", title="title", text="text"):
    return WebPage(doc_id=doc_id, query_name=query, url=url, title=title,
                   text=text, person_id=person)


class TestPairsWithin:
    def test_all_pairs(self):
        pairs = pairs_within(["c", "a", "b"])
        assert pairs == {("a", "b"), ("a", "c"), ("b", "c")}

    def test_single(self):
        assert pairs_within(["a"]) == set()


class TestBlockingResult:
    def test_reduction_ratio(self):
        pages = [make_page(f"x/{i}") for i in range(5)]
        result = BlockingResult(pages=pages,
                                candidate_pairs={("x/0", "x/1")})
        assert result.total_pairs() == 10
        assert result.reduction_ratio() == pytest.approx(0.9)

    def test_pair_completeness_full(self):
        pages = [make_page("x/0", person="a"), make_page("x/1", person="a"),
                 make_page("x/2", person="b")]
        result = BlockingResult(pages=pages,
                                candidate_pairs={("x/0", "x/1")})
        assert result.pair_completeness() == 1.0

    def test_pair_completeness_partial(self):
        pages = [make_page(f"x/{i}", person="a") for i in range(3)]
        result = BlockingResult(pages=pages,
                                candidate_pairs={("x/0", "x/1")})
        assert result.pair_completeness() == pytest.approx(1.0 / 3.0)

    def test_pair_completeness_no_links(self):
        pages = [make_page("x/0", person="a"), make_page("x/1", person="b")]
        result = BlockingResult(pages=pages)
        assert result.pair_completeness() == 1.0

    def test_unlabeled_raises(self):
        pages = [make_page("x/0", person=None)]
        result = BlockingResult(pages=pages)
        with pytest.raises(ValueError, match="unlabeled"):
            result.pair_completeness()

    def test_empty_universe(self):
        result = BlockingResult(pages=[])
        assert result.reduction_ratio() == 0.0

    def test_true_pairs_match_naive_double_loop(self, small_dataset):
        """The grouped-by-person enumeration equals the O(n²) reference."""
        from repro.graph.entity_graph import pair_key

        pages = list(small_dataset.all_pages())
        result = BlockingResult(pages=pages)
        labels = {page.doc_id: page.person_id for page in pages}
        ids = sorted(labels)
        naive = {
            pair_key(left, right)
            for i, left in enumerate(ids)
            for right in ids[i + 1:]
            if labels[left] == labels[right]
        }
        assert result._true_pairs() == naive
        assert naive  # the generator corpus has co-referent pages

    def test_true_pairs_collapse_duplicate_doc_ids(self):
        # A doc id listed twice must not produce a self-pair.
        pages = [make_page("x/0", person="a"), make_page("x/0", person="a"),
                 make_page("x/1", person="a")]
        result = BlockingResult(pages=pages)
        assert result._true_pairs() == {("x/0", "x/1")}


class TestQueryNameBlocker:
    def test_blocks_by_name(self):
        pages = [make_page("a/0", query="A B"), make_page("a/1", query="A B"),
                 make_page("b/0", query="C D")]
        result = QueryNameBlocker().block(pages)
        assert result.candidate_pairs == {("a/0", "a/1")}

    def test_lossless_on_generated_data(self, small_dataset):
        result = QueryNameBlocker().block(small_dataset.all_pages())
        assert result.pair_completeness() == 1.0

    def test_reduction_on_multi_name_data(self, small_dataset):
        result = QueryNameBlocker().block(small_dataset.all_pages())
        assert result.reduction_ratio() > 0.5


class TestTokenBlocker:
    def test_shared_entity_token_pairs(self):
        pages = [
            make_page("x/0", text="works at Initech daily"),
            make_page("x/1", text="joined Initech recently"),
            make_page("x/2", text="nothing relevant here"),
        ]
        result = TokenBlocker(max_block_fraction=1.0).block(pages)
        assert ("x/0", "x/1") in result.candidate_pairs
        assert ("x/0", "x/2") not in result.candidate_pairs

    def test_stop_blocks_dropped(self):
        pages = [make_page(f"x/{i}", text="Common token everywhere")
                 for i in range(10)]
        result = TokenBlocker(max_block_fraction=0.2).block(pages)
        assert not result.candidate_pairs

    def test_entity_tokens_only(self):
        pages = [
            make_page("x/0", text="shared lowercase word", title=""),
            make_page("x/1", text="shared lowercase word", title=""),
        ]
        capitalized_only = TokenBlocker(entity_tokens_only=True).block(pages)
        assert not capitalized_only.candidate_pairs
        all_tokens = TokenBlocker(entity_tokens_only=False,
                                  max_block_fraction=1.0).block(pages)
        assert all_tokens.candidate_pairs

    def test_decent_completeness_on_generated_data(self, small_block):
        result = TokenBlocker(max_block_fraction=0.6).block(small_block.pages)
        assert result.pair_completeness() > 0.5


class TestSortedNeighborhoodBlocker:
    def test_window_pairs(self):
        pages = [make_page(f"x/{i}", title=f"title {chr(97 + i)}")
                 for i in range(5)]
        result = SortedNeighborhoodBlocker(window=2, keys=[title_key]).block(pages)
        # Window 2 pairs each page with its immediate sorted neighbor.
        assert len(result.candidate_pairs) == 4

    def test_window_must_be_at_least_two(self):
        with pytest.raises(ValueError, match="window"):
            SortedNeighborhoodBlocker(window=1)

    def test_multi_pass_unions(self):
        pages = [
            make_page("x/0", title="aaa", url="http://z.org/1"),
            make_page("x/1", title="zzz", url="http://z.org/2"),
            make_page("x/2", title="aab", url="http://q.net/3"),
        ]
        single = SortedNeighborhoodBlocker(window=2, keys=[title_key]).block(pages)
        double = SortedNeighborhoodBlocker(
            window=2, keys=[title_key, domain_key]).block(pages)
        assert single.candidate_pairs <= double.candidate_pairs
        assert ("x/0", "x/1") in double.candidate_pairs  # same domain pass

    def test_window_larger_than_universe(self):
        pages = [make_page(f"x/{i}") for i in range(3)]
        result = SortedNeighborhoodBlocker(window=10, keys=[title_key]).block(pages)
        assert len(result.candidate_pairs) == 3  # complete graph


class TestKeys:
    def test_domain_key_reverses_labels(self):
        page = make_page("x/0", url="http://people.example.org/x")
        assert domain_key(page) == "org.example.people"

    def test_title_key_lowercases(self):
        page = make_page("x/0", title="Some Title")
        assert title_key(page) == "some title"
