"""Blocking quality: pair completeness vs reduction ratio per scheme.

Compares the paper's :class:`QueryNameBlocker` against the generic
:class:`TokenBlocker` and :class:`SortedNeighborhoodBlocker` on labeled
generator corpora — the standard blocking trade-off: the query-name
scheme is lossless by construction on name-organized data, the generic
schemes trade completeness for applicability to universes without
usable names.
"""

import pytest

from repro.blocking import (
    QueryNameBlocker,
    SortedNeighborhoodBlocker,
    TokenBlocker,
    blocks_from_candidates,
)
from repro.corpus.datasets import www05_like


@pytest.fixture(scope="module")
def universe():
    """A mixed page universe: three names' pages in one flat list."""
    collection = www05_like(
        seed=29, pages_per_name=18,
        names=["William Cohen", "Adam Cheyer", "Lynn Voss"])
    return list(collection.all_pages())


class TestBlockerQuality:
    def test_query_name_blocker_is_lossless(self, universe):
        result = QueryNameBlocker().block(universe)
        assert result.pair_completeness() == 1.0

    def test_query_name_blocker_reduces_mixed_universe(self, universe):
        # Three similar-sized names: candidates ≈ a third of all pairs.
        result = QueryNameBlocker().block(universe)
        assert result.reduction_ratio() >= 0.5

    def test_token_blocker_trades_completeness_for_generality(self, universe):
        result = TokenBlocker().block(universe)
        # Entity-token blocking keeps most true pairs on generated data...
        assert result.pair_completeness() >= 0.5
        # ...while producing a valid (possibly weak) reduction.
        assert 0.0 <= result.reduction_ratio() <= 1.0

    def test_sorted_neighborhood_window_bounds_candidates(self, universe):
        window = 6
        result = SortedNeighborhoodBlocker(window=window).block(universe)
        n_pages = len(universe)
        passes = 2  # title + domain keys
        assert result.n_candidates() <= passes * (window - 1) * n_pages
        assert result.reduction_ratio() > 0.0

    def test_generic_blockers_rank_below_query_name_in_completeness(
            self, universe):
        query_name = QueryNameBlocker().block(universe).pair_completeness()
        token = TokenBlocker().block(universe).pair_completeness()
        neighborhood = SortedNeighborhoodBlocker(
            window=6).block(universe).pair_completeness()
        assert query_name == 1.0
        assert token <= query_name
        assert neighborhood <= query_name


class TestBlocksFromCandidates:
    def test_components_partition_the_universe(self, universe):
        result = QueryNameBlocker().block(universe)
        blocks, masks = blocks_from_candidates(universe,
                                               result.candidate_pairs)
        assert sum(len(block) for block in blocks) == len(universe)
        assert {page.doc_id for block in blocks for page in block.pages} \
            == {page.doc_id for page in universe}
        # Query-name candidates are exactly the per-name components.
        assert len(blocks) == 3
        for block in blocks:
            assert block.query_name.startswith("~block:")
            assert len({page.query_name for page in block.pages}) == 1

    def test_masks_cover_every_candidate_pair_exactly_once(self, universe):
        result = TokenBlocker().block(universe)
        blocks, masks = blocks_from_candidates(universe,
                                               result.candidate_pairs)
        assert set(masks) == {block.query_name for block in blocks}
        union = set().union(*masks.values()) if masks else set()
        assert union == result.candidate_pairs
        assert sum(len(mask) for mask in masks.values()) \
            == len(result.candidate_pairs)

    def test_isolated_pages_become_singleton_blocks(self, universe):
        pages = universe[:4]
        blocks, masks = blocks_from_candidates(pages, [])
        assert [len(block) for block in blocks] == [1, 1, 1, 1]
        assert all(mask == frozenset() for mask in masks.values())

    def test_deterministic_block_order_and_names(self, universe):
        result = TokenBlocker().block(universe)
        first = blocks_from_candidates(universe, result.candidate_pairs)
        second = blocks_from_candidates(universe, result.candidate_pairs)
        assert [block.query_name for block in first[0]] \
            == [block.query_name for block in second[0]]
        assert first[1] == second[1]
