"""Property-based tests for the dictionary NER."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extraction.ner import DictionaryNer

ORGS = ["Acme Labs", "Initech", "Globex Corporation"]
LOCS = ["Lausanne", "New York"]
FIRST = ["Jane", "Bob"]
SURNAMES = ["Roe"]

filler = st.sampled_from(["works", "at", "the", "quietly", "since",
                          "writes", "papers", "online"])
entity = st.sampled_from(ORGS + LOCS + ["Jane Roe", "Bob Smith", "Roe"])
token_stream = st.lists(st.one_of(filler, entity), min_size=0, max_size=25)


def make_ner():
    return DictionaryNer(organizations=ORGS, locations=LOCS,
                         first_names=FIRST, known_surnames=SURNAMES)


class TestNerProperties:
    @settings(max_examples=50)
    @given(token_stream)
    def test_extraction_never_crashes_and_counts_consistent(self, parts):
        text = " ".join(parts)
        result = make_ner().extract(text)
        # Every extracted organization must be in the gazetteer.
        for org in result.organizations:
            assert org in ORGS
        for loc in result.locations:
            assert loc in LOCS
        # Counts are positive.
        assert all(count > 0 for count in result.organizations.values())
        assert all(count > 0 for count in result.locations.values())

    @settings(max_examples=50)
    @given(token_stream)
    def test_deterministic(self, parts):
        text = " ".join(parts)
        first = make_ner().extract(text)
        second = make_ner().extract(text)
        assert first.organizations == second.organizations
        assert first.person_counts() == second.person_counts()

    @settings(max_examples=50)
    @given(st.lists(st.sampled_from(ORGS), min_size=0, max_size=8))
    def test_org_counts_exact_when_unambiguous(self, mentions):
        # A text of nothing but org mentions: every mention is found.
        text = " . ".join(mentions)
        result = make_ner().extract(text)
        assert sum(result.organizations.values()) == len(mentions)

    @settings(max_examples=50)
    @given(token_stream)
    def test_person_surfaces_well_formed(self, parts):
        text = " ".join(parts)
        result = make_ner().extract(text)
        for mention in result.persons:
            assert mention.surface
            assert mention.last
            assert mention.last[0].isupper()
