"""Stopword tests."""

from repro.extraction.stopwords import STOPWORDS, build_stopword_set, is_stopword


class TestStopwords:
    def test_common_words_present(self):
        for word in ("the", "and", "of", "is"):
            assert word in STOPWORDS

    def test_is_stopword_case_insensitive(self):
        assert is_stopword("The")
        assert is_stopword("AND")

    def test_non_stopword(self):
        assert not is_stopword("entity")

    def test_extra_set(self):
        extra = frozenset({"foo"})
        assert is_stopword("foo", extra=extra)
        assert is_stopword("FOO", extra=extra)
        assert not is_stopword("bar", extra=extra)

    def test_build_stopword_set_extends(self):
        combined = build_stopword_set(["Alpha", "beta"])
        assert "alpha" in combined
        assert "beta" in combined
        assert STOPWORDS <= combined

    def test_build_stopword_set_empty(self):
        assert build_stopword_set() == STOPWORDS
