"""Dictionary NER tests."""

from repro.extraction.ner import DictionaryNer, PersonMention


def make_ner():
    return DictionaryNer(
        organizations=["Acme Labs", "Stanford University", "Initech"],
        locations=["Lausanne", "New York"],
        first_names=["William", "Jane"],
        known_surnames=["Cohen"],
    )


class TestOrganizations:
    def test_multiword_match(self):
        result = make_ner().extract("He joined Acme Labs last year")
        assert result.organizations == {"Acme Labs": 1}

    def test_counts_repeats(self):
        result = make_ner().extract("Initech hired Initech alumni")
        assert result.organizations["Initech"] == 2

    def test_longest_match_wins(self):
        ner = DictionaryNer(organizations=["Acme", "Acme Labs"])
        result = ner.extract("Acme Labs ships products")
        assert result.organizations == {"Acme Labs": 1}

    def test_no_partial_lowercase_match(self):
        result = make_ner().extract("the acme labs project")
        assert not result.organizations


class TestLocations:
    def test_location_found(self):
        result = make_ner().extract("Research done in Lausanne yesterday")
        assert result.locations == {"Lausanne": 1}

    def test_two_word_location(self):
        result = make_ner().extract("He moved to New York recently")
        assert result.locations == {"New York": 1}

    def test_org_priority_over_location(self):
        ner = DictionaryNer(organizations=["New York"], locations=["New York"])
        result = ner.extract("Visit New York often")
        assert result.organizations == {"New York": 1}
        assert not result.locations


class TestPersons:
    def test_first_last_pattern(self):
        result = make_ner().extract("William Cohen wrote the paper")
        assert [m.surface for m in result.persons] == ["William Cohen"]
        assert result.persons[0].is_full

    def test_initial_pattern(self):
        result = make_ner().extract("J. Cohen wrote the paper")
        mention = result.persons[0]
        assert mention.surface == "J. Cohen"
        assert not mention.is_full

    def test_bare_known_surname(self):
        result = make_ner().extract("Cohen wrote the paper")
        mention = result.persons[0]
        assert mention.surface == "Cohen"
        assert mention.first is None

    def test_unknown_bare_capitalized_word_ignored(self):
        result = make_ner().extract("Whatever wrote the paper")
        assert not result.persons

    def test_person_counts(self):
        result = make_ner().extract(
            "William Cohen met Jane Doe and William Cohen left")
        counts = result.person_counts()
        assert counts["William Cohen"] == 2
        assert counts["Jane Doe"] == 1

    def test_first_name_gazetteer_required(self):
        result = make_ner().extract("Zorblax Cohen spoke")
        # "Zorblax" is no known first name; but "Cohen" is a known surname.
        surfaces = [m.surface for m in result.persons]
        assert surfaces == ["Cohen"]

    def test_no_person_inside_org(self):
        ner = DictionaryNer(organizations=["William Cohen Institute"],
                            first_names=["William"], known_surnames=["Cohen"])
        result = ner.extract("the William Cohen Institute opened")
        assert result.organizations == {"William Cohen Institute": 1}
        assert not result.persons


class TestTokenBoundary:
    def test_entity_at_end_of_text(self):
        result = make_ner().extract("we visited Initech")
        assert result.organizations == {"Initech": 1}

    def test_initial_at_end_not_person(self):
        result = make_ner().extract("appendix J")
        assert not result.persons

    def test_empty_text(self):
        result = make_ner().extract("")
        assert not result.persons
        assert not result.organizations


class TestPersonMention:
    def test_is_full_semantics(self):
        assert PersonMention("Jane Roe", "Jane", "Roe").is_full
        assert not PersonMention("J. Roe", "J", "Roe").is_full
        assert not PersonMention("Roe", None, "Roe").is_full
