"""Concept extraction tests."""

from collections import Counter

from repro.extraction.concepts import ConceptExtractor


def make_extractor():
    return ConceptExtractor(["kernel methods", "graph theory", "entity resolution"])


class TestExtractCounts:
    def test_finds_phrase(self):
        counts = make_extractor().extract_counts(
            "we study kernel methods daily".split())
        assert counts == {"kernel methods": 1}

    def test_case_insensitive(self):
        counts = make_extractor().extract_counts(
            "Kernel Methods are fun".split())
        assert counts == {"kernel methods": 1}

    def test_counts_repeats(self):
        tokens = "graph theory beats graph theory".split()
        counts = make_extractor().extract_counts(tokens)
        assert counts["graph theory"] == 2

    def test_no_overlap_double_count(self):
        # "kernel methods" consumed; "methods" alone is not a concept.
        extractor = ConceptExtractor(["kernel methods", "methods course"])
        counts = extractor.extract_counts("kernel methods course".split())
        assert counts == {"kernel methods": 1}

    def test_empty_tokens(self):
        assert make_extractor().extract_counts([]) == Counter()

    def test_unknown_phrases_ignored(self):
        counts = make_extractor().extract_counts("totally unrelated words".split())
        assert not counts

    def test_single_word_concepts_supported(self):
        extractor = ConceptExtractor(["ontology"])
        counts = extractor.extract_counts("an ontology matters".split())
        assert counts == {"ontology": 1}


class TestWeightedVector:
    def test_normalized(self):
        counts = Counter({"a b": 3, "c d": 1})
        vector = ConceptExtractor.weighted_vector(counts)
        assert abs(sum(vector.values()) - 1.0) < 1e-12
        assert vector["a b"] == 0.75

    def test_empty_counts(self):
        assert ConceptExtractor.weighted_vector(Counter()) == {}
