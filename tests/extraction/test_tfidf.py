"""TF-IDF vectorizer tests."""

import math

import pytest

from repro.extraction.tfidf import TfidfVectorizer


DOCS = [
    "alpha beta gamma".split(),
    "alpha beta delta".split(),
    "alpha epsilon zeta".split(),
]


class TestFit:
    def test_is_fitted(self):
        vectorizer = TfidfVectorizer()
        assert not vectorizer.is_fitted
        vectorizer.fit(DOCS)
        assert vectorizer.is_fitted

    def test_vocabulary_size(self):
        vectorizer = TfidfVectorizer().fit(DOCS)
        assert vectorizer.vocabulary_size == 6

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="before fit"):
            TfidfVectorizer().transform(["alpha"])


class TestTransform:
    def test_l2_normalized(self):
        vectorizer = TfidfVectorizer().fit(DOCS)
        vector = vectorizer.transform(DOCS[0])
        norm = math.sqrt(sum(v * v for v in vector.values()))
        assert abs(norm - 1.0) < 1e-12

    def test_rare_term_weighs_more(self):
        vectorizer = TfidfVectorizer().fit(DOCS)
        vector = vectorizer.transform("alpha gamma".split())
        # "gamma" appears in one doc, "alpha" in all three.
        assert vector["gamma"] > vector["alpha"]

    def test_unseen_term_gets_max_idf(self):
        vectorizer = TfidfVectorizer().fit(DOCS)
        vector = vectorizer.transform("alpha brandnew".split())
        assert vector["brandnew"] > vector["alpha"]

    def test_empty_document(self):
        vectorizer = TfidfVectorizer().fit(DOCS)
        assert vectorizer.transform([]) == {}

    def test_repeated_terms_log_tf(self):
        vectorizer = TfidfVectorizer().fit(DOCS)
        once = vectorizer.transform(["gamma", "alpha"])
        thrice = vectorizer.transform(["gamma", "gamma", "gamma", "alpha"])
        ratio_once = once["gamma"] / once["alpha"]
        ratio_thrice = thrice["gamma"] / thrice["alpha"]
        expected = 1.0 + math.log(3)
        assert abs(ratio_thrice / ratio_once - expected) < 1e-9


class TestFiltering:
    def test_stopwords_removed(self):
        vectorizer = TfidfVectorizer(stopwords=frozenset({"alpha"})).fit(DOCS)
        vector = vectorizer.transform(DOCS[0])
        assert "alpha" not in vector

    def test_short_tokens_removed(self):
        vectorizer = TfidfVectorizer(min_token_length=3)
        vectorizer.fit([["ab", "abc"]])
        vector = vectorizer.transform(["ab", "abc"])
        assert "ab" not in vector
        assert "abc" in vector

    def test_lowercases(self):
        vectorizer = TfidfVectorizer().fit([["Alpha", "beta"]])
        vector = vectorizer.transform(["ALPHA"])
        assert "alpha" in vector


class TestFitTransform:
    def test_matches_separate_calls(self):
        first = TfidfVectorizer()
        vectors = first.fit_transform(DOCS)
        second = TfidfVectorizer().fit(DOCS)
        assert vectors == [second.transform(doc) for doc in DOCS]
