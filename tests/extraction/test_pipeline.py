"""Extraction pipeline tests (on the generated fixture block)."""

from collections import Counter

from repro.corpus.documents import NameCollection, WebPage
from repro.extraction.pipeline import ExtractionPipeline


class TestExtractBlock:
    def test_one_feature_bundle_per_page(self, block_features, small_block):
        assert set(block_features) == set(small_block.page_ids())

    def test_urls_copied(self, block_features, small_block):
        for page in small_block:
            assert block_features[page.doc_id].url == page.url

    def test_tfidf_present_and_normalized(self, block_features):
        for features in block_features.values():
            assert features.tfidf
            norm = sum(v * v for v in features.tfidf.values()) ** 0.5
            assert abs(norm - 1.0) < 1e-9

    def test_most_pages_have_names(self, block_features):
        with_names = sum(1 for f in block_features.values()
                         if f.most_frequent_name)
        assert with_names >= 0.9 * len(block_features)

    def test_most_frequent_name_is_usually_query(self, block_features,
                                                  small_block):
        query_surname = small_block.query_name.split()[-1]
        matching = sum(
            1 for f in block_features.values()
            if query_surname in f.most_frequent_name)
        assert matching >= 0.6 * len(block_features)

    def test_concept_vectors_normalized(self, block_features):
        for features in block_features.values():
            if features.concept_vector:
                assert abs(sum(features.concept_vector.values()) - 1.0) < 1e-9

    def test_concept_set_matches_vector(self, block_features):
        for features in block_features.values():
            assert set(features.concept_vector) == set(features.concept_set)

    def test_some_pages_missing_features(self, block_features):
        # The generator injects missing-information pages; the block should
        # contain at least one page without organizations or concepts.
        missing = sum(
            1 for f in block_features.values()
            if not f.organizations or not f.concept_set)
        assert missing >= 1

    def test_other_persons_excludes_query_surname(self, block_features,
                                                  small_block):
        query_surname = small_block.query_name.split()[-1].lower()
        for features in block_features.values():
            for name in features.other_persons:
                assert not name.lower().endswith(query_surname)

    def test_n_tokens_positive(self, block_features):
        assert all(f.n_tokens > 0 for f in block_features.values())


class TestExtractCollection:
    def test_covers_all_blocks(self, pipeline, small_dataset):
        features = pipeline.extract_collection(small_dataset)
        expected = {page.doc_id for page in small_dataset.all_pages()}
        assert set(features) == expected


class TestEdgeCases:
    def make_block(self, text):
        page = WebPage(doc_id="x/0", query_name="Jane Roe",
                       url="http://a.org/x", title="t", text=text,
                       person_id="p")
        return NameCollection(query_name="Jane Roe", pages=[page])

    def test_empty_page(self):
        pipeline = ExtractionPipeline()
        features = pipeline.extract_block(self.make_block(""))
        bundle = features["x/0"]
        assert bundle.most_frequent_name == ""
        assert bundle.closest_name_to_query == ""
        assert bundle.organizations == Counter()

    def test_full_form_preferred_over_bare_surname(self):
        pipeline = ExtractionPipeline(first_names=["Jane"],
                                      known_surnames=["Roe"])
        text = "Roe Roe Roe met Jane Roe once"
        features = pipeline.extract_block(self.make_block(text))
        # Bare "Roe" is more frequent, but the full form is preferred.
        assert features["x/0"].most_frequent_name == "Jane Roe"

    def test_closest_name_prefers_query_form(self):
        pipeline = ExtractionPipeline(first_names=["Jane", "Bob"],
                                      known_surnames=["Roe"])
        text = "Bob Smith talked while Jane Roe listened"
        features = pipeline.extract_block(self.make_block(text))
        assert features["x/0"].closest_name_to_query == "Jane Roe"

    def test_from_vocabulary_includes_query_names(self, vocabulary):
        pipeline = ExtractionPipeline.from_vocabulary(
            vocabulary, query_names=["Jane Roe"])
        block = self.make_block("Jane Roe and Roe met")
        features = pipeline.extract_block(block)
        assert features["x/0"].most_frequent_name == "Jane Roe"
