"""Tokenizer tests."""

from repro.extraction.tokenizer import (
    is_capitalized,
    is_initial,
    lower_tokens,
    sentences,
    tokenize,
)


class TestTokenize:
    def test_basic(self):
        assert tokenize("hello world") == ["hello", "world"]

    def test_strips_punctuation(self):
        assert tokenize("one, two. three!") == ["one", "two", "three"]

    def test_preserves_case(self):
        assert tokenize("Acme Labs builds things") == [
            "Acme", "Labs", "builds", "things"]

    def test_initial_period_dropped(self):
        assert tokenize("J. Cohen") == ["J", "Cohen"]

    def test_keeps_internal_hyphen_apostrophe(self):
        assert tokenize("state-of-the-art O'Brien") == ["state-of-the-art", "O'Brien"]

    def test_drops_numbers(self):
        assert tokenize("in 2009 we built x9") == ["in", "we", "built", "x"]

    def test_empty(self):
        assert tokenize("") == []

    def test_docstring_example(self):
        assert tokenize("Prof. J. Cohen works at Acme Labs.") == [
            "Prof", "J", "Cohen", "works", "at", "Acme", "Labs"]


class TestSentences:
    def test_split_on_periods(self):
        assert sentences("One two. Three four. Five.") == [
            "One two.", "Three four.", "Five."]

    def test_no_terminal_punctuation(self):
        assert sentences("just one fragment") == ["just one fragment"]

    def test_empty(self):
        assert sentences("  ") == []


class TestLowerTokens:
    def test_lowercases(self):
        assert lower_tokens("Acme Labs") == ["acme", "labs"]


class TestPredicates:
    def test_is_capitalized(self):
        assert is_capitalized("Word")
        assert not is_capitalized("word")
        assert not is_capitalized("")

    def test_is_initial(self):
        assert is_initial("J")
        assert not is_initial("Jo")
        assert not is_initial("j")
