"""Unit tests of the scoring-backend contract and registry."""

from __future__ import annotations

import pytest

from repro.core.config import ResolverConfig
from repro.similarity.backends import (
    BACKENDS,
    NumpyBackend,
    PythonBackend,
    ScoringBackend,
    default_backend,
    register_backend,
    resolve_backend,
)


class TestRegistry:
    def test_builtins_registered(self):
        assert "python" in BACKENDS
        assert "numpy" in BACKENDS
        assert isinstance(BACKENDS.get("python"), PythonBackend)
        assert isinstance(BACKENDS.get("numpy"), NumpyBackend)

    def test_resolve_by_name_instance_and_default(self):
        assert isinstance(resolve_backend("numpy"), NumpyBackend)
        instance = PythonBackend()
        assert resolve_backend(instance) is instance
        assert resolve_backend(None).name == default_backend()

    def test_unknown_backend_lists_known_values(self):
        with pytest.raises(ValueError, match="python"):
            resolve_backend("gpu")

    def test_env_var_drives_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert default_backend() == "numpy"
        assert ResolverConfig().backend == "numpy"
        assert isinstance(resolve_backend(None), NumpyBackend)
        monkeypatch.delenv("REPRO_BACKEND")
        assert ResolverConfig().backend == "python"

    def test_config_validates_backend(self):
        with pytest.raises(ValueError, match="scoring backend"):
            ResolverConfig(backend="fortran")

    def test_backend_is_a_runtime_knob_not_an_artifact_field(self):
        """Saved configs stay environment-independent: the fitting
        host's backend is never baked in, the loader's ambient default
        (or an explicit payload key) decides."""
        config = ResolverConfig(backend="numpy")
        payload = config.to_dict()
        assert "backend" not in payload
        assert ResolverConfig.from_dict(payload).backend == \
            default_backend()
        explicit = dict(payload, backend="numpy")
        assert ResolverConfig.from_dict(explicit).backend == "numpy"

    def test_register_custom_backend(self):
        class EchoBackend(ScoringBackend):
            name = "echo-test"

            def block_scores(self, ids, features, functions):
                return {function.name: {} for function in functions}

            def pair_scores(self, function, new, others):
                return [0.0 for _ in others]

        register_backend()(EchoBackend)
        try:
            assert isinstance(resolve_backend("echo-test"), EchoBackend)
            assert ResolverConfig(backend="echo-test").backend == "echo-test"
        finally:
            del BACKENDS._entries["echo-test"]


class TestMissingNumpyFallback:
    def test_degrades_to_scalar_backend_when_kernels_unavailable(
            self, monkeypatch):
        """A numpy-less host serving a backend="numpy" model must score
        through the scalar path (bit-identical), not crash."""
        from repro.corpus.datasets import www05_like
        from repro.core.resolver import EntityResolver

        collection = www05_like(seed=2, pages_per_name=6,
                                names=["William Cohen"])
        pipeline = EntityResolver(ResolverConfig()).pipeline_for(collection)
        block = collection.collections[0]
        features = pipeline.extract_block(block)
        from repro.similarity.functions import default_functions

        backend = NumpyBackend()
        monkeypatch.setattr(NumpyBackend, "_kernels", lambda self: None)
        scores = backend.block_scores(block.page_ids(), features,
                                      default_functions())
        reference = PythonBackend().block_scores(block.page_ids(), features,
                                                 default_functions())
        assert scores == reference
        pages = list(features.values())
        assert backend.pair_scores(default_functions()[0], pages[0],
                                   pages[1:]) == \
            PythonBackend().pair_scores(default_functions()[0], pages[0],
                                        pages[1:])


class TestKernelDispatch:
    def test_string_functions_have_no_full_kernel_path(self):
        from repro.similarity import batch
        from repro.similarity.functions import function_by_name

        for name in ("F3", "F7"):
            assert batch.kernel_for(function_by_name(name)) is None
        f2 = batch.kernel_for(function_by_name("F2"))
        assert f2 is not None and f2.one_vs_many is None

    def test_replaced_builtin_scorer_disables_kernel(self):
        from repro.similarity import batch
        from repro.similarity.base import SimilarityFunction

        impostor = SimilarityFunction(
            "F8", "TF-IDF vector", "cosine",
            lambda left, right: 0.5)
        assert batch.kernel_for(impostor) is None

    def test_custom_function_falls_back_to_scalar_sweep(self):
        from repro.corpus.datasets import www05_like
        from repro.core.resolver import EntityResolver
        from repro.similarity.base import SimilarityFunction

        collection = www05_like(seed=2, pages_per_name=6,
                                names=["William Cohen"])
        pipeline = EntityResolver(ResolverConfig()).pipeline_for(collection)
        block = collection.collections[0]
        features = pipeline.extract_block(block)
        constant = SimilarityFunction("F_const", "nothing", "constant",
                                      lambda left, right: 0.25)
        scores = NumpyBackend().block_scores(block.page_ids(), features,
                                             [constant])
        n = len(block.pages)
        assert len(scores["F_const"]) == n * (n - 1) // 2
        assert set(scores["F_const"].values()) == {0.25}
