"""Similarity measure tests."""

import pytest

from repro.similarity.measures import (
    cosine,
    dice,
    extended_jaccard,
    jaccard,
    overlap_coefficient,
    pearson_similarity,
)


class TestCosine:
    def test_identical(self):
        vector = {"a": 1.0, "b": 2.0}
        assert cosine(vector, vector) == pytest.approx(1.0)

    def test_orthogonal(self):
        assert cosine({"a": 1.0}, {"b": 1.0}) == 0.0

    def test_empty_is_zero(self):
        assert cosine({}, {"a": 1.0}) == 0.0
        assert cosine({}, {}) == 0.0

    def test_scale_invariant(self):
        left = {"a": 1.0, "b": 2.0}
        scaled = {"a": 10.0, "b": 20.0}
        other = {"a": 3.0, "c": 1.0}
        assert cosine(left, other) == pytest.approx(cosine(scaled, other))

    def test_range(self):
        assert 0.0 <= cosine({"a": 1.0, "b": 0.1}, {"a": 0.2, "c": 5.0}) <= 1.0


class TestPearson:
    def test_identical_perfect(self):
        vector = {"a": 1.0, "b": 2.0, "c": 3.0}
        assert pearson_similarity(vector, vector) == pytest.approx(1.0)

    def test_anticorrelated_is_zero(self):
        left = {"a": 1.0, "b": 0.0}
        right = {"a": 0.0, "b": 1.0}
        # r = -1 maps to 0.0
        assert pearson_similarity(left, right) == pytest.approx(0.0)

    def test_empty_is_zero(self):
        assert pearson_similarity({}, {"a": 1.0}) == 0.0

    def test_single_dimension_zero(self):
        assert pearson_similarity({"a": 1.0}, {"a": 2.0}) == 0.0

    def test_constant_vector_zero(self):
        # Same value on the union support -> zero variance -> 0.0.
        left = {"a": 1.0, "b": 1.0}
        right = {"a": 2.0, "b": 3.0}
        assert pearson_similarity(left, right) == 0.0

    def test_in_unit_interval(self):
        left = {"a": 0.8, "b": 0.1, "c": 0.5}
        right = {"b": 0.9, "c": 0.4, "d": 0.2}
        assert 0.0 <= pearson_similarity(left, right) <= 1.0


class TestExtendedJaccard:
    def test_identical(self):
        vector = {"a": 1.0, "b": 2.0}
        assert extended_jaccard(vector, vector) == pytest.approx(1.0)

    def test_matches_set_jaccard_for_binary(self):
        left = {"a": 1.0, "b": 1.0, "c": 1.0}
        right = {"b": 1.0, "c": 1.0, "d": 1.0}
        assert extended_jaccard(left, right) == pytest.approx(2.0 / 4.0)

    def test_empty_is_zero(self):
        assert extended_jaccard({}, {"a": 1.0}) == 0.0

    def test_disjoint_is_zero(self):
        assert extended_jaccard({"a": 1.0}, {"b": 1.0}) == 0.0


class TestOverlapCoefficient:
    def test_subset_is_one(self):
        assert overlap_coefficient({"a", "b"}, {"a", "b", "c"}) == 1.0

    def test_partial(self):
        assert overlap_coefficient({"a", "b"}, {"b", "c"}) == 0.5

    def test_empty_is_zero(self):
        assert overlap_coefficient(set(), {"a"}) == 0.0

    def test_accepts_counters(self):
        from collections import Counter
        left = Counter({"a": 5, "b": 1})
        right = Counter({"a": 1})
        assert overlap_coefficient(left, right) == 1.0


class TestJaccardAndDice:
    def test_jaccard(self):
        assert jaccard({"a", "b"}, {"b", "c"}) == pytest.approx(1.0 / 3.0)

    def test_dice(self):
        assert dice({"a", "b"}, {"b", "c"}) == pytest.approx(0.5)

    def test_dice_geq_jaccard(self):
        left, right = {"a", "b", "c"}, {"b", "c", "d", "e"}
        assert dice(left, right) >= jaccard(left, right)

    def test_empty(self):
        assert jaccard(set(), {"a"}) == 0.0
        assert dice(set(), set()) == 0.0
