"""Sparse-vector primitive tests."""

import math

import pytest

from repro.similarity.vectors import dot, l2_normalize, mean, norm, norm_squared


class TestDot:
    def test_basic(self):
        assert dot({"a": 2.0, "b": 3.0}, {"a": 4.0, "c": 1.0}) == 8.0

    def test_disjoint(self):
        assert dot({"a": 1.0}, {"b": 1.0}) == 0.0

    def test_empty(self):
        assert dot({}, {"a": 1.0}) == 0.0

    def test_symmetric(self):
        left = {"a": 1.0, "b": 2.0, "c": 3.0}
        right = {"b": 5.0}
        assert dot(left, right) == dot(right, left)


class TestNorm:
    def test_norm(self):
        assert norm({"a": 3.0, "b": 4.0}) == 5.0

    def test_norm_squared(self):
        assert norm_squared({"a": 3.0, "b": 4.0}) == 25.0

    def test_empty(self):
        assert norm({}) == 0.0


class TestMean:
    def test_mean_over_dimension(self):
        assert mean({"a": 2.0, "b": 4.0}, dimension=4) == 1.5

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            mean({"a": 1.0}, dimension=0)


class TestL2Normalize:
    def test_unit_length(self):
        unit = l2_normalize({"a": 3.0, "b": 4.0})
        assert abs(math.sqrt(sum(v * v for v in unit.values())) - 1.0) < 1e-12

    def test_empty_stays_empty(self):
        assert l2_normalize({}) == {}

    def test_zero_vector(self):
        assert l2_normalize({"a": 0.0}) == {}
