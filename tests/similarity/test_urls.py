"""URL similarity tests."""

import pytest

from repro.similarity.urls import domain_similarity, parse_url, url_similarity


class TestParseUrl:
    def test_full_url(self):
        parsed = parse_url("http://example.org/a/b.html")
        assert parsed.domain == "example.org"
        assert parsed.path == "/a/b.html"

    def test_no_scheme(self):
        assert parse_url("example.org/x").domain == "example.org"

    def test_no_path(self):
        parsed = parse_url("http://example.org")
        assert parsed.domain == "example.org"
        assert parsed.path == ""

    def test_lowercases_domain(self):
        assert parse_url("http://Example.ORG/x").domain == "example.org"

    def test_docstring_example(self):
        parsed = parse_url("http://example.org/a/b.html")
        assert (parsed.domain, parsed.path) == ("example.org", "/a/b.html")


class TestDomainSimilarity:
    def test_identical(self):
        assert domain_similarity("a.org", "a.org") == 1.0

    def test_same_registrable_domain(self):
        assert domain_similarity("www.a.org", "people.a.org") == 0.8

    def test_unrelated_is_low(self):
        assert domain_similarity("abcabc.org", "zzz.net") < 0.5

    def test_empty_is_zero(self):
        assert domain_similarity("", "a.org") == 0.0


class TestUrlSimilarity:
    def test_identical(self):
        url = "http://a.org/x/y.html"
        assert url_similarity(url, url) == 1.0

    def test_same_domain_dominates(self):
        same_domain = url_similarity("http://a.org/x", "http://a.org/zzz")
        different = url_similarity("http://a.org/x", "http://bbb.net/x")
        assert same_domain > different

    def test_empty_is_zero(self):
        assert url_similarity("", "http://a.org/x") == 0.0

    def test_in_unit_interval(self):
        value = url_similarity("http://aa.org/b", "http://cc.net/d/e/f")
        assert 0.0 <= value <= 1.0

    def test_domain_weight_parameter(self):
        full_weight = url_similarity("http://a.org/x", "http://a.org/y",
                                     domain_weight=1.0)
        assert full_weight == pytest.approx(1.0)
