"""Tests for the F1–F10 similarity functions."""

from collections import Counter

import pytest

from repro.extraction.features import PageFeatures
from repro.similarity.base import SimilarityFunction
from repro.similarity.functions import (
    ALL_FUNCTION_NAMES,
    SUBSET_I4,
    SUBSET_I7,
    default_functions,
    function_by_name,
    functions_subset,
)


def features(**kwargs):
    return PageFeatures(doc_id=kwargs.pop("doc_id", "x/0"), **kwargs)


class TestRegistry:
    def test_ten_functions(self):
        assert len(default_functions()) == 10
        assert ALL_FUNCTION_NAMES == tuple(f"F{i}" for i in range(1, 11))

    def test_lookup_by_name(self):
        assert function_by_name("F3").name == "F3"

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            function_by_name("F99")

    def test_subsets_match_paper(self):
        assert SUBSET_I4 == ("F4", "F5", "F7", "F9")
        assert SUBSET_I7 == ("F3", "F4", "F5", "F7", "F8", "F9", "F10")

    def test_functions_subset_preserves_order(self):
        subset = functions_subset(["F9", "F2"])
        assert [f.name for f in subset] == ["F9", "F2"]

    def test_repr_mentions_feature(self):
        assert "URL" in repr(function_by_name("F2"))


class TestFunctionBehaviour:
    def test_f1_concept_cosine(self):
        left = features(concept_vector={"a b": 0.5, "c d": 0.5})
        right = features(concept_vector={"a b": 1.0})
        assert 0.0 < function_by_name("F1")(left, right) < 1.0

    def test_f2_url(self):
        left = features(url="http://a.org/x")
        right = features(url="http://a.org/y")
        assert function_by_name("F2")(left, right) > 0.8

    def test_f3_name(self):
        left = features(most_frequent_name="Jane Roe")
        right = features(most_frequent_name="Jane Roe")
        assert function_by_name("F3")(left, right) == 1.0

    def test_f4_concept_overlap(self):
        left = features(concept_set=frozenset({"a b", "c d"}))
        right = features(concept_set=frozenset({"a b"}))
        assert function_by_name("F4")(left, right) == 1.0

    def test_f5_org_overlap(self):
        left = features(organizations=Counter({"Acme Labs": 2}))
        right = features(organizations=Counter({"Acme Labs": 1, "Initech": 1}))
        assert function_by_name("F5")(left, right) == 1.0

    def test_f6_person_overlap(self):
        left = features(other_persons=Counter({"Bob Smith": 1}))
        right = features(other_persons=Counter({"Bob Smith": 2, "Ann Lee": 1}))
        assert function_by_name("F6")(left, right) == 1.0

    def test_f7_closest_name(self):
        left = features(closest_name_to_query="J. Roe")
        right = features(closest_name_to_query="Jane Roe")
        assert function_by_name("F7")(left, right) == 0.95

    def test_f8_tfidf_cosine(self):
        left = features(tfidf={"w1": 0.6, "w2": 0.8})
        right = features(tfidf={"w1": 1.0})
        assert function_by_name("F8")(left, right) == pytest.approx(0.6)

    def test_f9_pearson(self):
        left = features(tfidf={"w1": 0.9, "w2": 0.1, "w3": 0.4})
        right = features(tfidf={"w1": 0.8, "w2": 0.2, "w3": 0.3})
        assert function_by_name("F9")(left, right) > 0.8

    def test_f10_extended_jaccard(self):
        vector = {"w1": 0.5, "w2": 0.5}
        left = features(tfidf=dict(vector))
        right = features(tfidf=dict(vector))
        assert function_by_name("F10")(left, right) == pytest.approx(1.0)


class TestMissingInformation:
    """Empty features must score 0 — the paper's missing-data semantics."""

    @pytest.mark.parametrize("name", ALL_FUNCTION_NAMES)
    def test_empty_features_score_zero(self, name):
        left = features()
        right = features(
            url="http://a.org/x",
            most_frequent_name="Jane Roe",
            closest_name_to_query="Jane Roe",
            concept_vector={"a b": 1.0},
            concept_set=frozenset({"a b"}),
            organizations=Counter({"Acme Labs": 1}),
            other_persons=Counter({"Bob Smith": 1}),
            tfidf={"w": 1.0},
        )
        assert function_by_name(name)(left, right) == 0.0


class TestClamping:
    def test_scorer_clamped(self):
        clamping = SimilarityFunction("T", "test", "test",
                                      lambda a, b: 1.7)
        assert clamping(features(), features()) == 1.0
        negative = SimilarityFunction("T", "test", "test",
                                      lambda a, b: -0.3)
        assert negative(features(), features()) == 0.0


class TestOnRealBlock:
    @pytest.mark.parametrize("name", ALL_FUNCTION_NAMES)
    def test_values_in_unit_interval(self, name, block_graphs):
        values = block_graphs[name].values()
        assert values
        assert all(0.0 <= value <= 1.0 for value in values)

    def test_functions_disagree(self, block_graphs):
        # Different functions must capture different aspects: F2 (URL) and
        # F8 (TF-IDF) must not be identical on a real block.
        assert block_graphs["F2"].weights != block_graphs["F8"].weights

    def test_symmetry_by_construction(self, block_graphs, block_features):
        function = function_by_name("F8")
        ids = sorted(block_features)[:5]
        for i, left in enumerate(ids):
            for right in ids[i + 1:]:
                forward = function(block_features[left], block_features[right])
                backward = function(block_features[right], block_features[left])
                assert forward == pytest.approx(backward)
