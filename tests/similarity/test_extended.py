"""Extended similarity function (F11–F14) tests."""

from collections import Counter

import pytest

from repro.extraction.features import PageFeatures
from repro.similarity.extended import (
    EXTENDED_FUNCTION_NAMES,
    SUBSET_I14,
    extended_function_by_name,
    extended_functions,
    full_battery,
)
from repro.similarity.functions import function_by_name


def features(**kwargs):
    return PageFeatures(doc_id=kwargs.pop("doc_id", "x/0"), **kwargs)


class TestRegistry:
    def test_four_extended_functions(self):
        assert EXTENDED_FUNCTION_NAMES == ("F11", "F12", "F13", "F14")
        assert len(extended_functions()) == 4

    def test_full_battery_is_fourteen(self):
        battery = full_battery()
        assert [f.name for f in battery] == list(SUBSET_I14)
        assert len(battery) == 14

    def test_core_lookup_resolves_extended(self):
        assert function_by_name("F13").name == "F13"

    def test_extended_lookup_resolves_core(self):
        assert extended_function_by_name("F3").name == "F3"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            extended_function_by_name("F99")


class TestBehaviour:
    def test_f11_locations(self):
        left = features(locations=Counter({"Lausanne": 1}))
        right = features(locations=Counter({"Lausanne": 2, "Geneva": 1}))
        assert extended_function_by_name("F11")(left, right) == 1.0

    def test_f12_top_terms(self):
        vector = {f"w{i}": 1.0 / (i + 1) for i in range(30)}
        left = features(tfidf=dict(vector))
        right = features(tfidf=dict(vector))
        assert extended_function_by_name("F12")(left, right) == pytest.approx(1.0)

    def test_f12_restricts_to_top_terms(self):
        # Two pages agree only on low-weight tail terms: F12 (top-12 terms)
        # must score 0 while F8 (full vector) scores positive.
        head = {f"h{i}": 1.0 for i in range(12)}
        tail = {"shared": 0.01}
        other_head = {f"g{i}": 1.0 for i in range(12)}
        left = features(tfidf={**head, **tail})
        right = features(tfidf={**other_head, **tail})
        assert extended_function_by_name("F12")(left, right) == 0.0
        assert function_by_name("F8")(left, right) > 0.0

    def test_f13_weighted_jaccard(self):
        left = features(organizations=Counter({"Acme Labs": 2}),
                        locations=Counter({"Lausanne": 1}))
        right = features(organizations=Counter({"Acme Labs": 1}))
        # min-sum = 1, max-sum = 2 + 1 = 3
        assert extended_function_by_name("F13")(left, right) == pytest.approx(1 / 3)

    def test_f14_concept_jaccard(self):
        vector = {"a b": 0.5, "c d": 0.5}
        left = features(concept_vector=dict(vector))
        right = features(concept_vector=dict(vector))
        assert extended_function_by_name("F14")(left, right) == pytest.approx(1.0)

    @pytest.mark.parametrize("name", EXTENDED_FUNCTION_NAMES)
    def test_missing_information_scores_zero(self, name):
        empty = features()
        full = features(
            locations=Counter({"Lausanne": 1}),
            organizations=Counter({"Acme Labs": 1}),
            other_persons=Counter({"Bob Smith": 1}),
            concept_vector={"a b": 1.0},
            tfidf={"w": 1.0},
        )
        assert extended_function_by_name(name)(empty, full) == 0.0

    @pytest.mark.parametrize("name", EXTENDED_FUNCTION_NAMES)
    def test_unit_interval_on_real_block(self, name, small_block,
                                         block_features):
        function = extended_function_by_name(name)
        ids = sorted(block_features)[:8]
        for i, left in enumerate(ids):
            for right in ids[i + 1:]:
                value = function(block_features[left], block_features[right])
                assert 0.0 <= value <= 1.0


class TestResolverIntegration:
    def test_resolver_runs_with_extended_battery(self, small_block,
                                                 block_features):
        from repro.core import EntityResolver, ResolverConfig
        from repro.core.resolver import compute_similarity_graphs
        graphs = compute_similarity_graphs(small_block, block_features,
                                           full_battery())
        resolver = EntityResolver(ResolverConfig(function_names=SUBSET_I14))
        result = resolver.resolve_block(small_block, training_seed=0,
                                        graphs=graphs)
        assert len(result.layer_accuracies) == 14 * 3
