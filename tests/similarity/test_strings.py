"""String similarity tests."""

import pytest

from repro.similarity.strings import (
    jaro,
    jaro_winkler,
    levenshtein,
    name_similarity,
    normalized_edit_similarity,
)


class TestLevenshtein:
    def test_identical(self):
        assert levenshtein("kitten", "kitten") == 0

    def test_classic(self):
        assert levenshtein("kitten", "sitting") == 3

    def test_empty(self):
        assert levenshtein("", "abc") == 3
        assert levenshtein("abc", "") == 3

    def test_symmetric(self):
        assert levenshtein("abcdef", "azced") == levenshtein("azced", "abcdef")

    def test_single_substitution(self):
        assert levenshtein("cat", "car") == 1


class TestNormalizedEditSimilarity:
    def test_identical(self):
        assert normalized_edit_similarity("same", "same") == 1.0

    def test_both_empty(self):
        assert normalized_edit_similarity("", "") == 1.0

    def test_completely_different(self):
        assert normalized_edit_similarity("abc", "xyz") == 0.0

    def test_range(self):
        value = normalized_edit_similarity("window", "widow")
        assert 0.0 < value < 1.0


class TestJaro:
    def test_identical(self):
        assert jaro("martha", "martha") == 1.0

    def test_classic_martha(self):
        assert jaro("martha", "marhta") == pytest.approx(0.9444, abs=1e-4)

    def test_classic_dixon(self):
        assert jaro("dixon", "dicksonx") == pytest.approx(0.7667, abs=1e-4)

    def test_no_match(self):
        assert jaro("abc", "xyz") == 0.0

    def test_empty(self):
        assert jaro("", "abc") == 0.0

    def test_symmetric(self):
        assert jaro("dwayne", "duane") == jaro("duane", "dwayne")


class TestJaroWinkler:
    def test_classic_martha(self):
        assert jaro_winkler("martha", "marhta") == pytest.approx(0.9611, abs=1e-4)

    def test_prefix_boost(self):
        assert jaro_winkler("prefixes", "prefixed") > jaro("prefixes", "prefixed")

    def test_no_boost_without_prefix(self):
        assert jaro_winkler("abcd", "xbcd") == jaro("abcd", "xbcd")

    def test_prefix_cap_at_four(self):
        # Identical 4-char and 6-char prefixes give the same boost factor.
        value = jaro_winkler("abcdefgh", "abcdxxxx")
        jaro_value = jaro("abcdefgh", "abcdxxxx")
        assert value == pytest.approx(jaro_value + 4 * 0.1 * (1 - jaro_value))

    def test_in_unit_interval(self):
        assert 0.0 <= jaro_winkler("a", "zzzzz") <= 1.0


class TestNameSimilarity:
    def test_identical(self):
        assert name_similarity("William Cohen", "William Cohen") == 1.0

    def test_case_insensitive(self):
        assert name_similarity("william cohen", "William Cohen") == 1.0

    def test_bare_surname_compatible(self):
        assert name_similarity("Cohen", "William Cohen") == 0.9

    def test_initial_compatible(self):
        assert name_similarity("W. Cohen", "William Cohen") == 0.95

    def test_conflicting_first_names(self):
        assert name_similarity("William Cohen", "David Cohen") == 0.4

    def test_different_surnames_low(self):
        assert name_similarity("William Cohen", "William Smith") < 0.9

    def test_empty_is_zero(self):
        assert name_similarity("", "William Cohen") == 0.0
        assert name_similarity("", "") == 0.0

    def test_symmetric(self):
        pairs = [("Cohen", "William Cohen"), ("W. Cohen", "William Cohen"),
                 ("A B", "C D")]
        for left, right in pairs:
            assert name_similarity(left, right) == name_similarity(right, left)
