"""ServingEngine under real thread contention.

Every test hammers an engine from a thread pool and then asserts the
determinism contract: the admission journal replayed through a plain
serial session is **bit-identical** to what the concurrent run produced
(:func:`~repro.serving.replay.verify_serial_equivalence`).  Scheduling
is left to the OS on purpose — the equivalence must hold for *any*
interleaving, so these tests are seed-free and still deterministic in
what they assert.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.serving import (
    LoadRequest,
    ServingEngine,
    run_load,
    verify_serial_equivalence,
)

THREADS = 4


def _assert_serial_equivalent(engine):
    report = verify_serial_equivalence(engine)
    assert report["identical"], report["diffs"][:5]
    return report


class TestConcurrentDeterminism:
    def test_same_name_stampede(self, serving_model, pipeline, small_block,
                                all_features):
        """All workers hit one hot name: the coalescing fast path."""
        engine = ServingEngine(serving_model, pipeline=pipeline,
                               max_batch=8, batch_window=0.002,
                               record_journal=True)
        pages = list(small_block.pages)
        feats = {p.doc_id: all_features[p.doc_id] for p in pages}
        engine.resolve(pages[:10], features=feats)
        requests = [LoadRequest(pages=[p],
                                features={p.doc_id: feats[p.doc_id]})
                    for p in pages[10:]]
        report = run_load(engine, requests, threads=THREADS)
        assert report.failed == 0, report.errors
        assert report.completed == len(requests)
        assert engine.stats.bootstraps == 1  # the warm batch, never again
        _assert_serial_equivalent(engine)

    def test_mixed_names_and_nameless_pages(self, serving_model, pipeline,
                                            small_dataset, all_features,
                                            warm_requests):
        """Named and token-routed nameless traffic interleaved."""
        engine = ServingEngine(serving_model, pipeline=pipeline,
                               record_journal=True)
        requests = warm_requests(head=15)
        for name in small_dataset.query_names():
            for page in small_dataset.by_name(name).pages[15:]:
                requests.append(LoadRequest(
                    pages=[replace(page, query_name="")],
                    features={page.doc_id: all_features[page.doc_id]}))
        report = run_load(engine, requests, threads=THREADS)
        # Unroutable nameless pages are legal rejections; determinism
        # still has to hold over everything that was admitted.
        assert report.completed + report.failed == len(requests)
        _assert_serial_equivalent(engine)
        assert engine.snapshot.session.stats.routed_pages > 0

    def test_eviction_under_load(self, serving_model, pipeline,
                                 warm_requests, single_page_requests):
        """An LRU of 2 under three names: constant evict/rebuild churn."""
        engine = ServingEngine(serving_model, pipeline=pipeline,
                               max_blocks=2, record_journal=True)
        requests = warm_requests(head=10) + single_page_requests(skip=10)
        report = run_load(engine, requests, threads=THREADS)
        assert report.failed == 0, report.errors
        _assert_serial_equivalent(engine)
        assert engine.snapshot.session.stats.evicted_blocks > 0

    def test_hot_swap_under_load(self, serving_model, second_model,
                                 pipeline, single_page_requests):
        """A mid-traffic swap loses nothing and both journals replay."""
        engine = ServingEngine(serving_model, pipeline=pipeline,
                               record_journal=True)
        requests = single_page_requests()
        report = run_load(engine, requests, threads=THREADS,
                          swap_plan={len(requests) // 2: second_model})
        assert report.failed == 0, report.errors
        assert engine.stats.swaps == 1
        assert engine.snapshot.version == 2
        replay = _assert_serial_equivalent(engine)
        assert replay["versions"] == [1, 2]
        assert engine.stats.swap_stall_seconds < 0.1

    def test_queue_depth_one_serializes_without_deadlock(self,
                                                         serving_model,
                                                         pipeline,
                                                         small_block,
                                                         all_features):
        """Full backpressure: one admission slot, many callers."""
        engine = ServingEngine(serving_model, pipeline=pipeline,
                               queue_depth=1, record_journal=True)
        pages = list(small_block.pages)
        feats = {p.doc_id: all_features[p.doc_id] for p in pages}
        engine.resolve(pages[:10], features=feats)
        requests = [LoadRequest(pages=[p],
                                features={p.doc_id: feats[p.doc_id]})
                    for p in pages[10:]]
        report = run_load(engine, requests, threads=THREADS)
        assert report.failed == 0, report.errors
        assert report.completed == len(requests)
        _assert_serial_equivalent(engine)

    @pytest.mark.parametrize("batch_window", [0.0, 0.002])
    def test_window_setting_never_changes_results(self, serving_model,
                                                  pipeline, warm_requests,
                                                  single_page_requests,
                                                  batch_window):
        """The batching knobs trade latency, never correctness: the
        final partitions depend only on admission order, which replay
        normalizes away."""
        engine = ServingEngine(serving_model, pipeline=pipeline,
                               batch_window=batch_window, max_batch=4,
                               record_journal=True)
        requests = warm_requests(head=10) + single_page_requests(skip=10)
        report = run_load(engine, requests, threads=THREADS)
        assert report.failed == 0, report.errors
        _assert_serial_equivalent(engine)
