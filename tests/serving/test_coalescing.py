"""coalesced_pair_scores — bit-identity with sequential adds.

The coalescing sweep's contract is tolerance-zero: feeding its scores
into ``add_page(..., scores=...)`` must reproduce, to the last bit, the
assignments and partitions of adding the same pages one at a time with
no precomputed scores — on every scoring backend (the reverse-add-order
block layout exists precisely so argument-order-asymmetric functions
like F9 stay bitwise equal; see the module docstring of
:mod:`repro.serving.coalescing`).
"""

from __future__ import annotations

import pytest

from repro.core.config import ResolverConfig
from repro.core.resolver import EntityResolver
from repro.pipeline.session import ResolutionSession
from repro.serving import coalesced_pair_scores


@pytest.fixture(scope="module", params=["python", "numpy"])
def backend_model(request, small_block, block_features):
    """A model fitted once per scoring backend."""
    return EntityResolver(ResolverConfig(backend=request.param)).fit(
        small_block, training_seed=0, features=block_features)


@pytest.fixture()
def backend_session_pair(backend_model, small_block, block_features,
                         pipeline):
    """Two identically bootstrapped fresh sessions on one backend."""
    base = list(small_block.pages)[:20]
    feats = {p.doc_id: block_features[p.doc_id] for p in base}
    sessions = []
    for _ in range(2):
        session = ResolutionSession(backend_model, pipeline=pipeline)
        session.resolve(base, features=feats)
        sessions.append(session)
    return sessions


@pytest.fixture()
def incrementals(backend_session_pair, small_block):
    name = small_block.query_name
    return [session._prepared[name].incremental
            for session in backend_session_pair]


@pytest.fixture(scope="module")
def tail_features(small_block, block_features):
    return [block_features[p.doc_id] for p in list(small_block.pages)[20:26]]


class TestBitIdentity:
    def test_coalesced_adds_match_sequential_adds(self, incrementals,
                                                  tail_features):
        sequential, coalesced = incrementals
        scores = coalesced_pair_scores(coalesced, tail_features)
        assert scores is not None
        for features in tail_features:
            a = sequential.add_page(features)
            b = coalesced.add_page(features, scores=scores)
            # Dataclass equality covers doc id, entity id, novelty flag
            # and the link probability as an exact float.
            assert a == b, (a, b)
        assert sequential.clusters() == coalesced.clusters()

    def test_scores_cover_exactly_the_sequential_pairs(self, incrementals,
                                                       tail_features):
        from repro.graph.entity_graph import pair_key
        incremental = incrementals[1]
        existing = [page.doc_id for page in incremental.indexed_features()]
        new_ids = [page.doc_id for page in tail_features]
        scores = coalesced_pair_scores(incremental, tail_features)
        expected = {
            pair_key(new_id, other)
            for index, new_id in enumerate(new_ids)
            for other in existing + new_ids[:index]
        }
        for name in incremental.scoring_function_names():
            assert set(scores[name]) == expected


class TestFallbacks:
    def test_empty_batch_returns_none(self, incrementals):
        assert coalesced_pair_scores(incrementals[1], []) is None

    def test_duplicate_within_batch_returns_none(self, incrementals,
                                                 tail_features):
        batch = [tail_features[0], tail_features[1], tail_features[0]]
        assert coalesced_pair_scores(incrementals[1], batch) is None

    def test_duplicate_against_index_returns_none(self, incrementals,
                                                  tail_features,
                                                  block_features,
                                                  small_block):
        indexed = block_features[list(small_block.pages)[0].doc_id]
        batch = [tail_features[0], indexed]
        assert coalesced_pair_scores(incrementals[1], batch) is None
