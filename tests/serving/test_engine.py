"""ServingEngine — single-threaded semantics.

The engine's single-caller behavior must be indistinguishable from a
plain :class:`~repro.pipeline.session.ResolutionSession`: same
assignments, same partitions, same LRU bookkeeping, same rejections.
Concurrency is exercised separately in ``test_concurrency.py``.
"""

from __future__ import annotations

import pytest

from repro.pipeline.session import ResolutionSession
from repro.serving import ServingEngine, verify_serial_equivalence


@pytest.fixture()
def engine(serving_model, pipeline):
    return ServingEngine(serving_model, pipeline=pipeline,
                         record_journal=True)


class TestSingleThreadParity:
    def test_resolve_matches_plain_session(self, engine, serving_model,
                                           pipeline, small_dataset,
                                           all_features):
        session = ResolutionSession(serving_model, pipeline=pipeline)
        for name in small_dataset.query_names():
            pages = list(small_dataset.by_name(name).pages)
            feats = {p.doc_id: all_features[p.doc_id] for p in pages}
            base, rest = pages[:20], pages[20:]
            assert (engine.resolve(base, features=feats)
                    == session.resolve(base, features=feats))
            for page in rest:
                assert (engine.resolve(page, features=feats)
                        == session.resolve(page, features=feats))
        for name in small_dataset.query_names():
            assert engine.clusters(name) == session.clusters(name)
        assert engine.prepared_names() == session.prepared_names()

    def test_single_thread_run_replays_identically(self, engine,
                                                   small_dataset,
                                                   all_features):
        for name in small_dataset.query_names():
            pages = list(small_dataset.by_name(name).pages)
            feats = {p.doc_id: all_features[p.doc_id] for p in pages}
            engine.resolve(pages[:15], features=feats)
            for page in pages[15:]:
                engine.resolve(page, features=feats)
        report = verify_serial_equivalence(engine)
        assert report["identical"], report["diffs"]
        assert report["versions"] == [1]
        assert report["units"] == engine.stats.units

    def test_stats_track_requests_pages_and_lru(self, engine, small_block,
                                                all_features):
        pages = list(small_block.pages)
        feats = {p.doc_id: all_features[p.doc_id] for p in pages}
        engine.resolve(pages[:10], features=feats)
        for page in pages[10:14]:
            engine.resolve(page, features=feats)
        stats = engine.stats
        assert stats.requests == 5
        assert stats.pages == 14
        assert stats.bootstraps == 1
        assert stats.lru_hits == 4  # every incremental found the block hot
        assert stats.failed_requests == 0
        assert stats.latency.count == 5
        assert 0.0 < stats.p50_request_seconds <= stats.p99_request_seconds


class TestValidation:
    @pytest.mark.parametrize("knobs", [
        {"max_batch": 0},
        {"batch_window": -0.001},
        {"queue_depth": 0},
    ])
    def test_invalid_knobs_raise(self, serving_model, pipeline, knobs):
        with pytest.raises(ValueError):
            ServingEngine(serving_model, pipeline=pipeline, **knobs)

    def test_unknown_name_rejected_atomically(self, engine, small_block,
                                              all_features):
        from dataclasses import replace
        pages = list(small_block.pages)
        feats = {p.doc_id: all_features[p.doc_id] for p in pages}
        stranger = replace(pages[0], query_name="No Such Person")
        with pytest.raises(KeyError):
            engine.resolve([stranger, *pages[1:4]], features=feats)
        # Nothing from the rejected request leaked into engine state.
        assert engine.stats.pages == 0
        assert engine.journal == []
        assert engine.prepared_names() == []
        # The engine stays serviceable.
        assert engine.resolve(pages[:5], features=feats)

    def test_duplicate_page_fails_only_that_request(self, engine,
                                                    small_block,
                                                    all_features):
        pages = list(small_block.pages)
        feats = {p.doc_id: all_features[p.doc_id] for p in pages}
        engine.resolve(pages[:10], features=feats)
        with pytest.raises(ValueError):
            engine.resolve(pages[0], features=feats)
        assert engine.stats.failed_requests == 1
        assert engine.resolve(pages[10], features=feats)
        # The failed unit fails identically under serial replay.
        report = verify_serial_equivalence(engine)
        assert report["identical"], report["diffs"]


class TestSubmitFlush:
    def test_submitted_futures_complete_on_flush(self, engine, small_block,
                                                 all_features):
        pages = list(small_block.pages)
        feats = {p.doc_id: all_features[p.doc_id] for p in pages}
        engine.resolve(pages[:10], features=feats)
        futures = [engine.submit(page, features=feats)
                   for page in pages[10:14]]
        assert not any(future.done() for future in futures)
        engine.flush()
        assignments = [future.result(timeout=5) for future in futures]
        assert [a.doc_id for (a,) in assignments] \
            == [page.doc_id for page in pages[10:14]]
        report = verify_serial_equivalence(engine)
        assert report["identical"], report["diffs"]


class TestSwap:
    def test_swap_publishes_fresh_generation(self, engine, second_model,
                                             small_block, all_features):
        pages = list(small_block.pages)
        feats = {p.doc_id: all_features[p.doc_id] for p in pages}
        engine.resolve(pages[:10], features=feats)
        before = engine.snapshot
        replacement = engine.swap(second_model)
        assert engine.snapshot is replacement
        assert replacement.version == 2
        assert list(engine.snapshots) == [1, 2]
        assert engine.stats.swaps == 1
        # Prepared state does not carry over; the old snapshot keeps its.
        assert engine.prepared_names() == []
        assert before.session.prepared_names() == [small_block.query_name]
        # Same doc ids are fresh to the new generation.
        engine.resolve(pages[:10], features=feats)
        report = verify_serial_equivalence(engine)
        assert report["identical"], report["diffs"]
        assert report["versions"] == [1, 2]

    def test_swap_inherits_pipeline_when_not_given(self, engine,
                                                   second_model):
        replacement = engine.swap(second_model)
        assert replacement.pipeline is engine.snapshots[1].pipeline
