"""Serving fixtures: models fitted over the full small dataset.

The engine tests need every block fitted (requests fan out across all
three names), unlike the session tests which fit one block.  Two
training seeds give the hot-swap tests a genuinely different second
generation.
"""

from __future__ import annotations

import pytest

from repro.core.config import ResolverConfig
from repro.core.resolver import EntityResolver
from repro.serving import LoadRequest


@pytest.fixture(scope="package")
def serving_model(small_dataset, pipeline):
    return EntityResolver(ResolverConfig()).fit(
        small_dataset, training_seed=0, pipeline=pipeline)


@pytest.fixture(scope="package")
def second_model(small_dataset, pipeline):
    return EntityResolver(ResolverConfig()).fit(
        small_dataset, training_seed=1, pipeline=pipeline)


@pytest.fixture(scope="package")
def all_features(small_dataset, pipeline):
    features = {}
    for name in small_dataset.query_names():
        features.update(pipeline.extract_block(small_dataset.by_name(name)))
    return features


@pytest.fixture(scope="package")
def single_page_requests(small_dataset, all_features):
    """One single-page LoadRequest per page past ``skip``, name-major."""
    def build(skip=0):
        requests = []
        for name in small_dataset.query_names():
            for page in small_dataset.by_name(name).pages[skip:]:
                requests.append(LoadRequest(
                    pages=[page],
                    features={page.doc_id: all_features[page.doc_id]}))
        return requests
    return build


@pytest.fixture(scope="package")
def warm_requests(small_dataset, all_features):
    """One ``head``-page warm batch per name."""
    def build(head):
        requests = []
        for name in small_dataset.query_names():
            pages = list(small_dataset.by_name(name).pages)[:head]
            requests.append(LoadRequest(
                pages=pages,
                features={p.doc_id: all_features[p.doc_id] for p in pages}))
        return requests
    return build
