"""Edge cases and failure injection across the stack."""

import pytest

from repro.core import EntityResolver, ResolverConfig
from repro.core.labels import TrainingSample
from repro.core.resolver import compute_similarity_graphs
from repro.corpus.datasets import custom_dataset
from repro.corpus.documents import NameCollection, WebPage
from repro.corpus.generator import GeneratorConfig
from repro.extraction.pipeline import ExtractionPipeline
from repro.graph.validation import is_partition
from repro.similarity.functions import default_functions


def tiny_block(n_pages=2, n_persons=1):
    dataset = custom_dataset(
        ["Max Tiny"], seed=0,
        config=GeneratorConfig(pages_per_name=n_pages),
        cluster_counts={"Max Tiny": n_persons})
    return dataset, dataset.by_name("Max Tiny")


class TestTinyBlocks:
    def test_two_pages_same_person(self):
        dataset, block = tiny_block(n_pages=2, n_persons=1)
        resolver = EntityResolver(ResolverConfig())
        result = resolver.resolve_collection(dataset, training_seed=0)
        assert is_partition(
            [set(c) for c in result.blocks[0].predicted], block.page_ids())

    def test_two_pages_two_persons(self):
        dataset, block = tiny_block(n_pages=2, n_persons=2)
        resolver = EntityResolver(ResolverConfig())
        result = resolver.resolve_collection(dataset, training_seed=0)
        assert result.blocks[0].predicted.n_items() == 2

    def test_single_person_block_scores_well(self):
        dataset, block = tiny_block(n_pages=10, n_persons=1)
        resolver = EntityResolver(ResolverConfig())
        result = resolver.resolve_collection(dataset, training_seed=0)
        # All pairs are positive; the resolver should find one cluster.
        assert result.blocks[0].report.recall > 0.5


class TestDegenerateInputs:
    def test_pages_with_identical_text(self):
        pages = [
            WebPage(doc_id=f"x/{i}", query_name="Jane Roe",
                    url="http://a.org/x", title="t",
                    text="same words everywhere on this page",
                    person_id="p0")
            for i in range(4)
        ]
        block = NameCollection(query_name="Jane Roe", pages=pages)
        pipeline = ExtractionPipeline(first_names=["Jane"],
                                      known_surnames=["Roe"])
        features = pipeline.extract_block(block)
        graphs = compute_similarity_graphs(block, features,
                                           default_functions())
        # Identical pages: similarity 1.0 under content measures.
        assert all(value == pytest.approx(1.0)
                   for value in graphs["F8"].values())

    def test_resolver_on_identical_pages(self):
        pages = [
            WebPage(doc_id=f"x/{i}", query_name="Jane Roe",
                    url="http://a.org/x", title="t",
                    text="Jane Roe writes about chemistry and chemistry",
                    person_id="p0")
            for i in range(4)
        ]
        block = NameCollection(query_name="Jane Roe", pages=pages)
        pipeline = ExtractionPipeline(first_names=["Jane"],
                                      known_surnames=["Roe"])
        resolver = EntityResolver(ResolverConfig())
        result = resolver.resolve_block(block, training_seed=0,
                                        pipeline=pipeline)
        assert len(result.predicted) == 1

    def test_training_sample_with_single_pair(self):
        dataset, block = tiny_block(n_pages=2, n_persons=2)
        resolver = EntityResolver(ResolverConfig(training_fraction=0.01))
        result = resolver.resolve_collection(dataset, training_seed=0)
        assert result.blocks  # must not crash on a one-pair sample

    def test_all_criteria_on_degenerate_training(self):
        """Criteria must fit even when every training value is identical."""
        from repro.core.decisions import build_criteria
        data = [(0.5, True)] * 5
        for criterion in build_criteria(("threshold", "equal_width", "kmeans")):
            fitted = criterion.fit(data)
            assert fitted.decide(0.5) in (True, False)
            assert 0.0 <= fitted.link_probability(0.5) <= 1.0


class TestTrainingSampleEdge:
    def test_full_fraction_uses_everything(self):
        dataset, block = tiny_block(n_pages=6, n_persons=2)
        resolver = EntityResolver(ResolverConfig(training_fraction=1.0))
        result = resolver.resolve_collection(dataset, training_seed=0)
        # With the full sample the resolver sees perfect supervision and
        # must do no worse than random on this tiny block.
        assert result.blocks[0].report.fp > 0.3

    def test_labels_propagate_correctly(self):
        dataset, block = tiny_block(n_pages=8, n_persons=2)
        training = TrainingSample.from_pairs(
            [(pair, label) for pair, label in
             __import__("repro.ml.sampling", fromlist=["all_labeled_pairs"])
             .all_labeled_pairs(block)])
        truth = block.ground_truth()
        for (left, right), label in training.pairs:
            assert label == (truth[left] == truth[right])
