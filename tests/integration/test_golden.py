"""Golden regression: frozen similarity values and resolutions.

``tests/data/golden/similarity_golden.json`` freezes the exact
per-function similarity graphs (full battery) and resolved clusterings
of a small deterministic corpus.  Both scoring backends must reproduce
every stored value at **tolerance zero** — a single flipped ulp anywhere
in extraction, the measures, or a backend kernel fails this suite
loudly.  Regenerate intentionally with
``PYTHONPATH=src python scripts/regenerate_goldens.py`` (see
``docs/testing.md``).
"""

from __future__ import annotations

import importlib.util
import json
import struct
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
GOLDEN_PATH = REPO_ROOT / "tests" / "data" / "golden" / \
    "similarity_golden.json"

_spec = importlib.util.spec_from_file_location(
    "regenerate_goldens", REPO_ROOT / "scripts" / "regenerate_goldens.py")
regenerate_goldens = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(regenerate_goldens)

BACKENDS = ("python", "numpy")


def bits(value: float) -> bytes:
    return struct.pack("<d", value)


@pytest.fixture(scope="module")
def golden():
    assert GOLDEN_PATH.exists(), (
        f"missing golden fixture {GOLDEN_PATH}; run "
        "PYTHONPATH=src python scripts/regenerate_goldens.py")
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module", params=BACKENDS)
def recomputed(request):
    """The golden payload rebuilt from scratch with one backend.

    Built in a ``PYTHONHASHSEED=0`` subprocess like the stored fixture
    was: similarity values are hash-independent, but the resolution
    stages' set iteration is only byte-stable under a pinned seed.
    """
    return request.param, regenerate_goldens.build_golden_pinned(
        request.param)


class TestGoldenFixture:
    def test_recipe_unchanged(self, golden):
        """The frozen corpus recipe must match the generator's."""
        assert golden["dataset"] == regenerate_goldens.DATASET

    def test_similarity_values_drift_free(self, golden, recomputed):
        backend, rebuilt = recomputed
        assert rebuilt["graphs"].keys() == golden["graphs"].keys()
        for block, per_function in golden["graphs"].items():
            fresh_block = rebuilt["graphs"][block]
            assert fresh_block.keys() == per_function.keys(), block
            for function, stored in per_function.items():
                fresh = fresh_block[function]
                assert len(fresh) == len(stored), (backend, block, function)
                for (left, right, value), (fresh_left, fresh_right,
                                           fresh_value) in zip(stored,
                                                               fresh):
                    assert (left, right) == (fresh_left, fresh_right)
                    assert bits(value) == bits(fresh_value), (
                        f"{backend} backend drifted on {block}/{function} "
                        f"pair ({left}, {right}): stored {value!r}, "
                        f"recomputed {fresh_value!r}")

    def test_resolution_drift_free(self, golden, recomputed):
        backend, rebuilt = recomputed
        assert rebuilt["resolution"].keys() == golden["resolution"].keys()
        for block, stored in golden["resolution"].items():
            fresh = rebuilt["resolution"][block]
            assert fresh["clusters"] == stored["clusters"], (backend, block)
            for metric in ("fp", "f1", "rand"):
                assert bits(fresh[metric]) == bits(stored[metric]), (
                    f"{backend} backend drifted on {block} metric "
                    f"{metric}: stored {stored[metric]!r}, recomputed "
                    f"{fresh[metric]!r}")

    def test_goldens_cover_full_battery(self, golden):
        from repro.similarity.extended import SUBSET_I14

        for per_function in golden["graphs"].values():
            assert set(per_function) == set(SUBSET_I14)
