"""Fast shape-claim smoke tests (scaled-down versions of the benchmarks).

The benchmark suite asserts the paper's shape claims at full scale; these
integration tests check the load-bearing ones on a small dataset so a
plain ``pytest tests/`` run already guards the reproduction's substance.
"""

import pytest

from repro.core.config import table2_config
from repro.corpus.datasets import www05_like
from repro.experiments.figures import figure1_series
from repro.experiments.runner import ExperimentContext, run_config


@pytest.fixture(scope="module")
def context():
    dataset = www05_like(seed=5, pages_per_name=40,
                         names=["William Cohen", "Andrew Mccallum",
                                "Tom Mitchell", "Lynn Voss",
                                "Adam Cheyer", "Fernando Pereira"])
    return ExperimentContext.prepare(dataset)


@pytest.fixture(scope="module")
def seeds(context):
    return context.seeds(n_runs=2, base_seed=0)


class TestShapeClaims:
    def test_s1_region_accuracy_varies(self, context):
        points = figure1_series(context, function_name="F8", seed=0)
        accuracies = [point.accuracy for point in points]
        assert max(accuracies) - min(accuracies) > 0.2

    def test_s3_criteria_beat_thresholds(self, context, seeds):
        i10 = run_config(context, table2_config("I10"), seeds).mean().fp
        c10 = run_config(context, table2_config("C10"), seeds).mean().fp
        assert c10 > i10 - 0.005

    def test_s3_more_functions_help(self, context, seeds):
        c4 = run_config(context, table2_config("C4"), seeds).mean().fp
        c10 = run_config(context, table2_config("C10"), seeds).mean().fp
        assert c10 >= c4 - 0.03

    def test_s4_best_graph_vs_weighted(self, context, seeds):
        c10 = run_config(context, table2_config("C10"), seeds).mean().fp
        weighted = run_config(context, table2_config("W"), seeds).mean().fp
        assert c10 >= weighted - 0.02

    def test_s5_winning_layer_varies(self, context, seeds):
        from repro.core.resolver import EntityResolver
        resolver = EntityResolver(table2_config("C10"))
        chosen = set()
        for block in context.collection:
            resolution = resolver.resolve_block(
                block, training_seed=seeds[0],
                graphs=context.graphs_by_name[block.query_name])
            chosen.add(resolution.chosen_layer)
        assert len(chosen) >= 2
