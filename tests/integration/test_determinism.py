"""Determinism guarantees across the whole stack.

Every stochastic component is seeded; identical seeds must give
bit-identical artifacts end to end, and nothing may touch the global RNG.
"""

import random

from repro import EntityResolver, ResolverConfig, weps2_like, www05_like
from repro.experiments.figures import figure1_series
from repro.experiments.runner import ExperimentContext


class TestCorpusDeterminism:
    def test_same_seed_same_corpus(self):
        first = www05_like(seed=9, pages_per_name=15, names=["Andrew Ng"])
        second = www05_like(seed=9, pages_per_name=15, names=["Andrew Ng"])
        assert ([(p.doc_id, p.url, p.title, p.text, p.person_id)
                 for p in first.all_pages()]
                == [(p.doc_id, p.url, p.title, p.text, p.person_id)
                    for p in second.all_pages()])

    def test_weps_deterministic(self):
        first = weps2_like(seed=4, pages_per_name=12, names=["Frank Keller"])
        second = weps2_like(seed=4, pages_per_name=12, names=["Frank Keller"])
        assert ([p.text for p in first.all_pages()]
                == [p.text for p in second.all_pages()])


class TestResolutionDeterminism:
    def test_identical_resolutions(self, small_dataset):
        resolver = EntityResolver(ResolverConfig())
        first = resolver.resolve_collection(small_dataset, training_seed=3)
        second = resolver.resolve_collection(small_dataset, training_seed=3)
        for left, right in zip(first.blocks, second.blocks):
            assert left.predicted == right.predicted
            assert left.report == right.report
            assert left.chosen_layer == right.chosen_layer

    def test_experiment_context_deterministic(self, small_dataset):
        first = ExperimentContext.prepare(small_dataset)
        second = ExperimentContext.prepare(small_dataset)
        for name in small_dataset.query_names():
            assert (first.graphs_by_name[name]["F8"].weights
                    == second.graphs_by_name[name]["F8"].weights)

    def test_figure1_deterministic(self, small_dataset):
        context = ExperimentContext.prepare(small_dataset)
        assert (figure1_series(context, seed=2)
                == figure1_series(context, seed=2))


class TestGlobalRngIsolation:
    def test_pipeline_does_not_touch_global_random(self, small_dataset):
        random.seed(1234)
        baseline = random.random()

        random.seed(1234)
        resolver = EntityResolver(ResolverConfig(function_names=("F8",)))
        resolver.resolve_collection(small_dataset, training_seed=0)
        www05_like(seed=1, pages_per_name=10, names=["Andrew Ng"])
        assert random.random() == baseline
