"""End-to-end integration tests: generator → extraction → resolution.

These exercise the full Algorithm 1 stack on small but structurally
realistic datasets, including the public package-level API.
"""

import pytest

from repro import EntityResolver, ResolverConfig, www05_like
from repro.core.config import table2_config
from repro.corpus.loaders import load_collection, save_collection
from repro.graph.validation import is_partition


class TestPublicApi:
    def test_quickstart_path(self):
        dataset = www05_like(seed=3, pages_per_name=24,
                             names=["William Cohen", "Adam Cheyer"])
        resolver = EntityResolver(ResolverConfig())
        result = resolver.resolve_collection(dataset, training_seed=0)
        assert len(result.blocks) == 2
        assert 0.0 <= result.mean_report().fp <= 1.0

    def test_version_exposed(self):
        import repro
        assert repro.__version__


class TestFullPipeline:
    def test_resolution_beats_degenerate_baselines(self, small_dataset):
        """The resolver must beat both all-singletons and all-merged."""
        from repro.metrics.clusterings import (
            Clustering,
            clustering_from_assignments,
        )
        from repro.metrics.purity import fp_measure

        resolver = EntityResolver(ResolverConfig())
        result = resolver.resolve_collection(small_dataset, training_seed=0)
        for block_result, block in zip(result.blocks, small_dataset):
            truth = clustering_from_assignments(block.ground_truth())
            singletons = Clustering([{doc} for doc in block.page_ids()])
            merged = Clustering([set(block.page_ids())])
            degenerate_best = max(fp_measure(singletons, truth),
                                  fp_measure(merged, truth))
            # Not required per name (hard names exist), but on average the
            # resolver must add value; track per block for diagnostics.
            block_result.report  # noqa: B018 - documented inspection point
        mean_fp = result.mean_report().fp
        assert mean_fp > 0.6

    def test_round_trip_through_serialization(self, small_dataset, tmp_path):
        """Resolving a reloaded dataset gives identical results."""
        path = tmp_path / "data.json"
        save_collection(small_dataset, path)
        reloaded = load_collection(path)
        resolver = EntityResolver(ResolverConfig(function_names=("F8",)))
        original = resolver.resolve_collection(small_dataset, training_seed=1)
        repeated = resolver.resolve_collection(reloaded, training_seed=1)
        for first, second in zip(original.blocks, repeated.blocks):
            assert first.predicted == second.predicted

    @pytest.mark.parametrize("column", ["I4", "C10", "W"])
    def test_table2_configs_run_end_to_end(self, small_dataset, column):
        resolver = EntityResolver(table2_config(column))
        result = resolver.resolve_collection(small_dataset, training_seed=0)
        for block_result, block in zip(result.blocks, small_dataset):
            assert is_partition(
                [set(c) for c in block_result.predicted], block.page_ids())

    def test_correlation_clustering_end_to_end(self, small_dataset):
        config = ResolverConfig(clusterer="correlation")
        resolver = EntityResolver(config)
        result = resolver.resolve_collection(small_dataset, training_seed=0)
        assert result.mean_report().fp > 0.4
