"""Pairwise precision/recall/F tests."""

import pytest

from repro.metrics.clusterings import Clustering
from repro.metrics.pairwise import PairwiseScores, pairwise_scores


class TestPairwiseScores:
    def test_perfect(self):
        truth = Clustering([{"a", "b"}, {"c"}])
        scores = pairwise_scores(truth, truth)
        assert scores.precision == 1.0
        assert scores.recall == 1.0
        assert scores.f1 == 1.0

    def test_all_singletons_prediction(self):
        predicted = Clustering([{"a"}, {"b"}, {"c"}])
        truth = Clustering([{"a", "b", "c"}])
        scores = pairwise_scores(predicted, truth)
        assert scores.true_positives == 0
        assert scores.false_negatives == 3
        assert scores.recall == 0.0
        assert scores.precision == 1.0  # no predicted positives

    def test_all_merged_prediction(self):
        predicted = Clustering([{"a", "b", "c", "d"}])
        truth = Clustering([{"a", "b"}, {"c", "d"}])
        scores = pairwise_scores(predicted, truth)
        assert scores.true_positives == 2
        assert scores.false_positives == 4
        assert scores.recall == 1.0
        assert scores.precision == pytest.approx(2.0 / 6.0)

    def test_counts_explicit_example(self):
        predicted = Clustering([{"a", "b", "c"}, {"d", "e"}])
        truth = Clustering([{"a", "b"}, {"c", "d", "e"}])
        scores = pairwise_scores(predicted, truth)
        # predicted positives: ab ac bc de; true positives: ab cd ce de
        assert scores.true_positives == 2      # ab, de
        assert scores.false_positives == 2     # ac, bc
        assert scores.false_negatives == 2     # cd, ce

    def test_f1_harmonic_mean(self):
        scores = PairwiseScores(true_positives=1, false_positives=1,
                                false_negatives=3)
        precision, recall = 0.5, 0.25
        expected = 2 * precision * recall / (precision + recall)
        assert scores.f1 == pytest.approx(expected)

    def test_zero_f1(self):
        scores = PairwiseScores(true_positives=0, false_positives=5,
                                false_negatives=5)
        assert scores.f1 == 0.0

    def test_universe_mismatch_raises(self):
        with pytest.raises(ValueError):
            pairwise_scores(Clustering([{"a"}]), Clustering([{"b"}]))

    def test_single_item(self):
        single = Clustering([{"a"}])
        scores = pairwise_scores(single, single)
        assert scores.f1 == 1.0
