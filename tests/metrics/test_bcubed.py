"""B-cubed metric tests."""

import pytest

from repro.metrics.bcubed import bcubed_scores
from repro.metrics.clusterings import Clustering


class TestBCubed:
    def test_perfect(self):
        truth = Clustering([{"a", "b"}, {"c"}])
        scores = bcubed_scores(truth, truth)
        assert scores.precision == 1.0
        assert scores.recall == 1.0
        assert scores.f1 == 1.0

    def test_all_merged(self):
        predicted = Clustering([{"a", "b", "c", "d"}])
        truth = Clustering([{"a", "b"}, {"c", "d"}])
        scores = bcubed_scores(predicted, truth)
        assert scores.recall == 1.0
        assert scores.precision == pytest.approx(0.5)

    def test_all_singletons(self):
        predicted = Clustering([{"a"}, {"b"}, {"c"}, {"d"}])
        truth = Clustering([{"a", "b"}, {"c", "d"}])
        scores = bcubed_scores(predicted, truth)
        assert scores.precision == 1.0
        assert scores.recall == pytest.approx(0.5)

    def test_classic_asymmetric_example(self):
        predicted = Clustering([{"a", "b", "c"}, {"d"}])
        truth = Clustering([{"a", "b"}, {"c", "d"}])
        scores = bcubed_scores(predicted, truth)
        # precision: a=2/3, b=2/3, c=1/3, d=1 -> (2/3+2/3+1/3+1)/4
        assert scores.precision == pytest.approx((2 / 3 + 2 / 3 + 1 / 3 + 1) / 4)
        # recall: a=1, b=1, c=1/2, d=1/2
        assert scores.recall == pytest.approx((1 + 1 + 0.5 + 0.5) / 4)

    def test_f1_zero_when_both_zero(self):
        from repro.metrics.bcubed import BCubedScores
        assert BCubedScores(precision=0.0, recall=0.0).f1 == 0.0

    def test_universe_mismatch_raises(self):
        with pytest.raises(ValueError):
            bcubed_scores(Clustering([{"a"}]), Clustering([{"b"}]))
