"""Metric-report bundle tests."""

import pytest

from repro.metrics.clusterings import Clustering
from repro.metrics.report import (
    PAPER_METRICS,
    MetricReport,
    evaluate_clustering,
    mean_report,
)


class TestEvaluateClustering:
    def test_perfect_prediction_all_ones(self):
        truth = Clustering([{"a", "b"}, {"c", "d"}, {"e"}])
        report = evaluate_clustering(truth, truth)
        for metric in ("fp", "f1", "precision", "recall", "rand",
                       "adjusted_rand", "purity", "inverse_purity",
                       "bcubed_precision", "bcubed_recall", "bcubed_f1"):
            assert report.get(metric) == 1.0, metric

    def test_all_metrics_in_unit_interval_except_ari(self):
        predicted = Clustering([{"a", "x"}, {"b", "y"}, {"c"}])
        truth = Clustering([{"a", "b", "c"}, {"x", "y"}])
        report = evaluate_clustering(predicted, truth)
        for metric, value in report.as_dict().items():
            if metric == "adjusted_rand":
                assert -1.0 <= value <= 1.0
            else:
                assert 0.0 <= value <= 1.0, metric

    def test_paper_metrics_names(self):
        assert PAPER_METRICS == ("fp", "f1", "rand")

    def test_get_unknown_metric_raises(self):
        truth = Clustering([{"a"}])
        report = evaluate_clustering(truth, truth)
        with pytest.raises(AttributeError):
            report.get("nonsense")


class TestMeanReport:
    def make(self, value):
        return MetricReport(fp=value, f1=value, precision=value, recall=value,
                            rand=value, adjusted_rand=value, purity=value,
                            inverse_purity=value, bcubed_precision=value,
                            bcubed_recall=value, bcubed_f1=value)

    def test_mean(self):
        averaged = mean_report([self.make(0.2), self.make(0.8)])
        assert averaged.fp == pytest.approx(0.5)
        assert averaged.rand == pytest.approx(0.5)

    def test_single(self):
        report = self.make(0.7)
        assert mean_report([report]) == report

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="zero reports"):
            mean_report([])

    def test_as_dict_roundtrip(self):
        report = self.make(0.3)
        assert MetricReport(**report.as_dict()) == report
