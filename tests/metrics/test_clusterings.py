"""Clustering value-type tests."""

import pytest

from repro.metrics.clusterings import (
    Clustering,
    check_same_universe,
    clustering_from_assignments,
    clustering_from_sets,
)


class TestConstruction:
    def test_basic(self):
        clustering = Clustering([{"a", "b"}, {"c"}])
        assert len(clustering) == 2
        assert clustering.n_items() == 3

    def test_empty_clusters_dropped(self):
        clustering = Clustering([{"a"}, set(), {"b"}])
        assert len(clustering) == 2

    def test_overlap_rejected(self):
        with pytest.raises(ValueError, match="multiple clusters"):
            Clustering([{"a", "b"}, {"b", "c"}])

    def test_canonical_order(self):
        clustering = Clustering([{"z"}, {"a", "b", "c"}, {"m", "n"}])
        assert [len(c) for c in clustering.clusters] == [3, 2, 1]

    def test_from_assignments(self):
        clustering = clustering_from_assignments(
            {"a": "p1", "b": "p1", "c": "p2"})
        assert clustering.same_cluster("a", "b")
        assert not clustering.same_cluster("a", "c")

    def test_from_sets(self):
        clustering = clustering_from_sets([["a", "b"], ["c"]])
        assert clustering.n_items() == 3


class TestQueries:
    def build(self):
        return Clustering([{"a", "b", "c"}, {"d", "e"}, {"f"}])

    def test_cluster_of(self):
        clustering = self.build()
        assert clustering.cluster_of("a") == frozenset({"a", "b", "c"})

    def test_cluster_of_missing_raises(self):
        with pytest.raises(KeyError):
            self.build().cluster_of("zzz")

    def test_same_cluster(self):
        clustering = self.build()
        assert clustering.same_cluster("d", "e")
        assert not clustering.same_cluster("a", "f")

    def test_co_referent_pairs(self):
        assert self.build().co_referent_pairs() == 3 + 1 + 0

    def test_sizes(self):
        assert self.build().sizes() == [3, 2, 1]

    def test_equality_ignores_order(self):
        first = Clustering([{"a"}, {"b", "c"}])
        second = Clustering([{"c", "b"}, {"a"}])
        assert first == second
        assert hash(first) == hash(second)

    def test_inequality(self):
        assert Clustering([{"a", "b"}]) != Clustering([{"a"}, {"b"}])

    def test_repr(self):
        assert "3 clusters" in repr(self.build())


class TestCheckSameUniverse:
    def test_accepts_equal(self):
        check_same_universe(Clustering([{"a"}]), Clustering([{"a"}]))

    def test_rejects_different(self):
        with pytest.raises(ValueError, match="different items"):
            check_same_universe(Clustering([{"a"}]), Clustering([{"b"}]))
