"""Purity / inverse purity / Fp tests."""

import pytest

from repro.metrics.clusterings import Clustering
from repro.metrics.purity import fp_measure, inverse_purity, purity


class TestPurity:
    def test_perfect(self):
        truth = Clustering([{"a", "b"}, {"c"}])
        assert purity(truth, truth) == 1.0

    def test_all_merged(self):
        predicted = Clustering([{"a", "b", "c", "d"}])
        truth = Clustering([{"a", "b", "c"}, {"d"}])
        assert purity(predicted, truth) == pytest.approx(0.75)

    def test_all_singletons_purity_one(self):
        predicted = Clustering([{"a"}, {"b"}, {"c"}])
        truth = Clustering([{"a", "b", "c"}])
        assert purity(predicted, truth) == 1.0

    def test_known_example(self):
        predicted = Clustering([{"a", "b", "x"}, {"c", "y"}])
        truth = Clustering([{"a", "b", "c"}, {"x", "y"}])
        # cluster1 majority = {a,b} (2), cluster2 majority = 1
        assert purity(predicted, truth) == pytest.approx(3.0 / 5.0)


class TestInversePurity:
    def test_swaps_roles(self):
        predicted = Clustering([{"a", "b", "c", "d"}])
        truth = Clustering([{"a", "b", "c"}, {"d"}])
        assert inverse_purity(predicted, truth) == 1.0
        assert inverse_purity(
            Clustering([{"a"}, {"b"}, {"c"}, {"d"}]), truth) == pytest.approx(0.5)

    def test_is_purity_with_swapped_args(self):
        predicted = Clustering([{"a", "b"}, {"c", "d"}, {"e"}])
        truth = Clustering([{"a", "b", "c"}, {"d", "e"}])
        assert inverse_purity(predicted, truth) == purity(truth, predicted)


class TestFpMeasure:
    def test_perfect(self):
        truth = Clustering([{"a", "b"}, {"c"}])
        assert fp_measure(truth, truth) == 1.0

    def test_harmonic_mean(self):
        predicted = Clustering([{"a"}, {"b"}, {"c"}, {"d"}])
        truth = Clustering([{"a", "b"}, {"c", "d"}])
        pur = purity(predicted, truth)          # 1.0
        inv = inverse_purity(predicted, truth)  # 0.5
        expected = 2 * pur * inv / (pur + inv)
        assert fp_measure(predicted, truth) == pytest.approx(expected)

    def test_symmetric_under_degenerate_extremes(self):
        # Both degenerate predictions (all-merged, all-singleton) should
        # score below a structurally correct prediction.
        truth = Clustering([{"a", "b"}, {"c", "d"}, {"e", "f"}])
        merged = Clustering([{"a", "b", "c", "d", "e", "f"}])
        singles = Clustering([{x} for x in "abcdef"])
        assert fp_measure(truth, truth) > fp_measure(merged, truth)
        assert fp_measure(truth, truth) > fp_measure(singles, truth)

    def test_universe_mismatch_raises(self):
        with pytest.raises(ValueError):
            fp_measure(Clustering([{"a"}]), Clustering([{"b"}]))
