"""Rand index tests."""

import pytest

from repro.metrics.clusterings import Clustering
from repro.metrics.rand import adjusted_rand_index, rand_index


class TestRandIndex:
    def test_perfect(self):
        truth = Clustering([{"a", "b"}, {"c"}])
        assert rand_index(truth, truth) == 1.0

    def test_opposite(self):
        predicted = Clustering([{"a", "b"}])
        truth = Clustering([{"a"}, {"b"}])
        assert rand_index(predicted, truth) == 0.0

    def test_known_value(self):
        predicted = Clustering([{"a", "b"}, {"c", "d"}])
        truth = Clustering([{"a", "b", "c"}, {"d"}])
        # pairs: ab agree(+,+); cd disagree(+,-); ac,bc disagree(-,+);
        # ad, bd agree(-,-) => 3/6
        assert rand_index(predicted, truth) == pytest.approx(0.5)

    def test_single_item(self):
        single = Clustering([{"a"}])
        assert rand_index(single, single) == 1.0

    def test_range(self, small_block):
        from repro.metrics.clusterings import clustering_from_assignments
        truth = clustering_from_assignments(small_block.ground_truth())
        singles = Clustering([{i} for i in small_block.page_ids()])
        assert 0.0 <= rand_index(singles, truth) <= 1.0


class TestAdjustedRandIndex:
    def test_perfect(self):
        truth = Clustering([{"a", "b"}, {"c", "d"}])
        assert adjusted_rand_index(truth, truth) == 1.0

    def test_both_all_singletons(self):
        clustering = Clustering([{"a"}, {"b"}, {"c"}])
        assert adjusted_rand_index(clustering, clustering) == 1.0

    def test_below_rand_for_chance_heavy_cases(self):
        predicted = Clustering([{"a", "b", "c", "d", "e"}, {"f"}])
        truth = Clustering([{"a", "b", "f"}, {"c", "d", "e"}])
        assert adjusted_rand_index(predicted, truth) < rand_index(predicted, truth)

    def test_can_be_negative(self):
        predicted = Clustering([{"a", "x"}, {"b", "y"}])
        truth = Clustering([{"a", "b"}, {"x", "y"}])
        assert adjusted_rand_index(predicted, truth) < 0.0

    def test_single_item(self):
        single = Clustering([{"a"}])
        assert adjusted_rand_index(single, single) == 1.0
