"""Baseline strategy tests.

All baselines run on the session fixture block so they face realistic
inputs; structural invariants (valid partitions over the right universe)
are checked everywhere, and selected behavioural contrasts are asserted
on constructed toy inputs.
"""

import pytest

from repro.baselines import (
    AgglomerativeBaseline,
    ClusteringSelectionBaseline,
    DynamicSelectionBaseline,
    MajorityVoteBaseline,
    OracleBestFunctionBaseline,
    TrainedBestFunctionBaseline,
    WeightedVoteBaseline,
)
from repro.core.labels import TrainingSample
from repro.graph.validation import is_partition
from repro.metrics.clusterings import clustering_from_assignments
from repro.metrics.purity import fp_measure
from repro.ml.sampling import sample_training_pairs

ALL_BASELINES = [
    TrainedBestFunctionBaseline(),
    OracleBestFunctionBaseline(),
    MajorityVoteBaseline(),
    WeightedVoteBaseline(),
    DynamicSelectionBaseline(),
    ClusteringSelectionBaseline(),
    AgglomerativeBaseline(),
]


@pytest.fixture(scope="module")
def training(small_block):
    return TrainingSample.from_pairs(
        sample_training_pairs(small_block, fraction=0.1, seed=0))


class TestStructuralInvariants:
    @pytest.mark.parametrize("baseline", ALL_BASELINES,
                             ids=[b.name for b in ALL_BASELINES])
    def test_output_is_partition(self, baseline, small_block, block_graphs,
                                 training):
        clustering = baseline.resolve_block(small_block, block_graphs, training)
        assert is_partition([set(c) for c in clustering],
                            small_block.page_ids())

    @pytest.mark.parametrize("baseline", ALL_BASELINES,
                             ids=[b.name for b in ALL_BASELINES])
    def test_scores_are_sane(self, baseline, small_block, block_graphs,
                             training):
        truth = clustering_from_assignments(small_block.ground_truth())
        clustering = baseline.resolve_block(small_block, block_graphs, training)
        assert 0.0 <= fp_measure(clustering, truth) <= 1.0


class TestOracleDominance:
    def test_oracle_at_least_as_good_as_trained(self, small_block,
                                                block_graphs, training):
        truth = clustering_from_assignments(small_block.ground_truth())
        oracle = OracleBestFunctionBaseline().resolve_block(
            small_block, block_graphs, training)
        trained = TrainedBestFunctionBaseline().resolve_block(
            small_block, block_graphs, training)
        assert (fp_measure(oracle, truth)
                >= fp_measure(trained, truth) - 1e-12)


class TestVotingContrast:
    def test_majority_and_weighted_can_differ(self, small_block, block_graphs,
                                              training):
        majority = MajorityVoteBaseline().resolve_block(
            small_block, block_graphs, training)
        weighted = WeightedVoteBaseline().resolve_block(
            small_block, block_graphs, training)
        # Both valid; no required ordering, but both must produce clusters.
        assert len(majority) >= 1
        assert len(weighted) >= 1


class TestAgglomerative:
    def test_respects_function_choice(self, small_block, block_graphs,
                                      training):
        f8 = AgglomerativeBaseline("F8").resolve_block(
            small_block, block_graphs, training)
        f2 = AgglomerativeBaseline("F2").resolve_block(
            small_block, block_graphs, training)
        assert f8.items == f2.items

    def test_never_link_threshold_gives_singletons(self, small_block,
                                                   block_graphs):
        # A training sample with only negative labels forces a never-link
        # threshold, so agglomeration must not merge anything.
        negatives = TrainingSample.from_pairs([
            (pair, False) for pair, _ in sample_training_pairs(
                small_block, fraction=0.05, seed=1)
        ])
        clustering = AgglomerativeBaseline("F8").resolve_block(
            small_block, block_graphs, negatives)
        assert len(clustering) == len(small_block)


class TestDynamicSelection:
    def test_region_parameters_respected(self, small_block, block_graphs,
                                         training):
        coarse = DynamicSelectionBaseline(region_k=2).resolve_block(
            small_block, block_graphs, training)
        fine = DynamicSelectionBaseline(region_k=15).resolve_block(
            small_block, block_graphs, training)
        assert coarse.items == fine.items

    def test_subset_of_functions(self, small_block, block_graphs, training):
        clustering = DynamicSelectionBaseline(
            function_names=("F8", "F2")).resolve_block(
            small_block, block_graphs, training)
        assert is_partition([set(c) for c in clustering],
                            small_block.page_ids())
