"""R-Swoosh baseline tests."""

from collections import Counter

import pytest

from repro.baselines.swoosh import SwooshBaseline, merge_features, r_swoosh
from repro.core.labels import TrainingSample
from repro.extraction.features import PageFeatures
from repro.graph.validation import is_partition
from repro.ml.sampling import sample_training_pairs
from repro.similarity.base import SimilarityFunction
from repro.similarity.functions import function_by_name


def features(doc_id, tfidf=None, orgs=None, name=""):
    return PageFeatures(
        doc_id=doc_id,
        most_frequent_name=name,
        organizations=Counter(orgs or {}),
        tfidf=tfidf or {},
    )


class TestMergeFeatures:
    def test_counters_add(self):
        merged = merge_features(
            features("a", orgs={"Acme Labs": 2}),
            features("b", orgs={"Acme Labs": 1, "Initech": 1}))
        assert merged.organizations == Counter(
            {"Acme Labs": 3, "Initech": 1})

    def test_concept_sets_union(self):
        left = PageFeatures(doc_id="a", concept_set=frozenset({"x y"}))
        right = PageFeatures(doc_id="b", concept_set=frozenset({"z w"}))
        assert merge_features(left, right).concept_set == {"x y", "z w"}

    def test_tfidf_unit_norm(self):
        merged = merge_features(
            features("a", tfidf={"w1": 1.0}),
            features("b", tfidf={"w2": 1.0}))
        norm = sum(v * v for v in merged.tfidf.values()) ** 0.5
        assert norm == pytest.approx(1.0)

    def test_name_prefers_longer_nonempty(self):
        merged = merge_features(features("a", name="J. Roe"),
                                features("b", name="Jane Roe"))
        assert merged.most_frequent_name == "Jane Roe"
        merged = merge_features(features("a", name=""),
                                features("b", name="Jane Roe"))
        assert merged.most_frequent_name == "Jane Roe"

    def test_merge_only_adds_information(self):
        left = features("a", tfidf={"w": 1.0}, orgs={"Acme Labs": 1})
        right = features("b")
        merged = merge_features(left, right)
        assert set(merged.tfidf) >= set(left.tfidf)
        assert set(merged.organizations) >= set(left.organizations)


class TestRSwoosh:
    def test_transitive_via_merge(self):
        # a matches b; their merged record still matches c, placing a and
        # c in one entity even though a-c scores 0.0 — the Swoosh dynamic.
        bundles = {
            "a": features("a", tfidf={"w1": 1.0}),
            "b": features("b", tfidf={"w1": 0.7, "w2": 0.714}),
            "c": features("c", tfidf={"w2": 1.0}),
        }
        match = function_by_name("F8")
        assert match(bundles["a"], bundles["c"]) == 0.0
        clusters = r_swoosh(bundles, match, threshold=0.35)
        assert {frozenset(c) for c in clusters} == {frozenset({"a", "b", "c"})}

    def test_no_matches_all_singletons(self):
        bundles = {
            "a": features("a", tfidf={"w1": 1.0}),
            "b": features("b", tfidf={"w2": 1.0}),
        }
        clusters = r_swoosh(bundles, function_by_name("F8"), threshold=0.5)
        assert len(clusters) == 2

    def test_partition(self):
        bundles = {f"d{i}": features(f"d{i}", tfidf={f"w{i % 3}": 1.0})
                   for i in range(9)}
        clusters = r_swoosh(bundles, function_by_name("F8"), threshold=0.9)
        assert is_partition([set(c) for c in clusters], list(bundles))

    def test_always_match_single_cluster(self):
        always = SimilarityFunction("one", "t", "t", lambda a, b: 1.0)
        bundles = {f"d{i}": features(f"d{i}") for i in range(5)}
        clusters = r_swoosh(bundles, always, threshold=0.5)
        assert len(clusters) == 1


class TestSwooshBaseline:
    def test_on_generated_block(self, small_block, block_graphs,
                                block_features):
        training = TrainingSample.from_pairs(
            sample_training_pairs(small_block, fraction=0.1, seed=0))
        baseline = SwooshBaseline(block_features, function_name="F8")
        clustering = baseline.resolve_block(small_block, block_graphs,
                                            training)
        assert is_partition([set(c) for c in clustering],
                            small_block.page_ids())

    def test_never_link_training(self, small_block, block_graphs,
                                 block_features):
        negatives = TrainingSample.from_pairs([
            (pair, False) for pair, _ in sample_training_pairs(
                small_block, fraction=0.05, seed=2)])
        baseline = SwooshBaseline(block_features, function_name="F8")
        clustering = baseline.resolve_block(small_block, block_graphs,
                                            negatives)
        assert len(clustering) == len(small_block)
