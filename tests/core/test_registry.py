"""Plugin registry tests: registration, validation and end-to-end use."""

import pytest

from repro.core.config import ResolverConfig
from repro.core.registry import (
    CLUSTERERS,
    COMBINERS,
    CRITERIA,
    SAMPLING_MODES,
    SIMILARITIES,
    Registry,
    register_clusterer,
    register_combiner,
)
from repro.core.resolver import EntityResolver


class TestRegistryBasics:
    def test_builtins_registered(self):
        assert set(COMBINERS.names()) >= {"best_graph", "weighted_average",
                                          "majority"}
        assert set(CRITERIA.names()) >= {"threshold", "equal_width", "kmeans"}
        assert set(CLUSTERERS.names()) >= {"transitive", "star", "correlation"}
        assert set(SAMPLING_MODES.names()) >= {"pairs", "documents"}
        assert set(SIMILARITIES.names()) >= {f"F{i}" for i in range(1, 15)}

    def test_unknown_lists_known_values(self):
        with pytest.raises(ValueError, match="known combiners are"):
            COMBINERS.get("nope")

    def test_duplicate_rejected_without_replace(self):
        registry = Registry("widget")
        registry.add("w", object())
        with pytest.raises(ValueError, match="already registered"):
            registry.add("w", object())
        replacement = object()
        assert registry.add("w", replacement, replace=True) is replacement

    def test_decorator_infers_name_attribute(self):
        registry = Registry("widget")

        @registry.register()
        class Widget:
            name = "fancy"

        assert registry._entries["fancy"] is Widget


class TestConfigValidation:
    def test_unknown_combiner(self):
        with pytest.raises(ValueError, match="unknown combiner"):
            ResolverConfig(combiner="nope")

    def test_unknown_criterion(self):
        with pytest.raises(ValueError, match="unknown decision criterion"):
            ResolverConfig(criteria=("threshold", "nope"))

    def test_unknown_sampling_mode(self):
        with pytest.raises(ValueError, match="unknown sampling mode"):
            ResolverConfig(sampling_mode="nope")

    def test_unknown_clusterer_lists_known(self):
        with pytest.raises(ValueError, match="known clusterers are"):
            ResolverConfig(clusterer="spectral")

    def test_unknown_similarity_function(self):
        with pytest.raises(ValueError, match="unknown similarity function"):
            ResolverConfig(function_names=("F1", "F99"))


class TestOverrides:
    def test_sampling_mode_override_takes_effect(self, small_block):
        """replace=True overrides are honored by the dispatch path."""
        from repro.ml.sampling import sample_training_pairs

        original = SAMPLING_MODES.get("pairs")
        sentinel = [(("a", "b"), True)]
        try:
            SAMPLING_MODES.add("pairs", lambda block, fraction, rng: sentinel,
                               replace=True)
            assert sample_training_pairs(small_block, mode="pairs") == sentinel
        finally:
            SAMPLING_MODES.add("pairs", original, replace=True)
        assert sample_training_pairs(small_block, mode="pairs") != sentinel

    def test_similarity_override_takes_effect(self):
        from repro.similarity.base import SimilarityFunction
        from repro.similarity.functions import function_by_name

        original = SIMILARITIES.get("F8")
        stub = SimilarityFunction("F8", "stub", "constant",
                                  lambda left, right: 0.5)
        try:
            SIMILARITIES.add("F8", stub, replace=True)
            assert function_by_name("F8") is stub
        finally:
            SIMILARITIES.add("F8", original, replace=True)
        assert function_by_name("F8") is original


class TestEndToEndPlugins:
    def test_registered_combiner_usable_via_config(self, small_block,
                                                   block_graphs):
        """A combiner registered from *outside* repro.core resolves fully."""
        from repro.core.combination import BestGraphSelector

        name = "test_first_layer"
        if name not in COMBINERS:
            @register_combiner(name)
            class FirstLayerCombiner(BestGraphSelector):
                """Always keep the first layer (degenerate but observable)."""

                name = "test_first_layer"

                def combine(self, layers, training):
                    return self._select(layers[0])

                def apply(self, layers, params):
                    return self._select(layers[0])

        config = ResolverConfig(combiner=name, function_names=("F8", "F2"),
                                criteria=("threshold",))
        model = EntityResolver(config).fit(small_block, training_seed=0,
                                           graphs=block_graphs)
        prediction = model.predict(small_block, graphs=block_graphs)
        assert prediction.chosen_layer == "F8/threshold"

    def test_registered_clusterer_usable_via_config(self, small_block,
                                                    block_graphs):
        name = "test_singletons"
        if name not in CLUSTERERS:
            @register_clusterer(name)
            def singleton_clusterer(combination, seed=0):
                return [{node} for node in combination.graph.nodes]

        config = ResolverConfig(clusterer=name, function_names=("F8",),
                                criteria=("threshold",))
        model = EntityResolver(config).fit(small_block, training_seed=0,
                                           graphs=block_graphs)
        prediction = model.predict(small_block, graphs=block_graphs)
        assert len(prediction.predicted) == len(small_block)

    def test_registered_backend_survives_save_load(self, small_block,
                                                   block_graphs, tmp_path):
        """A model referencing a registered backend loads by name."""
        self.test_registered_clusterer_usable_via_config(small_block,
                                                         block_graphs)
        config = ResolverConfig(clusterer="test_singletons",
                                function_names=("F8",),
                                criteria=("threshold",))
        model = EntityResolver(config).fit(small_block, training_seed=0,
                                           graphs=block_graphs)
        path = tmp_path / "model.json"
        model.save(path)
        from repro.core.model import ResolverModel
        loaded = ResolverModel.load(path)
        prediction = loaded.predict(small_block, graphs=block_graphs)
        assert len(prediction.predicted) == len(small_block)
