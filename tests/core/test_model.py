"""Fit → ResolverModel → predict API tests.

Covers the tentpole acceptance criteria: predict on unlabeled copies
matches the legacy labeled workflow, save/load round-trips bit-identical
predictions, and registry-registered backends work end to end.
"""

import pytest

from repro.core.config import ResolverConfig
from repro.core.model import FittedBlock, FittedLayer, ResolverModel
from repro.core.resolver import EntityResolver
from repro.corpus.documents import (
    DocumentCollection,
    NameCollection,
    WebPage,
)
from repro.graph.validation import is_partition


def strip_labels(block: NameCollection) -> NameCollection:
    """Copy of a block with every ground-truth label removed."""
    stripped = block.without_labels()
    assert all(page.person_id is None for page in stripped.pages)
    return stripped


@pytest.fixture(scope="module", params=["best_graph", "weighted_average",
                                        "majority"])
def fitted(request, small_block, block_graphs):
    """(config, model, prediction-on-unlabeled-copy) per combiner."""
    config = ResolverConfig(combiner=request.param)
    model = EntityResolver(config).fit(small_block, training_seed=0,
                                       graphs=block_graphs)
    prediction = model.predict(strip_labels(small_block),
                               graphs=block_graphs)
    return config, model, prediction


class TestFit:
    def test_fit_block_returns_model(self, small_block, block_graphs):
        model = EntityResolver(ResolverConfig()).fit(
            small_block, training_seed=0, graphs=block_graphs)
        assert isinstance(model, ResolverModel)
        assert model.block_names() == [small_block.query_name]
        assert small_block.query_name in model

    def test_fit_collection(self, small_dataset):
        resolver = EntityResolver(ResolverConfig(function_names=("F8",)))
        model = resolver.fit(small_dataset, training_seed=0)
        assert set(model.block_names()) == set(small_dataset.query_names())

    def test_fitted_layer_count_and_order(self, small_block, block_graphs):
        config = ResolverConfig(criteria=("threshold", "kmeans"))
        model = EntityResolver(config).fit(small_block, training_seed=0,
                                           graphs=block_graphs)
        layers = model.blocks[small_block.query_name].layers
        assert len(layers) == 10 * 2
        # function-outer, criterion-inner order (combiners rely on it)
        assert layers[0].label == "F1/threshold"
        assert layers[1].label == "F1/kmeans"

    def test_fit_needs_inputs(self, small_block):
        with pytest.raises(ValueError, match="pipeline"):
            EntityResolver(ResolverConfig()).fit(small_block)


class TestPredictUnlabeled:
    def test_predict_never_reads_labels(self, fitted, small_block):
        _, _, prediction = fitted
        assert is_partition([set(c) for c in prediction.predicted],
                            small_block.page_ids())

    def test_matches_legacy_resolve_block(self, fitted, small_block,
                                          block_graphs):
        config, _, prediction = fitted
        legacy = EntityResolver(config).resolve_block(
            small_block, training_seed=0, graphs=block_graphs)
        assert prediction.predicted == legacy.predicted
        assert prediction.chosen_layer == legacy.chosen_layer

    def test_unknown_block_lists_fitted_names(self, fitted):
        _, model, _ = fitted
        other = NameCollection(query_name="Nobody Here")
        with pytest.raises(KeyError, match="fitted blocks"):
            model.predict(other, graphs={})

    def test_model_block_reuses_other_fit(self, fitted, small_block,
                                          block_graphs):
        """A model serves names it never saw via model_block=."""
        _, model, prediction = fitted
        renamed = NameCollection(query_name="New Name",
                                 pages=list(strip_labels(small_block).pages))
        served = model.predict_block(renamed, graphs=block_graphs,
                                     model_block=small_block.query_name)
        assert served.predicted == prediction.predicted

    def test_collection_predict_and_by_name(self, small_dataset):
        resolver = EntityResolver(ResolverConfig(function_names=("F8",)))
        model = resolver.fit(small_dataset, training_seed=0)
        prediction = model.predict(small_dataset)
        assert len(prediction.blocks) == len(small_dataset)
        block = prediction.by_name("William Cohen")
        assert block.query_name == "William Cohen"
        with pytest.raises(KeyError):
            prediction.by_name("Nobody")

    def test_collection_model_block_fallback(self, small_dataset):
        """A collection containing unfitted names is servable via fallback."""
        resolver = EntityResolver(ResolverConfig(function_names=("F8",)))
        model = resolver.fit(small_dataset, training_seed=0)
        renamed = small_dataset.without_labels()
        renamed.collections[0] = NameCollection(
            query_name="Brand New Name",
            pages=[WebPage(p.doc_id, "Brand New Name", p.url, p.title,
                           p.text, None)
                   for p in renamed.collections[0].pages])
        prediction = model.predict(renamed, model_block="William Cohen")
        assert prediction.by_name("Brand New Name").n_entities() >= 1

    def test_weighted_average_diagnostics_survive_apply(self, small_block,
                                                        block_graphs):
        """resolve_block's combination diagnostics match the v1.0 contract."""
        config = ResolverConfig(combiner="weighted_average")
        result = EntityResolver(config).resolve_block(
            small_block, training_seed=0, graphs=block_graphs)
        assert "training_accuracy" in result.combination.diagnostics

    def test_collection_predict_releases_fit_caches(self, small_dataset):
        resolver = EntityResolver(ResolverConfig(function_names=("F8",)))
        model = resolver.fit(small_dataset, training_seed=0)
        assert any(fitted._layer_cache is not None
                   for fitted in model.blocks.values())
        model.predict(small_dataset)
        assert all(fitted._layer_cache is None
                   for fitted in model.blocks.values())


class TestEvaluate:
    def test_evaluate_matches_legacy_collection(self, small_dataset):
        config = ResolverConfig(function_names=("F8", "F2"))
        legacy = EntityResolver(config).resolve_collection(
            small_dataset, training_seed=0)
        model = EntityResolver(config).fit(small_dataset, training_seed=0)
        scored = model.evaluate(small_dataset)
        assert scored.mean_report().fp == legacy.mean_report().fp
        for block in legacy.blocks:
            assert scored.by_name(block.query_name).predicted == block.predicted

    def test_evaluate_requires_labels(self, fitted, small_block,
                                      block_graphs):
        _, model, _ = fitted
        with pytest.raises(ValueError, match="ground-truth"):
            model.evaluate(strip_labels(small_block), graphs=block_graphs)


class TestSaveLoad:
    def test_round_trip_bit_identical(self, fitted, small_block,
                                      block_graphs, tmp_path):
        _, model, prediction = fitted
        path = tmp_path / "model.json"
        model.save(path)
        loaded = ResolverModel.load(path)
        again = loaded.predict(strip_labels(small_block), graphs=block_graphs)
        assert again.predicted == prediction.predicted
        assert again.layer_accuracies == prediction.layer_accuracies

    def test_round_trip_preserves_config(self, fitted, tmp_path):
        config, model, _ = fitted
        path = tmp_path / "model.json"
        model.save(path)
        assert ResolverModel.load(path).config == config

    def test_round_trip_preserves_fitted_state(self, fitted, tmp_path):
        _, model, _ = fitted
        path = tmp_path / "model.json"
        model.save(path)
        loaded = ResolverModel.load(path)
        for name, fitted_block in model.blocks.items():
            reloaded = loaded.blocks[name]
            assert reloaded.n_training == fitted_block.n_training
            assert reloaded.combiner_params == fitted_block.combiner_params
            for left, right in zip(fitted_block.layers, reloaded.layers):
                assert left.label == right.label
                assert left.graph_accuracy == right.graph_accuracy
                assert left.fitted.to_dict() == right.fitted.to_dict()

    def test_rejects_unknown_format_version(self, tmp_path):
        path = tmp_path / "model.json"
        path.write_text('{"format_version": 999, "config": {}, "blocks": {}}')
        with pytest.raises(ValueError, match="format version"):
            ResolverModel.load(path)


class TestFittedBlockSerialization:
    def test_dict_round_trip(self, small_block, block_graphs):
        model = EntityResolver(ResolverConfig()).fit(
            small_block, training_seed=3, graphs=block_graphs)
        fitted_block = model.blocks[small_block.query_name]
        rebuilt = FittedBlock.from_dict(fitted_block.to_dict())
        assert rebuilt.query_name == fitted_block.query_name
        assert rebuilt.layer_accuracies() == fitted_block.layer_accuracies()
        assert isinstance(rebuilt.layers[0], FittedLayer)


class TestDocumentCollectionIndex:
    def test_by_name_tracks_appends(self):
        pages = [WebPage("a/0", "A B", "http://x", "t", "w", "p0")]
        collection = DocumentCollection(name="d", collections=[
            NameCollection(query_name="A B", pages=pages)])
        assert collection.by_name("A B").query_name == "A B"
        collection.collections.append(NameCollection(query_name="C D"))
        assert collection.by_name("C D").query_name == "C D"
        with pytest.raises(KeyError):
            collection.by_name("Nobody")

    def test_by_name_survives_same_length_replacement(self):
        collection = DocumentCollection(name="d", collections=[
            NameCollection(query_name="A B"),
            NameCollection(query_name="C D")])
        assert collection.by_name("A B").query_name == "A B"  # builds index
        collection.collections[0] = NameCollection(query_name="E F")
        assert collection.by_name("E F").query_name == "E F"
        with pytest.raises(KeyError):
            collection.by_name("A B")

    def test_by_name_duplicates_first_match(self):
        first = NameCollection(query_name="A B")
        collection = DocumentCollection(name="d", collections=[
            first, NameCollection(query_name="A B")])
        assert collection.by_name("A B") is first
