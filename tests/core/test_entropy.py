"""Entropy-metric tests (paper future work §VII)."""

import math

import pytest

from repro.core.entropy import (
    EntropyWeightedCombiner,
    feature_availability,
    information_gain,
    layer_information_gain,
    shannon_entropy,
    value_entropy,
)
from repro.core.labels import TrainingSample
from repro.core.regions import EqualWidthRegions
from repro.extraction.features import PageFeatures
from repro.graph.entity_graph import WeightedPairGraph
from repro.ml.sampling import sample_training_pairs


class TestShannonEntropy:
    def test_uniform_two(self):
        assert shannon_entropy([0.5, 0.5]) == pytest.approx(1.0)

    def test_certain(self):
        assert shannon_entropy([1.0]) == 0.0

    def test_uniform_four(self):
        assert shannon_entropy([0.25] * 4) == pytest.approx(2.0)

    def test_skewed_below_uniform(self):
        assert shannon_entropy([0.9, 0.1]) < 1.0

    def test_rejects_non_distribution(self):
        with pytest.raises(ValueError, match="sum"):
            shannon_entropy([0.5, 0.2])


class TestFeatureAvailability:
    def test_counts_available_features(self):
        features = {
            "a": PageFeatures(doc_id="a", most_frequent_name="X Y",
                              tfidf={"w": 1.0}),
            "b": PageFeatures(doc_id="b"),
        }
        availability = feature_availability(features)
        assert availability["most_frequent_name"] == 0.5
        assert availability["tfidf"] == 0.5
        assert availability["organizations"] == 0.0

    def test_empty(self):
        availability = feature_availability({})
        assert all(value == 0.0 for value in availability.values())

    def test_on_generated_block(self, block_features):
        availability = feature_availability(block_features)
        # TF-IDF is always available; organizations are sometimes missing.
        assert availability["tfidf"] == 1.0
        assert 0.0 < availability["organizations"] <= 1.0


class TestValueEntropy:
    def test_constant_values_zero_entropy(self):
        graph = WeightedPairGraph(nodes=["a", "b", "c"])
        graph.set_weight("a", "b", 0.5)
        graph.set_weight("a", "c", 0.5)
        graph.set_weight("b", "c", 0.5)
        assert value_entropy(graph) == 0.0

    def test_spread_values_positive_entropy(self):
        graph = WeightedPairGraph(nodes=["a", "b", "c"])
        graph.set_weight("a", "b", 0.05)
        graph.set_weight("a", "c", 0.55)
        graph.set_weight("b", "c", 0.95)
        assert value_entropy(graph) == pytest.approx(math.log2(3))

    def test_empty_graph(self):
        assert value_entropy(WeightedPairGraph(nodes=[])) == 0.0


class TestInformationGain:
    def test_perfectly_informative(self):
        regions = EqualWidthRegions(2)
        data = [(0.1, False)] * 10 + [(0.9, True)] * 10
        assert information_gain(regions, data) == pytest.approx(1.0)

    def test_uninformative(self):
        regions = EqualWidthRegions(2)
        data = [(0.1, False), (0.1, True), (0.9, False), (0.9, True)]
        assert information_gain(regions, data) == pytest.approx(0.0)

    def test_empty(self):
        assert information_gain(EqualWidthRegions(2), []) == 0.0

    def test_non_negative(self):
        regions = EqualWidthRegions(10)
        data = [(i / 20, i % 3 == 0) for i in range(20)]
        assert information_gain(regions, data) >= 0.0

    def test_bounded_by_label_entropy(self):
        regions = EqualWidthRegions(10)
        data = [(i / 20, i % 2 == 0) for i in range(20)]
        assert information_gain(regions, data) <= 1.0 + 1e-9


class TestEntropyWeightedCombiner:
    def test_end_to_end_on_block(self, small_block, block_graphs):
        from repro.core import EntityResolver, ResolverConfig
        from repro.graph.transitive import transitive_closure_clusters
        from repro.graph.validation import is_partition

        resolver = EntityResolver(ResolverConfig())
        training = TrainingSample.from_pairs(
            sample_training_pairs(small_block, fraction=0.1, seed=0))
        layers = resolver.build_layers(block_graphs, training)
        combiner = EntropyWeightedCombiner(block_graphs)
        result = combiner.combine(layers, training)
        clusters = transitive_closure_clusters(result.graph)
        assert is_partition([set(c) for c in clusters],
                            small_block.page_ids())
        assert result.threshold is not None

    def test_layer_information_gain(self, small_block, block_graphs):
        from repro.core import EntityResolver, ResolverConfig
        resolver = EntityResolver(ResolverConfig(criteria=("kmeans",)))
        training = TrainingSample.from_pairs(
            sample_training_pairs(small_block, fraction=0.1, seed=0))
        layers = resolver.build_layers(block_graphs, training)
        gains = [layer_information_gain(layer,
                                        block_graphs[layer.function_name],
                                        training)
                 for layer in layers]
        assert all(gain >= 0.0 for gain in gains)
        assert any(gain > 0.0 for gain in gains)
