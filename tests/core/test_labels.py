"""Training-sample tests."""

import pytest

from repro.core.labels import TrainingSample
from repro.graph.entity_graph import WeightedPairGraph


def sample():
    return TrainingSample.from_pairs([
        (("a", "b"), True),
        (("a", "c"), False),
        (("b", "c"), False),
    ])


class TestTrainingSample:
    def test_counts(self):
        training = sample()
        assert len(training) == 3
        assert training.n_positives() == 1
        assert training.n_negatives() == 2

    def test_link_prior(self):
        assert sample().link_prior() == pytest.approx(1 / 3)

    def test_link_prior_empty_is_half(self):
        assert TrainingSample.from_pairs([]).link_prior() == 0.5

    def test_labeled_values_join(self):
        graph = WeightedPairGraph(nodes=["a", "b", "c"])
        graph.set_weight("a", "b", 0.9)
        graph.set_weight("a", "c", 0.2)
        # ("b","c") missing -> reads 0.0
        values = sample().labeled_values(graph)
        assert values == [(0.9, True), (0.2, False), (0.0, False)]

    def test_pair_keys(self):
        assert sample().pair_keys() == {("a", "b"), ("a", "c"), ("b", "c")}

    def test_label_of(self):
        training = sample()
        assert training.label_of(("a", "b")) is True
        assert training.label_of(("a", "c")) is False

    def test_label_of_missing_raises(self):
        with pytest.raises(KeyError):
            sample().label_of(("x", "y"))

    def test_immutable(self):
        training = sample()
        with pytest.raises(AttributeError):
            training.pairs = ()
