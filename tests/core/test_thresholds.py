"""Threshold-learning tests."""

import pytest

from repro.core.thresholds import ALWAYS_LINK, NEVER_LINK, learn_threshold


class TestLearnThreshold:
    def test_perfectly_separable(self):
        data = [(0.1, False), (0.2, False), (0.8, True), (0.9, True)]
        learned = learn_threshold(data)
        assert 0.2 < learned.threshold <= 0.8
        assert learned.training_accuracy == 1.0
        assert learned.n_training == 4

    def test_decide_semantics(self):
        data = [(0.1, False), (0.9, True)]
        learned = learn_threshold(data)
        assert learned.decide(0.95)
        assert not learned.decide(0.05)
        assert learned.decide(learned.threshold)  # inclusive boundary

    def test_all_positive_prefers_low_threshold(self):
        data = [(0.2, True), (0.5, True), (0.9, True)]
        learned = learn_threshold(data)
        assert learned.training_accuracy == 1.0
        assert all(learned.decide(v) for v, _ in data)

    def test_all_negative_never_links(self):
        data = [(0.2, False), (0.5, False), (0.9, False)]
        learned = learn_threshold(data)
        assert learned.training_accuracy == 1.0
        assert not any(learned.decide(v) for v, _ in data)
        assert learned.threshold == NEVER_LINK

    def test_empty_sample_conservative(self):
        learned = learn_threshold([])
        assert learned.threshold == NEVER_LINK
        assert learned.training_accuracy == 0.0
        assert not learned.decide(1.0)

    def test_noisy_data_maximizes_accuracy(self):
        # 0.0-0.4: 1 of 4 positive; 0.6-1.0: 3 of 4 positive.
        data = [(0.0, False), (0.1, False), (0.3, True), (0.4, False),
                (0.6, True), (0.7, False), (0.9, True), (1.0, True)]
        learned = learn_threshold(data)
        correct = sum(1 for value, label in data
                      if learned.decide(value) == label)
        assert correct == 6
        assert learned.training_accuracy == pytest.approx(0.75)

    def test_ties_prefer_higher_threshold(self):
        # Threshold between 0.4/0.6 and above 0.6 are equally accurate;
        # the learner must pick the more conservative (higher) one.
        data = [(0.2, False), (0.6, True)]
        learned = learn_threshold(data)
        assert learned.threshold == pytest.approx(0.4)

    def test_equal_values_cannot_be_split(self):
        data = [(0.5, True), (0.5, False), (0.5, True)]
        learned = learn_threshold(data)
        # Best rule: link everything (2/3 correct).
        assert learned.training_accuracy == pytest.approx(2 / 3)
        assert learned.decide(0.5)

    def test_exhaustive_optimality_small_case(self):
        data = [(0.15, False), (0.25, True), (0.35, False), (0.55, True),
                (0.65, True), (0.75, False), (0.85, True)]
        learned = learn_threshold(data)
        candidates = [ALWAYS_LINK, NEVER_LINK] + [
            (data[i][0] + data[i + 1][0]) / 2 for i in range(len(data) - 1)]
        best = max(
            sum(1 for v, lab in data if (v >= c) == lab) for c in candidates)
        achieved = sum(1 for v, lab in data
                       if learned.decide(v) == lab)
        assert achieved == best
