"""Region-accuracy estimation tests."""

import pytest

from repro.core.accuracy import RegionAccuracyProfile, overall_accuracy
from repro.core.regions import EqualWidthRegions


def profile_from(data, n_bins=10, smoothing=0.0):
    return RegionAccuracyProfile(EqualWidthRegions(n_bins), data,
                                 smoothing=smoothing)


class TestRegionAccuracyProfile:
    def test_unsmoothed_accuracy_is_link_fraction(self):
        data = [(0.05, True), (0.05, False), (0.06, True), (0.07, True)]
        profile = profile_from(data)
        assert profile.region_accuracy(0) == pytest.approx(0.75)

    def test_link_probability_uses_region(self):
        data = [(0.05, False), (0.95, True)]
        profile = profile_from(data)
        assert profile.link_probability(0.02) < 0.5
        assert profile.link_probability(0.98) > 0.5

    def test_decide_majority(self):
        data = [(0.05, False), (0.06, False), (0.07, True),
                (0.95, True), (0.96, True), (0.97, False)]
        profile = profile_from(data)
        assert not profile.decide(0.05)
        assert profile.decide(0.95)

    def test_empty_region_falls_back_to_prior(self):
        data = [(0.05, True), (0.06, True), (0.07, False)]
        profile = profile_from(data, smoothing=0.0)
        # Region around 0.5 saw no data; prior is smoothed 2/3-ish.
        assert profile.link_probability(0.5) == profile.prior

    def test_smoothing_shrinks_extremes(self):
        data = [(0.05, True)]  # one positive in bin 0
        unsmoothed = profile_from(data, smoothing=0.0)
        smoothed = profile_from(data, smoothing=1.0)
        assert unsmoothed.region_accuracy(0) == 1.0
        assert smoothed.region_accuracy(0) < 1.0

    def test_region_stats(self):
        data = [(0.05, True), (0.06, False)]
        profile = profile_from(data)
        stats = profile.region_stats(0)
        assert stats.n_pairs == 2
        assert stats.n_links == 1

    def test_accuracy_series_matches_regions(self):
        data = [(0.05, True), (0.95, False)]
        profile = profile_from(data, n_bins=4)
        series = profile.accuracy_series()
        assert len(series) == 4
        assert series[0][0] == 0.0
        assert series[-1][1] == 1.0

    def test_non_monotone_structure_is_captured(self):
        # Low values: links (missing info on dominant-cluster pairs);
        # mid values: non-links; high values: links.  Thresholds cannot
        # express this, region profiles can — the paper's core argument.
        data = ([(0.05, True)] * 8 + [(0.05, False)] * 2
                + [(0.5, False)] * 8 + [(0.5, True)] * 2
                + [(0.95, True)] * 9 + [(0.95, False)] * 1)
        profile = profile_from(data)
        assert profile.decide(0.05)
        assert not profile.decide(0.5)
        assert profile.decide(0.95)


class TestOverallAccuracy:
    def test_basic(self):
        assert overall_accuracy([True, False, True],
                                [True, True, True]) == pytest.approx(2 / 3)

    def test_perfect(self):
        assert overall_accuracy([True, False], [True, False]) == 1.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            overall_accuracy([True], [True, False])

    def test_empty(self):
        with pytest.raises(ValueError, match="zero"):
            overall_accuracy([], [])
