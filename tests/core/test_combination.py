"""Combiner tests."""

import pytest

from repro.core.combination import (
    BestGraphSelector,
    DecisionLayer,
    MajorityVoteCombiner,
    WeightedAverageCombiner,
    build_combiner,
)
from repro.core.decisions import ThresholdDecision
from repro.core.labels import TrainingSample
from repro.graph.entity_graph import DecisionGraph

NODES = ["a", "b", "c"]


def make_layer(function_name, edges, probabilities, graph_accuracy,
               training_data=((0.9, True), (0.1, False))):
    fitted = ThresholdDecision().fit(list(training_data))
    graph = DecisionGraph.from_pairs(NODES, edges)
    return DecisionLayer(
        function_name=function_name,
        criterion_name="threshold",
        graph=graph,
        probabilities=probabilities,
        fitted=fitted,
        graph_accuracy=graph_accuracy,
    )


def make_training():
    return TrainingSample.from_pairs([
        (("a", "b"), True),
        (("a", "c"), False),
    ])


class TestBestGraphSelector:
    def test_picks_highest_graph_accuracy(self):
        weak = make_layer("F1", [("a", "c")], {("a", "c"): 0.8}, 0.3)
        strong = make_layer("F2", [("a", "b")], {("a", "b"): 0.9}, 0.9)
        result = BestGraphSelector().combine([weak, strong], make_training())
        assert result.chosen_layer == "F2/threshold"
        assert result.graph.edges == {("a", "b")}

    def test_tie_prefers_earlier(self):
        first = make_layer("F1", [("a", "b")], {}, 0.5)
        second = make_layer("F2", [("a", "c")], {}, 0.5)
        result = BestGraphSelector().combine([first, second], make_training())
        assert result.chosen_layer == "F1/threshold"

    def test_result_is_copy(self):
        layer = make_layer("F1", [("a", "b")], {("a", "b"): 0.9}, 0.7)
        result = BestGraphSelector().combine([layer], make_training())
        result.graph.edges.clear()
        assert layer.graph.edges == {("a", "b")}

    def test_empty_layers_raise(self):
        with pytest.raises(ValueError, match="zero decision layers"):
            BestGraphSelector().combine([], make_training())


class TestWeightedAverageCombiner:
    def test_combined_probability_weighted(self):
        # Two layers with equal graph accuracies but different fitted
        # training accuracies used as weights.
        high = make_layer("F1", [("a", "b")],
                          {("a", "b"): 1.0, ("a", "c"): 0.0}, 0.9)
        low = make_layer("F2", [],
                         {("a", "b"): 0.0, ("a", "c"): 0.0}, 0.9)
        result = WeightedAverageCombiner().combine([high, low], make_training())
        # Both fitted accuracies are 1.0 (separable toy data), so the
        # combined probability of (a, b) is 0.5 and of (a, c) is 0.0.
        assert result.probabilities.weight("a", "b") == pytest.approx(0.5)
        assert result.probabilities.weight("a", "c") == pytest.approx(0.0)

    def test_threshold_learned_and_applied(self):
        layers = [
            make_layer("F1", [("a", "b")], {("a", "b"): 0.9, ("a", "c"): 0.2}, 0.9),
            make_layer("F2", [("a", "b")], {("a", "b"): 0.8, ("a", "c"): 0.1}, 0.8),
        ]
        result = WeightedAverageCombiner().combine(layers, make_training())
        assert result.threshold is not None
        assert ("a", "b") in result.graph.edges
        assert ("a", "c") not in result.graph.edges

    def test_empty_layers_raise(self):
        with pytest.raises(ValueError):
            WeightedAverageCombiner().combine([], make_training())


class TestMajorityVoteCombiner:
    def test_strict_majority_required(self):
        layers = [
            make_layer("F1", [("a", "b")], {("a", "b"): 0.9, ("a", "c"): 0.1}, 0.5),
            make_layer("F2", [("a", "b")], {("a", "b"): 0.9, ("a", "c"): 0.1}, 0.5),
            make_layer("F3", [("a", "c")], {("a", "b"): 0.1, ("a", "c"): 0.9}, 0.5),
        ]
        result = MajorityVoteCombiner().combine(layers, make_training())
        assert ("a", "b") in result.graph.edges
        assert ("a", "c") not in result.graph.edges

    def test_half_is_not_majority(self):
        layers = [
            make_layer("F1", [("a", "b")], {("a", "b"): 0.9}, 0.5),
            make_layer("F2", [], {("a", "b"): 0.1}, 0.5),
        ]
        result = MajorityVoteCombiner().combine(layers, make_training())
        assert ("a", "b") not in result.graph.edges

    def test_probabilities_are_vote_fractions(self):
        layers = [
            make_layer("F1", [("a", "b")], {("a", "b"): 0.9}, 0.5),
            make_layer("F2", [], {("a", "b"): 0.1}, 0.5),
        ]
        result = MajorityVoteCombiner().combine(layers, make_training())
        assert result.probabilities.weight("a", "b") == pytest.approx(0.5)


class TestBuildCombiner:
    def test_known_names(self):
        assert build_combiner("best_graph").name == "best_graph"
        assert build_combiner("weighted_average").name == "weighted_average"
        assert build_combiner("majority").name == "majority"

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown combiner"):
            build_combiner("quantum")
