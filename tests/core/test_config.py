"""Resolver configuration tests."""

import pytest

from repro.core.config import I4, I7, I10, ResolverConfig, table2_config
from repro.similarity.functions import ALL_FUNCTION_NAMES


class TestResolverConfig:
    def test_defaults(self):
        config = ResolverConfig()
        assert config.function_names == ALL_FUNCTION_NAMES
        assert config.combiner == "best_graph"
        assert config.clusterer == "transitive"
        assert config.training_fraction == 0.1

    def test_rejects_empty_functions(self):
        with pytest.raises(ValueError, match="similarity function"):
            ResolverConfig(function_names=())

    def test_rejects_empty_criteria(self):
        with pytest.raises(ValueError, match="decision criterion"):
            ResolverConfig(criteria=())

    def test_rejects_unknown_clusterer(self):
        with pytest.raises(ValueError, match="clusterer"):
            ResolverConfig(clusterer="spectral")

    def test_rejects_bad_training_fraction(self):
        with pytest.raises(ValueError, match="training_fraction"):
            ResolverConfig(training_fraction=0.0)

    def test_frozen(self):
        config = ResolverConfig()
        with pytest.raises(AttributeError):
            config.combiner = "majority"


class TestTable2Config:
    def test_subsets_match_paper(self):
        assert I4 == ("F4", "F5", "F7", "F9")
        assert I7 == ("F3", "F4", "F5", "F7", "F8", "F9", "F10")
        assert I10 == ALL_FUNCTION_NAMES

    def test_i_columns_threshold_only(self):
        for column, subset in (("I4", I4), ("I7", I7), ("I10", I10)):
            config = table2_config(column)
            assert config.function_names == subset
            assert config.criteria == ("threshold",)
            assert config.combiner == "best_graph"

    def test_c_columns_full_criteria(self):
        for column, subset in (("C4", I4), ("C7", I7), ("C10", I10)):
            config = table2_config(column)
            assert config.function_names == subset
            assert set(config.criteria) == {"threshold", "equal_width", "kmeans"}
            assert config.combiner == "best_graph"

    def test_w_column(self):
        config = table2_config("W")
        assert config.combiner == "weighted_average"
        assert config.function_names == I10

    def test_unknown_column(self):
        with pytest.raises(ValueError, match="unknown Table II column"):
            table2_config("X9")

    def test_region_k_forwarded(self):
        assert table2_config("C10", region_k=5).region_k == 5
