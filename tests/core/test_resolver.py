"""End-to-end resolver tests (Algorithm 1)."""

import pytest

from repro.core.config import ResolverConfig
from repro.core.labels import TrainingSample
from repro.core.resolver import (
    EntityResolver,
    _graph_accuracy,
    compute_similarity_graphs,
)
from repro.graph.entity_graph import DecisionGraph
from repro.graph.validation import is_partition
from repro.metrics.clusterings import clustering_from_assignments
from repro.similarity.functions import default_functions


class TestComputeSimilarityGraphs:
    def test_complete_graphs_for_all_functions(self, small_block,
                                               block_features):
        graphs = compute_similarity_graphs(
            small_block, block_features, default_functions())
        assert set(graphs) == {f"F{i}" for i in range(1, 11)}
        for graph in graphs.values():
            assert graph.is_complete()

    def test_values_in_unit_interval(self, block_graphs):
        for graph in block_graphs.values():
            assert all(0.0 <= value <= 1.0 for value in graph.values())


class TestGraphAccuracy:
    def test_closure_punishes_chains(self):
        nodes = ["a", "b", "c"]
        chained = DecisionGraph.from_pairs(nodes, [("a", "b"), ("b", "c")])
        training = TrainingSample.from_pairs([
            (("a", "b"), True),
            (("a", "c"), False),  # chain closure gets this wrong
            (("b", "c"), False),
        ])
        assert _graph_accuracy(chained, training) == pytest.approx(1 / 3)
        sparse = DecisionGraph.from_pairs(nodes, [("a", "b")])
        assert _graph_accuracy(sparse, training) == 1.0

    def test_empty_training(self):
        graph = DecisionGraph(nodes=["a"])
        assert _graph_accuracy(graph, TrainingSample.from_pairs([])) == 0.0


class TestResolveBlock:
    def test_output_is_partition(self, small_block, block_graphs):
        resolver = EntityResolver(ResolverConfig())
        result = resolver.resolve_block(small_block, training_seed=0,
                                        graphs=block_graphs)
        assert is_partition([set(c) for c in result.predicted],
                            small_block.page_ids())

    def test_report_metrics_present(self, small_block, block_graphs):
        resolver = EntityResolver(ResolverConfig())
        result = resolver.resolve_block(small_block, training_seed=0,
                                        graphs=block_graphs)
        assert 0.0 <= result.report.fp <= 1.0
        assert 0.0 <= result.report.f1 <= 1.0

    def test_chosen_layer_reported_for_best_graph(self, small_block,
                                                  block_graphs):
        resolver = EntityResolver(ResolverConfig(combiner="best_graph"))
        result = resolver.resolve_block(small_block, training_seed=0,
                                        graphs=block_graphs)
        assert result.chosen_layer in result.layer_accuracies

    def test_no_chosen_layer_for_weighted(self, small_block, block_graphs):
        resolver = EntityResolver(ResolverConfig(combiner="weighted_average"))
        result = resolver.resolve_block(small_block, training_seed=0,
                                        graphs=block_graphs)
        assert result.chosen_layer is None
        assert result.combination.threshold is not None

    def test_layer_count(self, small_block, block_graphs):
        config = ResolverConfig(criteria=("threshold", "kmeans"))
        resolver = EntityResolver(config)
        result = resolver.resolve_block(small_block, training_seed=0,
                                        graphs=block_graphs)
        assert len(result.layer_accuracies) == 10 * 2

    def test_deterministic_given_seed(self, small_block, block_graphs):
        resolver = EntityResolver(ResolverConfig())
        first = resolver.resolve_block(small_block, training_seed=7,
                                       graphs=block_graphs)
        second = resolver.resolve_block(small_block, training_seed=7,
                                        graphs=block_graphs)
        assert first.predicted == second.predicted

    def test_different_seeds_may_differ_but_stay_valid(self, small_block,
                                                       block_graphs):
        resolver = EntityResolver(ResolverConfig())
        for seed in range(3):
            result = resolver.resolve_block(small_block, training_seed=seed,
                                            graphs=block_graphs)
            assert is_partition([set(c) for c in result.predicted],
                                small_block.page_ids())

    def test_correlation_clusterer(self, small_block, block_graphs):
        resolver = EntityResolver(ResolverConfig(clusterer="correlation"))
        result = resolver.resolve_block(small_block, training_seed=0,
                                        graphs=block_graphs)
        assert is_partition([set(c) for c in result.predicted],
                            small_block.page_ids())

    def test_needs_inputs(self, small_block):
        resolver = EntityResolver(ResolverConfig())
        with pytest.raises(ValueError, match="pipeline"):
            resolver.resolve_block(small_block)

    def test_features_path(self, small_block, block_features):
        resolver = EntityResolver(ResolverConfig(function_names=("F8",)))
        result = resolver.resolve_block(small_block, training_seed=0,
                                        features=block_features)
        assert result.report.fp > 0.0


class TestResolveCollection:
    def test_all_blocks_resolved(self, small_dataset):
        resolver = EntityResolver(ResolverConfig(function_names=("F8", "F2")))
        result = resolver.resolve_collection(small_dataset, training_seed=0)
        assert len(result.blocks) == len(small_dataset)
        assert result.dataset == small_dataset.name

    def test_mean_report(self, small_dataset):
        resolver = EntityResolver(ResolverConfig(function_names=("F8",)))
        result = resolver.resolve_collection(small_dataset, training_seed=0)
        mean = result.mean_report()
        per_name = [block.report.fp for block in result.blocks]
        assert mean.fp == pytest.approx(sum(per_name) / len(per_name))

    def test_by_name(self, small_dataset):
        resolver = EntityResolver(ResolverConfig(function_names=("F8",)))
        result = resolver.resolve_collection(small_dataset, training_seed=0)
        block = result.by_name("William Cohen")
        assert block.query_name == "William Cohen"
        with pytest.raises(KeyError):
            result.by_name("Nobody")

    def test_predictions_match_truth_universe(self, small_dataset):
        resolver = EntityResolver(ResolverConfig(function_names=("F8",)))
        result = resolver.resolve_collection(small_dataset, training_seed=0)
        for block_result, block in zip(result.blocks, small_dataset):
            truth = clustering_from_assignments(block.ground_truth())
            assert block_result.predicted.items == truth.items

    def test_pipeline_required_without_metadata(self, small_dataset):
        from repro.corpus.documents import DocumentCollection
        stripped = DocumentCollection(name="x",
                                      collections=small_dataset.collections)
        resolver = EntityResolver(ResolverConfig(function_names=("F8",)))
        with pytest.raises(ValueError, match="vocabulary metadata"):
            resolver.resolve_collection(stripped)


class TestDeprecatedWrappers:
    """The docstrings said "deprecated:: 1.1" — the runtime now agrees."""

    def test_resolve_block_warns(self, small_block, block_graphs):
        resolver = EntityResolver(ResolverConfig(function_names=("F8",)))
        with pytest.warns(DeprecationWarning,
                          match="resolve_block is deprecated"):
            resolver.resolve_block(small_block, training_seed=0,
                                   graphs=block_graphs)

    def test_resolve_collection_warns(self, small_dataset):
        resolver = EntityResolver(ResolverConfig(function_names=("F8",)))
        with pytest.warns(DeprecationWarning,
                          match="resolve_collection is deprecated"):
            resolver.resolve_collection(small_dataset, training_seed=0)

    def test_fit_predict_does_not_warn(self, small_block, block_graphs):
        import warnings

        resolver = EntityResolver(ResolverConfig(function_names=("F8",)))
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            model = resolver.fit(small_block, training_seed=0,
                                 graphs=block_graphs)
            model.evaluate_block(small_block, graphs=block_graphs)
