"""Incremental resolver tests."""

import pytest

from repro.core import EntityResolver, ResolverConfig
from repro.core.incremental import IncrementalResolver
from repro.corpus.documents import NameCollection
from repro.graph.validation import is_partition


@pytest.fixture(scope="module")
def split_block(small_block, block_features):
    """The fixture block split into a base part and held-out pages."""
    pages = list(small_block.pages)
    base = NameCollection(query_name=small_block.query_name,
                          pages=pages[:-6])
    held_out = pages[-6:]
    base_features = {page.doc_id: block_features[page.doc_id]
                     for page in base.pages}
    held_features = [block_features[page.doc_id] for page in held_out]
    return base, base_features, held_out, held_features


class TestFit:
    def test_fit_returns_partition(self, split_block):
        base, base_features, _, _ = split_block
        resolver = IncrementalResolver(ResolverConfig())
        predicted = resolver.fit(base, base_features, training_seed=0)
        assert is_partition([set(c) for c in predicted], base.page_ids())
        assert resolver.is_fitted

    def test_fit_matches_batch_resolver(self, split_block):
        base, base_features, _, _ = split_block
        incremental = IncrementalResolver(ResolverConfig())
        predicted = incremental.fit(base, base_features, training_seed=0)
        batch = EntityResolver(ResolverConfig()).resolve_block(
            base, training_seed=0, features=base_features)
        assert predicted == batch.predicted

    def test_unsupported_combiner(self):
        with pytest.raises(ValueError, match="combiner"):
            IncrementalResolver(ResolverConfig(combiner="majority"))

    def test_from_model_matches_fit(self, split_block):
        """Adopting a fitted model equals fitting in-place."""
        base, base_features, _, held_features = split_block
        fitted_inplace = IncrementalResolver(ResolverConfig())
        fitted_inplace.fit(base, base_features, training_seed=0)

        model = EntityResolver(ResolverConfig()).fit(
            base, training_seed=0, features=base_features)
        adopted = IncrementalResolver.from_model(model, base, base_features)

        assert adopted.clusters() == fitted_inplace.clusters()
        adopted.add_pages(held_features)
        fitted_inplace.add_pages(held_features)
        assert adopted.clusters() == fitted_inplace.clusters()

    def test_from_loaded_model(self, split_block, tmp_path):
        """A saved model serves the incremental path without labels."""
        from repro.core.model import ResolverModel

        base, base_features, _, held_features = split_block
        model = EntityResolver(ResolverConfig()).fit(
            base, training_seed=0, features=base_features)
        path = tmp_path / "model.json"
        model.save(path)

        served = IncrementalResolver.from_model(
            ResolverModel.load(path), base, base_features)
        assert served.is_fitted
        assignments = served.add_pages(held_features)
        assert len(assignments) == len(held_features)

    def test_use_before_fit(self):
        resolver = IncrementalResolver()
        with pytest.raises(RuntimeError, match="before fit"):
            resolver.clusters()


class TestAddPage:
    def build(self, split_block, combiner="best_graph"):
        base, base_features, held_out, held_features = split_block
        resolver = IncrementalResolver(ResolverConfig(combiner=combiner))
        resolver.fit(base, base_features, training_seed=0)
        return resolver, base, held_out, held_features

    def test_assignments_keep_partition(self, split_block):
        resolver, base, held_out, held_features = self.build(split_block)
        assignments = resolver.add_pages(held_features)
        assert len(assignments) == len(held_out)
        all_ids = base.page_ids() + [page.doc_id for page in held_out]
        assert is_partition([set(c) for c in resolver.clusters()], all_ids)

    def test_duplicate_page_rejected(self, split_block):
        resolver, _, _, held_features = self.build(split_block)
        resolver.add_page(held_features[0])
        with pytest.raises(ValueError, match="already resolved"):
            resolver.add_page(held_features[0])

    def test_assignment_metadata(self, split_block):
        resolver, _, _, held_features = self.build(split_block)
        assignment = resolver.add_page(held_features[0])
        assert assignment.doc_id == held_features[0].doc_id
        assert 0.0 <= assignment.link_probability <= 1.0
        cluster = resolver.clusters().cluster_of(assignment.doc_id)
        if assignment.created_new_cluster:
            assert cluster == {assignment.doc_id}
        else:
            assert len(cluster) > 1

    def test_weighted_average_mode(self, split_block):
        resolver, base, held_out, held_features = self.build(
            split_block, combiner="weighted_average")
        resolver.add_pages(held_features)
        all_ids = base.page_ids() + [page.doc_id for page in held_out]
        assert is_partition([set(c) for c in resolver.clusters()], all_ids)

    def test_incremental_quality(self, split_block):
        """Most held-out pages should land with their true person."""
        resolver, base, held_out, held_features = self.build(split_block)
        truth = {page.doc_id: page.person_id for page in base.pages}
        truth.update({page.doc_id: page.person_id for page in held_out})

        resolver.add_pages(held_features)
        clusters = resolver.clusters()

        correct = 0
        for page in held_out:
            cluster = clusters.cluster_of(page.doc_id)
            mates = [doc for doc in cluster if doc != page.doc_id]
            if not mates:
                # Singleton: correct iff the page's person is new to the base.
                base_persons = {p.person_id for p in base.pages}
                correct += page.person_id not in base_persons
            else:
                majority_same = sum(
                    1 for doc in mates if truth[doc] == page.person_id)
                correct += majority_same * 2 > len(mates)
        assert correct >= len(held_out) // 2

    def test_deterministic(self, split_block):
        base, base_features, _, held_features = split_block
        results = []
        for _ in range(2):
            resolver = IncrementalResolver(ResolverConfig())
            resolver.fit(base, base_features, training_seed=0)
            resolver.add_pages(held_features)
            results.append(resolver.clusters())
        assert results[0] == results[1]
