"""Value-space region tests."""

import pytest

from repro.core.regions import (
    EqualWidthRegions,
    KMeansRegions,
    ThresholdRegions,
    fit_regions,
)


class TestEqualWidthRegions:
    def test_default_ten_bins(self):
        regions = EqualWidthRegions()
        assert regions.n_regions == 10

    def test_assign(self):
        regions = EqualWidthRegions(n_bins=10)
        assert regions.assign(0.0) == 0
        assert regions.assign(0.05) == 0
        assert regions.assign(0.15) == 1
        assert regions.assign(0.95) == 9

    def test_one_is_last_bin(self):
        assert EqualWidthRegions(10).assign(1.0) == 9

    def test_out_of_range_clamped(self):
        regions = EqualWidthRegions(10)
        assert regions.assign(-0.5) == 0
        assert regions.assign(1.5) == 9

    def test_bounds(self):
        regions = EqualWidthRegions(4)
        assert regions.bounds(0) == (0.0, 0.25)
        assert regions.bounds(3) == (0.75, 1.0)

    def test_describe_covers_unit_interval(self):
        bounds = EqualWidthRegions(5).describe()
        assert bounds[0][0] == 0.0
        assert bounds[-1][1] == 1.0
        for (previous_low, previous_high), (low, high) in zip(bounds, bounds[1:]):
            assert previous_high == pytest.approx(low)

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            EqualWidthRegions(0)


class TestKMeansRegions:
    def test_regions_from_values(self):
        values = [0.1, 0.12, 0.5, 0.52, 0.9, 0.92]
        regions = KMeansRegions(values, k=3)
        assert regions.n_regions == 3
        assert regions.assign(0.11) == 0
        assert regions.assign(0.51) == 1
        assert regions.assign(0.91) == 2

    def test_k_reduced(self):
        regions = KMeansRegions([0.5, 0.5], k=10)
        assert regions.n_regions == 1

    def test_centers_exposed(self):
        regions = KMeansRegions([0.0, 0.0, 1.0, 1.0], k=2)
        assert regions.centers == (0.0, 1.0)

    def test_bounds_tile_unit_interval(self):
        regions = KMeansRegions([0.2, 0.4, 0.6, 0.8], k=4)
        bounds = regions.describe()
        assert bounds[0][0] == 0.0
        assert bounds[-1][1] == 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            KMeansRegions([], k=3)


class TestThresholdRegions:
    def test_two_regions(self):
        regions = ThresholdRegions(0.6)
        assert regions.n_regions == 2
        assert regions.assign(0.59) == 0
        assert regions.assign(0.6) == 1

    def test_bounds(self):
        regions = ThresholdRegions(0.6)
        assert regions.bounds(0) == (0.0, 0.6)
        assert regions.bounds(1) == (0.6, 1.0)

    def test_never_link_degenerates(self):
        regions = ThresholdRegions(1.1)
        assert regions.n_regions == 1
        assert regions.assign(0.99) == 0
        assert regions.bounds(0) == (0.0, 1.0)

    def test_always_link_degenerates(self):
        regions = ThresholdRegions(0.0)
        assert regions.n_regions == 1


class TestFitRegions:
    def test_equal_width(self):
        regions = fit_regions("equal_width", [0.5], k=7)
        assert isinstance(regions, EqualWidthRegions)
        assert regions.n_regions == 7

    def test_kmeans(self):
        regions = fit_regions("kmeans", [0.1, 0.9], k=2)
        assert isinstance(regions, KMeansRegions)

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown region method"):
            fit_regions("quantile", [0.5])
